"""Statistical tests for the FGP sampler (Lemmas 15, 16, 18).

These validate the library's central claim: for every fixed copy of H,
one sampling attempt returns it with probability exactly 1/(2m)^ρ(H).
Tolerances are sized for negligible flake probability at the seeded
trial counts.
"""

import math
import random
from collections import Counter

import pytest

from repro.exact.subgraphs import count_subgraphs
from repro.fgp.counting import (
    count_subgraph_query_model,
    sample_subgraph_once,
    sample_subgraph_uniformly,
)
from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.graph import generators as gen
from repro.oracle.direct import DirectAugmentedOracle, DirectRelaxedOracle
from repro.patterns import pattern as pattern_zoo
from repro.patterns.isomorphism import enumerate_copies
from repro.transform.driver import run_round_adaptive
from repro.utils.rng import derive_rng, ensure_rng


def _success_rate(graph, pattern, attempts, seed, relaxed=False):
    rng = ensure_rng(seed)
    successes = 0
    copies = Counter()
    oracle_cls = DirectRelaxedOracle if relaxed else DirectAugmentedOracle
    mode = SamplerMode.RELAXED if relaxed else SamplerMode.AUGMENTED
    oracle = oracle_cls(graph, derive_rng(rng, "oracle"))
    generators = [
        subgraph_sampler_rounds(pattern, rng=derive_rng(rng, i), mode=mode)
        for i in range(attempts)
    ]
    outputs = run_round_adaptive(generators, oracle).outputs
    for output in outputs:
        if output is not None:
            successes += 1
            copies[output] += 1
    return successes / attempts, copies


def _theory(graph, pattern):
    return count_subgraphs(graph, pattern) / (2.0 * graph.m) ** pattern.rho()


class TestSuccessProbability:
    """P(some copy returned) == #H/(2m)^rho within sampling noise."""

    CASES = [
        ("karate-triangle", gen.karate_club(), pattern_zoo.triangle, 20000),
        ("karate-edge", gen.karate_club(), pattern_zoo.edge, 4000),
        ("lollipop-triangle", gen.lollipop_graph(6, 5), pattern_zoo.triangle, 15000),
        ("lollipop-K4", gen.lollipop_graph(6, 5), lambda: pattern_zoo.clique(4), 20000),
        ("gnp-P3", gen.gnp(13, 0.5, rng=3), lambda: pattern_zoo.path(3), 15000),
        ("gnp-C5", gen.gnp(12, 0.55, rng=4), lambda: pattern_zoo.cycle(5), 25000),
        ("gnp-M2", gen.gnp(10, 0.4, rng=5), lambda: pattern_zoo.matching(2), 15000),
    ]

    @pytest.mark.parametrize("name,graph,pattern_factory,attempts", CASES)
    def test_rate_matches_theory(self, name, graph, pattern_factory, attempts):
        pattern = pattern_factory()
        theory = _theory(graph, pattern)
        assert theory > 0, f"workload {name} has no copies"
        rate, _ = _success_rate(graph, pattern, attempts, seed=hash(name) % 10000)
        sigma = math.sqrt(theory * (1 - theory) / attempts)
        assert abs(rate - theory) <= max(5 * sigma, 0.1 * theory), (
            f"{name}: rate={rate:.5f} theory={theory:.5f}"
        )

    def test_relaxed_mode_matches_theory(self):
        graph = gen.lollipop_graph(6, 5)
        pattern = pattern_zoo.triangle()
        theory = _theory(graph, pattern)
        rate, _ = _success_rate(graph, pattern, 15000, seed=99, relaxed=True)
        sigma = math.sqrt(theory * (1 - theory) / 15000)
        assert abs(rate - theory) <= max(5 * sigma, 0.1 * theory)


class TestPerCopyUniformity:
    def test_every_copy_reachable_and_balanced(self):
        """All #H copies appear, with max/min frequency ratio bounded."""
        graph = gen.lollipop_graph(5, 4)
        pattern = pattern_zoo.triangle()
        truth = count_subgraphs(graph, pattern)
        _, copies = _success_rate(graph, pattern, 60000, seed=7)
        assert len(copies) == truth
        frequencies = list(copies.values())
        assert max(frequencies) / min(frequencies) < 1.8

    def test_copies_are_real_copies(self):
        graph = gen.gnp(12, 0.5, rng=11)
        pattern = pattern_zoo.paw()
        valid = set(enumerate_copies(graph, pattern.graph))
        _, copies = _success_rate(graph, pattern, 20000, seed=13)
        assert copies, "expected at least one sampled paw"
        for copy in copies:
            assert copy in valid


class TestQueryModelWrappers:
    def test_sample_once_returns_copy_or_none(self):
        graph = gen.karate_club()
        oracle = DirectAugmentedOracle(graph, rng=1)
        output = sample_subgraph_once(oracle, pattern_zoo.triangle(), rng=2)
        assert output is None or len(output) == 3

    def test_uniform_sampler_eventually_succeeds(self):
        graph = gen.karate_club()
        oracle = DirectAugmentedOracle(graph, rng=3)
        copy = sample_subgraph_uniformly(
            oracle, pattern_zoo.triangle(), rng=4, copies_lower_bound=45
        )
        assert copy is not None

    def test_count_estimator_unbiased(self):
        graph = gen.karate_club()
        pattern = pattern_zoo.triangle()
        truth = count_subgraphs(graph, pattern)
        oracle = DirectAugmentedOracle(graph, rng=5)
        result = count_subgraph_query_model(oracle, pattern, attempts=30000, rng=6)
        assert result.estimate == pytest.approx(truth, rel=0.2)

    def test_count_estimator_validates_attempts(self):
        from repro.errors import EstimationError

        oracle = DirectAugmentedOracle(gen.karate_club(), rng=1)
        with pytest.raises(EstimationError):
            count_subgraph_query_model(oracle, pattern_zoo.triangle(), attempts=0)


class TestRoundStructure:
    def test_exactly_three_rounds(self):
        graph = gen.karate_club()
        oracle = DirectAugmentedOracle(graph, rng=21)
        generator = subgraph_sampler_rounds(pattern_zoo.cycle(5), rng=22)
        result = run_round_adaptive([generator], oracle)
        assert result.rounds == 3

    def test_empty_graph_returns_none(self):
        from repro.graph.graph import Graph

        oracle = DirectAugmentedOracle(Graph(4), rng=23)
        generator = subgraph_sampler_rounds(pattern_zoo.triangle(), rng=24)
        result = run_round_adaptive([generator], oracle)
        assert result.outputs == [None]

    def test_unknown_mode_rejected(self):
        from repro.errors import SketchError

        with pytest.raises(SketchError):
            list(subgraph_sampler_rounds(pattern_zoo.triangle(), rng=1, mode="bogus"))
