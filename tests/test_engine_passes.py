"""Pass-accounting regressions for the fused engine.

The theorems' pass complexity must survive fusion: K estimator copies
sharing the engine consume the pass count of ONE copy — 3 passes for
Theorems 1/17 (not 3K), 2 for the 2-pass counter, and <= 5r for the
Theorem 2 clique counter — measured by the stream's own pass counter,
which only the engine's ``stream.updates()`` calls can advance.
"""

from repro import (
    generators,
    insertion_stream,
    patterns,
)
from repro.baselines import ExactStreamEstimator, TriestEstimator
from repro.engine import (
    FusionMode,
    StreamEngine,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
    ers_clique_estimator,
    fgp_insertion_estimator,
)
from repro.streams.generators import turnstile_churn_stream


def test_insertion_fused_32_copies_three_passes_shared():
    graph = generators.barabasi_albert(150, 4, rng=1)
    stream = insertion_stream(graph, rng=2)
    fused = count_subgraphs_insertion_only_fused(
        stream, patterns.triangle(), copies=32, trials=12, rng=3
    )
    assert stream.passes_used == 3
    assert fused.passes == 3
    assert fused.num_copies == 32
    # Every copy individually reports the theorem's 3 rounds.
    assert all(copy.passes == 3 for copy in fused.copies)


def test_insertion_fused_32_copies_three_passes_mirror():
    graph = generators.barabasi_albert(150, 4, rng=1)
    stream = insertion_stream(graph, rng=2)
    fused = count_subgraphs_insertion_only_fused(
        stream, patterns.triangle(), copies=32, trials=6, rng=3, mode=FusionMode.MIRROR
    )
    assert stream.passes_used == 3
    assert fused.passes == 3
    assert all(copy.passes == 3 for copy in fused.copies)


def test_turnstile_fused_copies_three_passes():
    graph = generators.gnp(30, 0.3, rng=1)
    stream = turnstile_churn_stream(graph, churn_edges=15, rng=2)
    fused = count_subgraphs_turnstile_fused(
        stream, patterns.triangle(), copies=8, trials=4, rng=3
    )
    assert stream.passes_used == 3
    assert fused.passes == 3


def test_two_pass_fused_copies_two_passes():
    graph = generators.barabasi_albert(120, 4, rng=1)
    stream = insertion_stream(graph, rng=2)
    fused = count_subgraphs_two_pass_fused(
        stream, patterns.cycle(4), copies=16, trials=8, rng=3
    )
    assert stream.passes_used == 2
    assert fused.passes == 2


def test_ers_fused_copies_at_most_5r_passes():
    r = 3
    graph = generators.planted_cliques(48, 4, 4, noise_edges=30, rng=4)
    stream = insertion_stream(graph, rng=5)

    engine = StreamEngine(stream)
    copies = 4
    for index in range(copies):
        engine.register(
            ers_clique_estimator(
                stream,
                r=r,
                degeneracy_bound=8,
                lower_bound=4.0,
                rng=60 + index,
                name=f"ers-{index}",
            )
        )
    report = engine.run()
    assert stream.passes_used <= 5 * r
    # Fused pass count is the max over the copies, not the sum.
    assert stream.passes_used == max(report[f"ers-{i}"].passes for i in range(copies))
    assert stream.passes_used < sum(report[f"ers-{i}"].passes for i in range(copies))


def test_heterogeneous_fusion_costs_max_not_sum():
    graph = generators.barabasi_albert(150, 4, rng=7)
    stream = insertion_stream(graph, rng=8)
    pattern = patterns.triangle()

    engine = StreamEngine(stream)
    engine.register(fgp_insertion_estimator(stream, pattern, trials=10, rng=9, name="fgp"))
    engine.register(TriestEstimator(capacity=60, rng=10))
    engine.register(ExactStreamEstimator(stream.n, pattern))
    report = engine.run()

    # 3-pass FGP + two 1-pass baselines fused = 3 passes, not 5.
    assert stream.passes_used == 3
    assert report.passes == 3
    assert report["fgp"].passes == 3
    assert report["triest"].passes == 1
    assert report["exact"].passes == 1


def test_engine_reset_controls_pass_counter():
    graph = generators.barabasi_albert(80, 3, rng=11)
    stream = insertion_stream(graph, rng=12)
    for _ in stream.updates():
        pass
    assert stream.passes_used == 1

    engine = StreamEngine(stream, reset_pass_count=False)
    engine.register(TriestEstimator(capacity=30, rng=13))
    engine.run()
    assert stream.passes_used == 2  # previous pass + the fused one
