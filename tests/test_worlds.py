"""The worlds harness: grids, sweep schema, and the out-of-core driver.

Parse-time validation (every malformed grid is a clear ``ValueError``
before any cell runs), cell-product compatibility rules, spec
round-trips, and a mini end-to-end sweep through
:func:`repro.worlds.run_sweep` — including resume semantics and the
order-independence of per-cell results.

The opt-in ``-m statistical`` tier at the bottom runs a real
multi-family sweep and asserts the (1±ε) guarantee the same way
``test_statistical_guarantees.py`` does for single streams.
"""

import json

import pytest

from repro.errors import ReproError, WorldsError
from repro.exact.subgraphs import count_subgraphs
from repro.patterns import pattern as zoo
from repro.streams.datasets import DiskEdgeStream
from repro.worlds import (
    ESTIMATORS,
    FAMILIES,
    FamilySpec,
    ROW_KEYS,
    ScenarioSpec,
    WorldGrid,
    materialize_workload,
    run_sweep,
    validate_sweep_document,
)
from repro.worlds.sweep import _grid_seed


class TestFamilySpec:
    def test_defaults_fill_in(self):
        spec = FamilySpec.create("gnp")
        assert spec.param_dict() == {"n": 64, "p": 0.15}
        assert spec.label == "gnp(n=64,p=0.15)"

    def test_unknown_family_is_value_error(self):
        with pytest.raises(WorldsError, match="unknown generator family"):
            FamilySpec.create("smallworld")
        assert issubclass(WorldsError, ValueError)
        assert issubclass(WorldsError, ReproError)

    def test_unknown_parameter(self):
        with pytest.raises(WorldsError, match="unknown gnp parameter"):
            FamilySpec.create("gnp", density=0.5)

    def test_round_trip_through_dict(self):
        for name in FAMILIES:
            spec = FamilySpec.create(name)
            assert FamilySpec.from_spec(spec.to_dict()) == spec
            assert FamilySpec.from_spec(name) == spec

    def test_kronecker_validation(self):
        with pytest.raises(WorldsError, match="initiator"):
            FamilySpec.create("kronecker", initiator=[0.5, 0.5, 0.5])
        with pytest.raises(WorldsError, match="initiator weight"):
            FamilySpec.create("kronecker", initiator=[0.5, 0.5, 0.5, -0.1])
        with pytest.raises(WorldsError, match="cannot place"):
            FamilySpec.create("kronecker", power=2, edges=100)
        with pytest.raises(WorldsError, match="power"):
            FamilySpec.create("kronecker", power=0)

    def test_config_exponent_must_exceed_one(self):
        # The headline parse-time check: degree exponent <= 1 is not a
        # power law and must fail before any degree is sampled.
        with pytest.raises(WorldsError, match="degree exponent must be > 1"):
            FamilySpec.create("config", exponent=1.0)
        with pytest.raises(WorldsError, match="degree exponent must be > 1"):
            FamilySpec.create("config", exponent=0.8)
        with pytest.raises(WorldsError, match="max_degree"):
            FamilySpec.create("config", n=10, max_degree=10)


class TestScenarioSpec:
    def test_negative_deletion_rate(self):
        with pytest.raises(WorldsError, match="deletion rate"):
            ScenarioSpec.create("deletion_heavy", deletion_rate=-0.5)
        with pytest.raises(WorldsError, match="deletion rate"):
            ScenarioSpec.create("deletion_heavy", deletion_rate=1.5)

    def test_window_fraction_zero_rejected(self):
        with pytest.raises(WorldsError, match="window fraction"):
            ScenarioSpec.create("sliding_window", window_fraction=0.0)

    def test_unknown_kind_and_parameter(self):
        with pytest.raises(WorldsError, match="unknown scenario"):
            ScenarioSpec.create("burst")
        with pytest.raises(WorldsError, match="parameter"):
            ScenarioSpec.create("insertion", rate=1)

    def test_needs_deletions_flags(self):
        assert not ScenarioSpec.create("insertion").needs_deletions
        assert not ScenarioSpec.create("adversarial").needs_deletions
        assert ScenarioSpec.create("deletion_heavy").needs_deletions
        assert ScenarioSpec.create("sliding_window").needs_deletions

    def test_round_trip_through_dict(self):
        spec = ScenarioSpec.create("deletion_heavy", deletion_rate=0.25)
        assert ScenarioSpec.from_spec(spec.to_dict()) == spec


class TestWorldGridValidation:
    def test_empty_grid_axes(self):
        with pytest.raises(WorldsError, match="empty grid: no generator"):
            WorldGrid(families=[])
        with pytest.raises(WorldsError, match="empty grid: no scenarios"):
            WorldGrid(families=["gnp"], scenarios=[])
        with pytest.raises(WorldsError, match="empty grid: no space budgets"):
            WorldGrid(families=["gnp"], budgets=[])

    def test_unknown_estimator_pattern_backend(self):
        with pytest.raises(WorldsError, match="unknown estimator"):
            WorldGrid(families=["gnp"], estimators=["three-pass"])
        with pytest.raises(WorldsError):
            WorldGrid(families=["gnp"], patterns=["Q7"])
        with pytest.raises(WorldsError, match="unknown backend"):
            WorldGrid(families=["gnp"], backend="gpu")
        with pytest.raises(WorldsError, match="cache policy"):
            WorldGrid(families=["gnp"], cache="mru:1M")
        with pytest.raises(WorldsError, match="epsilon"):
            WorldGrid(families=["gnp"], epsilon=0.0)
        with pytest.raises(WorldsError, match="space budget"):
            WorldGrid(families=["gnp"], budgets=[0])

    def test_deletion_scenarios_only_run_turnstile(self):
        grid = WorldGrid(
            families=["gnp"],
            scenarios=["insertion", "deletion_heavy"],
            estimators=list(ESTIMATORS),
            patterns=["S3"],
            budgets=[10],
        )
        for cell in grid.cells():
            if cell.scenario.needs_deletions:
                assert cell.estimator == "turnstile", cell.key

    def test_two_pass_needs_star_decomposable_pattern(self):
        grid = WorldGrid(
            families=["gnp"], estimators=["two-pass"],
            patterns=["triangle", "S3"], budgets=[10],
        )
        assert {cell.pattern for cell in grid.cells()} == {"S3"}

    def test_all_incompatible_product_fails_at_parse_time(self):
        with pytest.raises(WorldsError, match="no runnable cells"):
            WorldGrid(
                families=["gnp"], scenarios=["deletion_heavy"],
                estimators=["insertion", "two-pass"], budgets=[10],
            )

    def test_cell_keys_are_unique_and_stable(self):
        grid = WorldGrid(families=["gnp", "ws"], budgets=[10, 20])
        keys = [cell.key for cell in grid.cells()]
        assert len(keys) == len(set(keys))
        assert "gnp(n=64,p=0.15)|insertion|insertion|triangle|t10" in keys

    def test_dict_round_trip_preserves_cells(self):
        grid = WorldGrid(
            families=[{"family": "kronecker", "power": 5, "edges": 60}],
            scenarios=[{"kind": "sliding_window", "window_fraction": 0.3}],
            estimators=["turnstile"], budgets=[25], copies=2, epsilon=0.4,
        )
        clone = WorldGrid.from_dict(grid.to_dict())
        assert [c.key for c in clone.cells()] == [c.key for c in grid.cells()]
        assert clone.to_dict() == grid.to_dict()

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        with pytest.raises(WorldsError, match="unknown grid key"):
            WorldGrid.from_dict({"families": ["gnp"], "parallel": True})
        with pytest.raises(WorldsError, match="'families'"):
            WorldGrid.from_dict({"budgets": [10]})

    def test_from_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"families": ["gnp"], "budgets": [5]}),
                        encoding="utf-8")
        grid = WorldGrid.from_file(path)
        assert grid.budgets == [5]
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(WorldsError, match="not valid JSON"):
            WorldGrid.from_file(bad)


def _mini_grid(**overrides):
    kwargs = dict(
        families=[{"family": "gnp", "n": 24, "p": 0.2}],
        scenarios=["insertion", {"kind": "deletion_heavy", "deletion_rate": 0.5}],
        estimators=["insertion", "turnstile"],
        patterns=["triangle"],
        budgets=[40],
        copies=2,
        epsilon=0.9,
        seed=2022,
        cache="lru:64K",
    )
    kwargs.update(overrides)
    return WorldGrid(**kwargs)


class TestSweep:
    def test_mini_sweep_validates_and_scores_against_disk_truth(self, tmp_path):
        grid = _mini_grid()
        out = tmp_path / "sweep.json"
        document = run_sweep(grid, out_path=out)
        validate_sweep_document(document)
        rows = document["rows"]
        # insertion x {insertion, turnstile} + deletion_heavy x turnstile.
        assert [row["estimator"] for row in rows] == [
            "insertion", "turnstile", "turnstile",
        ]
        # Scenarios share the family's base graph, so truth and m agree
        # across the whole column.
        assert len({row["truth"] for row in rows}) == 1
        assert len({row["m"] for row in rows}) == 1
        assert all(row["peak_resident_bytes"] > 0 for row in rows)

        # The recorded truth is the exact count of the materialized
        # workload's final graph, re-derived independently here.
        family, scenario = grid.families[0], grid.scenarios[0]
        path = tmp_path / "check.reb"
        materialize_workload(
            family, scenario, _grid_seed(grid, f"family:{family.label}"), path,
            scenario_seed=_grid_seed(
                grid, f"scenario:{family.label}|{scenario.label}"
            ),
        )
        truth = count_subgraphs(
            DiskEdgeStream(path, cache="none").final_graph(), zoo.triangle()
        )
        assert rows[0]["truth"] == truth > 0

        # The archived file is the same (valid) document.
        archived = json.loads(out.read_text(encoding="utf-8"))
        validate_sweep_document(archived)
        assert archived["rows"] == rows

    def test_resume_reuses_rows_bit_for_bit(self, tmp_path):
        grid = _mini_grid()
        out = tmp_path / "sweep.json"
        first = run_sweep(grid, out_path=out)
        events = []
        second = run_sweep(grid, out_path=out, resume=True,
                           progress=events.append)
        assert second["rows"] == first["rows"]
        assert all("reused" in line for line in events if "] " in line)

    def test_resume_rejects_a_different_grid(self, tmp_path):
        out = tmp_path / "sweep.json"
        run_sweep(_mini_grid(estimators=["insertion"],
                             scenarios=["insertion"]), out_path=out)
        with pytest.raises(WorldsError, match="different grid spec"):
            run_sweep(_mini_grid(estimators=["insertion"],
                                 scenarios=["insertion"], seed=7),
                      out_path=out, resume=True)
        with pytest.raises(WorldsError, match="output path"):
            run_sweep(_mini_grid(), resume=True)

    def test_cells_filter_must_match_something(self):
        with pytest.raises(WorldsError, match="match none"):
            run_sweep(_mini_grid(), cells=["no-such-cell"])

    def test_cell_results_are_independent_of_filtering(self, tmp_path):
        # Per-cell randomness hangs off the cell key, so running a cell
        # alone reproduces its row from the full sweep (timing aside).
        grid = _mini_grid(estimators=["insertion"], scenarios=["insertion"],
                          budgets=[40, 80])
        full = run_sweep(grid)
        alone = run_sweep(grid, cells=["t80"])
        assert len(alone["rows"]) == 1

        def stable(row):
            return {key: value for key, value in row.items()
                    if key not in ("seconds", "updates_per_s")}

        by_key = {row["cell"]: row for row in full["rows"]}
        row = alone["rows"][0]
        assert stable(row) == stable(by_key[row["cell"]])


def _valid_row():
    return {
        "cell": "gnp(n=24,p=0.2)|insertion|insertion|triangle|t40",
        "family": "gnp(n=24,p=0.2)",
        "scenario": "insertion",
        "estimator": "insertion",
        "pattern": "triangle",
        "space_budget": 40,
        "copies": 2,
        "n": 24,
        "length": 55,
        "m": 55,
        "truth": 19,
        "estimate": 20.5,
        "rel_err": 0.0789,
        "epsilon": 0.9,
        "eps_violation": False,
        "copy_violation_rate": 0.0,
        "peak_resident_bytes": 1320,
        "updates_per_s": 1234.5,
        "seconds": 0.04,
        "passes": 3,
    }


def _valid_document():
    return {
        "benchmark": "worlds_sweep",
        "git_sha": "abc1234",
        "created_unix": 1754600000,
        "params": {"families": [{"family": "gnp"}]},
        "rows": [_valid_row()],
    }


class TestSweepSchema:
    def test_valid_document_passes(self):
        document = _valid_document()
        assert validate_sweep_document(document) is document

    @pytest.mark.parametrize("key", ROW_KEYS)
    def test_every_missing_column_is_reported(self, key):
        document = _valid_document()
        del document["rows"][0][key]
        with pytest.raises(WorldsError, match=key):
            validate_sweep_document(document)

    def test_eps_violation_must_agree_with_rel_err(self):
        document = _valid_document()
        document["rows"][0]["eps_violation"] = True
        with pytest.raises(WorldsError, match="disagrees"):
            validate_sweep_document(document)

    def test_negative_and_nonfinite_values_rejected(self):
        for key, value in (
            ("peak_resident_bytes", -1),
            ("rel_err", float("nan")),
            ("updates_per_s", 0.0),
            ("passes", 0),
            ("epsilon", 1.5),
        ):
            document = _valid_document()
            document["rows"][0][key] = value
            with pytest.raises(WorldsError, match=key.split("_")[0]):
                validate_sweep_document(document)

    def test_top_level_contract(self):
        with pytest.raises(WorldsError, match="expected an object"):
            validate_sweep_document([])
        document = _valid_document()
        document["created_unix"] = 17.5
        with pytest.raises(WorldsError, match="created_unix"):
            validate_sweep_document(document)
        document = _valid_document()
        document["rows"] = {"0": _valid_row()}
        with pytest.raises(WorldsError, match="rows"):
            validate_sweep_document(document)


@pytest.mark.statistical
class TestWorldsStatisticalSweep:
    """The sweep-level (1±ε) tier: same contract, a world of workloads.

    Mirrors ``test_statistical_guarantees.py``: seeded runs, generous
    budgets, and a one-miss slack so legitimate refactors that permute
    random draws don't flake the suite.
    """

    def test_triangle_sweep_meets_epsilon_across_worlds(self):
        # Budget 600 gives every cell >= ~15 expected sampler hits per
        # copy (hit rate = truth / (2m)^1.5), the regime where the
        # median-of-3 lands inside (1±0.5) with room to spare.
        grid = WorldGrid(
            families=[
                {"family": "gnp", "n": 32, "p": 0.3},
                {"family": "kronecker", "power": 6, "edges": 240},
                {"family": "config", "n": 64, "exponent": 2.0,
                 "min_degree": 2},
            ],
            scenarios=["insertion",
                       {"kind": "deletion_heavy", "deletion_rate": 0.4}],
            estimators=["insertion", "turnstile"],
            patterns=["triangle"],
            budgets=[600],
            copies=3,
            epsilon=0.5,
            seed=20220704,
            cache="lru:1M",
        )
        document = run_sweep(grid)
        rows = document["rows"]
        # 3 families x (insertion: 2 estimators; deletion: turnstile).
        assert len(rows) == 3 * 3
        assert all(row["truth"] > 0 for row in rows)
        violations = [row["cell"] for row in rows if row["eps_violation"]]
        assert len(violations) <= 1, (
            f"(1±0.5) violated in {len(violations)}/{len(rows)} cells: "
            f"{violations}"
        )

    def test_star_sweep_meets_epsilon_with_calibrated_budget(self):
        # S3 has rho = 3, so the hit rate is truth / (2m)^3 — a sparse
        # family at budget 400 sees ~0.06 expected hits and estimates
        # zero.  A (1±ε) claim for stars needs a budget sized like
        # test_statistical_guarantees' chernoff budgets: on this dense
        # family (m=81, truth=2822) 24000 trials give ~16 expected hits
        # per copy.
        grid = WorldGrid(
            families=[{"family": "gnp", "n": 14, "p": 0.9}],
            scenarios=["insertion"],
            estimators=["insertion", "two-pass"],
            patterns=["S3"],
            budgets=[24000],
            copies=5,
            epsilon=0.5,
            seed=20220704,
            cache="lru:1M",
        )
        document = run_sweep(grid)
        rows = document["rows"]
        assert len(rows) == 2
        assert all(row["truth"] > 0 for row in rows)
        violations = [row["cell"] for row in rows if row["eps_violation"]]
        assert not violations, (
            f"(1±0.5) violated at a calibrated S3 budget: {violations}"
        )
