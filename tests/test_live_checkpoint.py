"""Snapshot / resume / continuous-query tests for the live engine.

The golden contract: **snapshot → restore → continue is bit-identical
to a run that never stopped**, for every estimator family (FGP 3-pass
insertion, 3-pass turnstile, 2-pass star-decomposable, TRIEST,
Doulion, ERS, exact), across both execution backends, and against all
three fused one-shot entry points.  Plus the guard rails: mid-batch
checkpoint rejection, stale-estimator registration rejection, and
checkpoint format validation.
"""

import os
import pickle

import pytest

from repro import generators, insertion_stream, patterns
from repro.engine import (
    EstimatorSpec,
    FusionMode,
    LiveEngine,
    StreamEngine,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
    ers_clique_estimator,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
    fgp_two_pass_estimator,
)
from repro.engine.live import CHECKPOINT_MAGIC
from repro.engine.parallel import build_doulion, build_exact_stream, build_triest
from repro.errors import CheckpointError, EngineError
from repro.streams.generators import turnstile_churn_stream


def _assert_same_result(left, right):
    assert left.algorithm == right.algorithm
    assert left.estimate == right.estimate
    assert left.trials == right.trials
    assert left.successes == right.successes
    assert left.details == right.details


def _insertion_fixture():
    graph = generators.barabasi_albert(140, 4, rng=11)
    return graph, insertion_stream(graph, rng=12)


def _feed_interrupted(engine_factory, stream, checkpoint_path, cut=None):
    """Feed *stream* through a live engine with a snapshot/restore at *cut*.

    Returns the restored engine's estimates after the full feed.
    """
    u, v, d = stream.columns()
    if cut is None:
        cut = len(u) // 2
    engine = engine_factory()
    engine.feed((u[:cut], v[:cut], d[:cut]))
    engine.snapshot(checkpoint_path)
    engine.close()
    restored = LiveEngine.restore(checkpoint_path)
    restored.feed((u[cut:], v[cut:], d[cut:]))
    results = restored.estimate()
    restored.close()
    return results


def _mirror_specs(factory, pattern, trials, seeds):
    return [
        EstimatorSpec(
            name=f"copy-{index}",
            factory=factory,
            kwargs=dict(pattern=pattern, trials=trials, rng=seed, name=f"copy-{index}"),
        )
        for index, seed in enumerate(seeds)
    ]


class TestGoldenContinuity:
    """Acceptance: interrupted live == uninterrupted fused, both backends."""

    def _check_entry_point(self, stream, pattern, factory, fused_entry, tmp_path,
                           trials=30, allow_deletions=False):
        seeds = [100, 101, 102]
        serial = fused_entry(
            stream, pattern, copies=3, trials=trials,
            mode=FusionMode.MIRROR, copy_rngs=list(seeds),
        )
        process = fused_entry(
            stream, pattern, copies=3, trials=trials,
            mode=FusionMode.MIRROR, copy_rngs=list(seeds),
            backend="process", workers=2,
        )

        def build():
            engine = LiveEngine(n=stream.n, allow_deletions=allow_deletions)
            engine.register_all(_mirror_specs(factory, pattern, trials, seeds))
            return engine

        results = _feed_interrupted(build, stream, tmp_path / "ckpt.bin")
        for index in range(3):
            live_copy = results[f"copy-{index}"]
            _assert_same_result(live_copy, serial.copies[index])
            _assert_same_result(live_copy, process.copies[index])

    def test_insertion_entry_point(self, tmp_path):
        _, stream = _insertion_fixture()
        self._check_entry_point(
            stream, patterns.triangle(), fgp_insertion_estimator,
            count_subgraphs_insertion_only_fused, tmp_path,
        )

    def test_turnstile_entry_point(self, tmp_path):
        graph = generators.gnp(32, 0.25, rng=3)
        stream = turnstile_churn_stream(graph, churn_edges=25, rng=4)
        assert stream.allows_deletions
        self._check_entry_point(
            stream, patterns.triangle(), fgp_turnstile_estimator,
            count_subgraphs_turnstile_fused, tmp_path,
            trials=10, allow_deletions=True,
        )

    def test_two_pass_entry_point(self, tmp_path):
        _, stream = _insertion_fixture()
        self._check_entry_point(
            stream, patterns.cycle(4), fgp_two_pass_estimator,
            count_subgraphs_two_pass_fused, tmp_path,
        )


class TestSnapshotRoundTripFamilies:
    """state_dict → serialize → restore → continue, per estimator family."""

    def _roundtrip(self, stream, spec, tmp_path, allow_deletions=False, cut=None):
        def build():
            engine = LiveEngine(n=stream.n, allow_deletions=allow_deletions)
            engine.register_spec(spec)
            return engine

        # Uninterrupted reference: one engine, full feed, no snapshot.
        u, v, d = stream.columns()
        reference = build()
        reference.feed((u, v, d))
        expected = reference.estimate()[spec.name]
        reference.close()

        interrupted = _feed_interrupted(build, stream, tmp_path / "ckpt.bin", cut=cut)
        _assert_same_result(interrupted[spec.name], expected)
        return expected

    def test_fgp_insertion(self, tmp_path):
        _, stream = _insertion_fixture()
        result = self._roundtrip(
            stream,
            EstimatorSpec(
                name="fgp",
                factory=fgp_insertion_estimator,
                kwargs=dict(pattern=patterns.triangle(), trials=120, rng=9, name="fgp"),
            ),
            tmp_path,
        )
        assert result.passes == 3

    def test_fgp_turnstile(self, tmp_path):
        graph = generators.gnp(30, 0.3, rng=3)
        stream = turnstile_churn_stream(graph, churn_edges=20, rng=4)
        result = self._roundtrip(
            stream,
            EstimatorSpec(
                name="fgp-t",
                factory=fgp_turnstile_estimator,
                kwargs=dict(pattern=patterns.triangle(), trials=60, rng=9, name="fgp-t"),
            ),
            tmp_path,
            allow_deletions=True,
        )
        assert result.estimate > 0  # non-vacuous equality

    def test_fgp_two_pass(self, tmp_path):
        _, stream = _insertion_fixture()
        result = self._roundtrip(
            stream,
            EstimatorSpec(
                name="fgp-2p",
                factory=fgp_two_pass_estimator,
                kwargs=dict(pattern=patterns.cycle(4), trials=120, rng=9, name="fgp-2p"),
            ),
            tmp_path,
        )
        assert result.passes == 2

    def test_triest(self, tmp_path):
        _, stream = _insertion_fixture()
        result = self._roundtrip(
            stream,
            EstimatorSpec(
                name="triest", factory=build_triest,
                kwargs=dict(capacity=120, rng=7, name="triest"),
            ),
            tmp_path,
        )
        assert result.estimate > 0

    def test_doulion(self, tmp_path):
        _, stream = _insertion_fixture()
        result = self._roundtrip(
            stream,
            EstimatorSpec(
                name="doulion", factory=build_doulion,
                kwargs=dict(keep_probability=0.5, rng=7, name="doulion"),
            ),
            tmp_path,
        )
        assert result.estimate >= 0

    def test_exact(self, tmp_path):
        graph, stream = _insertion_fixture()
        result = self._roundtrip(
            stream,
            EstimatorSpec(
                name="exact", factory=build_exact_stream,
                kwargs=dict(pattern=patterns.triangle(), name="exact"),
            ),
            tmp_path,
        )
        from repro.exact.subgraphs import count_subgraphs

        assert result.estimate == count_subgraphs(graph, patterns.triangle())

    def test_ers(self, tmp_path):
        graph = generators.planted_cliques(60, 4, 5, noise_edges=40, rng=5)
        stream = insertion_stream(graph, rng=6)
        self._roundtrip(
            stream,
            EstimatorSpec(
                name="ers",
                factory=ers_clique_estimator,
                kwargs=dict(r=3, degeneracy_bound=10, lower_bound=5.0, rng=77,
                            name="ers"),
            ),
            tmp_path,
        )

    def test_every_cut_point_is_equivalent(self, tmp_path):
        """Bit-equality holds wherever the interruption lands, batch-unaligned."""
        graph = generators.gnp(25, 0.3, rng=8)
        stream = insertion_stream(graph, rng=9)
        spec = EstimatorSpec(
            name="fgp", factory=fgp_insertion_estimator,
            kwargs=dict(pattern=patterns.triangle(), trials=40, rng=5, name="fgp"),
        )
        expected = None
        for cut in (1, 7, len(stream) - 1):
            result = self._roundtrip(stream, spec, tmp_path, cut=cut)
            if expected is None:
                expected = result
            else:
                _assert_same_result(result, expected)


class TestContinuousQueries:
    def test_mid_stream_estimate_equals_one_shot_on_prefix(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        u, v, d = stream.columns()
        cut = len(u) // 3

        engine = LiveEngine(n=stream.n)
        engine.register_all(_mirror_specs(fgp_insertion_estimator, pattern, 40, [55]))
        engine.feed((u[:cut], v[:cut], d[:cut]))
        mid = engine.estimate()["copy-0"]

        from repro.streams.stream import ColumnEdgeStream

        prefix = ColumnEdgeStream(stream.n, u[:cut], v[:cut], d[:cut])
        one_shot = count_subgraphs_insertion_only_fused(
            prefix, pattern, copies=1, trials=40,
            mode=FusionMode.MIRROR, copy_rngs=[55],
        )
        _assert_same_result(mid, one_shot.copies[0])

        # The query did not perturb the live state: finish the feed and
        # compare against an engine that was never queried.
        engine.feed((u[cut:], v[cut:], d[cut:]))
        queried = engine.estimate()["copy-0"]

        quiet = LiveEngine(n=stream.n)
        quiet.register_all(_mirror_specs(fgp_insertion_estimator, pattern, 40, [55]))
        quiet.feed((u, v, d))
        _assert_same_result(queried, quiet.estimate()["copy-0"])

    def test_estimate_is_idempotent(self):
        _, stream = _insertion_fixture()
        engine = LiveEngine(n=stream.n)
        engine.register_spec(EstimatorSpec(
            name="triest", factory=build_triest, kwargs=dict(capacity=64, rng=3),
        ))
        engine.feed(stream.columns())
        first = engine.estimate()["triest"]
        second = engine.estimate()["triest"]
        _assert_same_result(first, second)


class TestProcessBackendLive:
    def test_process_feed_snapshot_restore_matches_serial(self, tmp_path):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        seeds = [100, 101]
        u, v, d = stream.columns()
        cut = len(u) // 2

        serial = LiveEngine(n=stream.n)
        serial.register_all(_mirror_specs(fgp_insertion_estimator, pattern, 25, seeds))
        serial.feed((u, v, d))
        expected = serial.estimate()

        proc = LiveEngine(n=stream.n, backend="process", workers=2)
        proc.register_all(_mirror_specs(fgp_insertion_estimator, pattern, 25, seeds))
        proc.feed((u[:cut], v[:cut], d[:cut]))
        path = tmp_path / "proc.ckpt"
        proc.snapshot(path)
        proc.feed((u[cut:], v[cut:], d[cut:]))
        full = proc.estimate()
        proc.close()
        for name in expected:
            _assert_same_result(full[name], expected[name])

        # Cross-backend restore: the process checkpoint resumes serially.
        restored = LiveEngine.restore(path, backend="serial")
        restored.feed((u[cut:], v[cut:], d[cut:]))
        resumed = restored.estimate()
        for name in expected:
            _assert_same_result(resumed[name], expected[name])


class _SnapshotDuringIngest:
    """Test double: an estimator that snapshots its own engine mid-batch."""

    name = "hook"
    engine = None
    path = None
    action = "snapshot"

    def wants_pass(self):
        return True

    def begin_pass(self, pass_index):
        pass

    def ingest_batch(self, batch):
        if type(self).action == "snapshot":
            type(self).engine.snapshot(type(self).path)
        else:
            type(self).engine.feed([(0, 1)])

    def end_pass(self):
        pass

    def result(self):
        return None


def _build_hook(stream, **kwargs):
    return _SnapshotDuringIngest()


class TestMidBatchRejection:
    def _hooked_engine(self, tmp_path, action):
        engine = LiveEngine(n=10)
        engine.register_spec(EstimatorSpec(name="hook", factory=_build_hook))
        _SnapshotDuringIngest.engine = engine
        _SnapshotDuringIngest.path = os.fspath(tmp_path / "mid.ckpt")
        _SnapshotDuringIngest.action = action
        return engine

    def test_snapshot_mid_batch_is_rejected(self, tmp_path):
        engine = self._hooked_engine(tmp_path, "snapshot")
        with pytest.raises(CheckpointError, match="mid-batch"):
            engine.feed([(0, 1), (1, 2)])
        assert not os.path.exists(_SnapshotDuringIngest.path)

    def test_reentrant_feed_is_rejected(self, tmp_path):
        engine = self._hooked_engine(tmp_path, "feed")
        with pytest.raises(EngineError, match="mid-batch"):
            engine.feed([(2, 3)])

    def test_dispatch_failure_poisons_the_engine(self):
        """A feed that dies mid-dispatch tears the journal/estimator
        agreement; the engine must refuse to keep serving answers."""
        from repro.errors import EstimationError

        engine = LiveEngine(n=8, allow_deletions=True)
        # TRIEST rejects deletions mid-ingest — after the journal
        # already committed the chunk.
        engine.register_spec(EstimatorSpec(
            name="triest", factory=build_triest, kwargs=dict(capacity=16, rng=1),
        ))
        engine.feed([(0, 1), (1, 2)])
        with pytest.raises(EstimationError):
            engine.feed([(0, 1, -1)])
        with pytest.raises(EngineError, match="closed"):
            engine.estimate()
        with pytest.raises(EngineError, match="closed"):
            engine.feed([(2, 3)])


class TestRegistrationGuards:
    """Regression: stale/late registration raises instead of mis-accounting."""

    def test_register_estimator_that_already_consumed_passes(self):
        _, stream = _insertion_fixture()
        from repro.baselines import TriestEstimator

        estimator = TriestEstimator(capacity=32, rng=1)
        first = StreamEngine(stream)
        first.register(estimator)
        first.run()
        assert estimator.passes_consumed == 1

        second = StreamEngine(stream)
        with pytest.raises(EngineError, match="already consumed"):
            second.register(estimator)

    def test_register_after_run_completed(self):
        _, stream = _insertion_fixture()
        from repro.baselines import TriestEstimator

        engine = StreamEngine(stream)
        engine.register(TriestEstimator(capacity=32, rng=1))
        engine.run()
        with pytest.raises(EngineError, match="after run"):
            engine.register(TriestEstimator(capacity=32, rng=2, name="late"))

    def test_register_while_run_in_progress(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream)

        class Registering:
            name = "registering"

            def __init__(self):
                self._done = False

            def wants_pass(self):
                return not self._done

            def begin_pass(self, pass_index):
                pass

            def ingest_batch(self, batch):
                from repro.baselines import TriestEstimator

                engine.register(TriestEstimator(capacity=32, rng=3, name="late"))

            def end_pass(self):
                self._done = True

            def result(self):
                return None

        engine.register(Registering())
        with pytest.raises(EngineError, match="in progress"):
            engine.run()

    def test_live_register_after_feed_started(self):
        engine = LiveEngine(n=8)
        engine.register_spec(EstimatorSpec(
            name="triest", factory=build_triest, kwargs=dict(capacity=16, rng=1),
        ))
        engine.feed([(0, 1), (1, 2)])
        with pytest.raises(EngineError, match="after feeding has started"):
            engine.register_spec(EstimatorSpec(
                name="late", factory=build_triest,
                kwargs=dict(capacity=16, rng=2, name="late"),
            ))


class TestCheckpointFormat:
    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="bad magic"):
            LiveEngine.restore(path)

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        with open(path, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            pickle.dump({"format": "repro-live-checkpoint", "version": 99}, handle)
        with pytest.raises(CheckpointError, match="version"):
            LiveEngine.restore(path)

    def test_snapshot_is_atomic_over_existing_checkpoint(self, tmp_path):
        engine = LiveEngine(n=8)
        engine.register_spec(EstimatorSpec(
            name="triest", factory=build_triest, kwargs=dict(capacity=16, rng=1),
        ))
        engine.feed([(0, 1)])
        path = tmp_path / "ckpt.bin"
        engine.snapshot(path)
        assert not os.path.exists(str(path) + ".tmp")
        restored = LiveEngine.restore(path)
        assert restored.elements == 1

    def test_mismatched_state_configuration_raises(self):
        from repro.baselines import TriestEstimator

        small = TriestEstimator(capacity=16, rng=1)
        big = TriestEstimator(capacity=64, rng=1)
        with pytest.raises(CheckpointError, match="capacity"):
            big.load_state_dict(small.state_dict())

    def test_structural_drift_fails_replay(self):
        """A spec with a different trial budget cannot absorb the state."""
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        original = fgp_insertion_estimator(stream, pattern, trials=10, rng=4)
        original.begin_pass(0)
        from repro.streams.stream import pass_batches

        for batch in pass_batches(stream, 64):
            original.ingest_batch(batch)
        original.end_pass()
        state = original.state_dict()

        drifted = fgp_insertion_estimator(stream, pattern, trials=20, rng=4)
        with pytest.raises(CheckpointError, match="different structure"):
            drifted.load_state_dict(state)

    def test_load_into_used_estimator_raises(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        original = fgp_insertion_estimator(stream, pattern, trials=5, rng=4)
        state = original.state_dict()
        used = fgp_insertion_estimator(stream, pattern, trials=5, rng=4)
        used.begin_pass(0)
        with pytest.raises(CheckpointError, match="freshly built"):
            used.load_state_dict(state)


class TestEmptyFeed:
    """A zero-length chunk is a validated no-op on every backend.

    Regression tier: an empty *first* feed used to trigger ``_start()``
    anyway — locking estimator registration and building worker pools
    for an engine that had journaled nothing.
    """

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_empty_first_feed_does_not_start_the_engine(self, backend):
        import numpy as np

        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        empty = np.array([], dtype=np.int64)

        reference = LiveEngine(n=stream.n)
        reference.register_all(
            _mirror_specs(fgp_insertion_estimator, pattern, 25, [100, 101])
        )
        u, v, d = stream.columns()
        reference.feed((u, v, d))
        expected = reference.estimate()
        reference.close()

        engine = LiveEngine(n=stream.n, backend=backend, workers=2)
        engine.register_all(
            _mirror_specs(fgp_insertion_estimator, pattern, 25, [100])
        )
        assert engine.feed((empty, empty, empty)) == 0
        assert engine.started is False
        assert engine.elements == 0
        # Registration stays open after the no-op...
        engine.register_spec(EstimatorSpec(
            name="copy-1",
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=25, rng=101, name="copy-1"),
        ))
        # ...and later empty chunks mid-stream are equally invisible.
        engine.feed((u, v, d))
        assert engine.feed((empty, empty, empty)) == 0
        assert engine.elements == len(u)
        results = engine.estimate()
        for name in expected:
            _assert_same_result(results[name], expected[name])
        engine.close()
