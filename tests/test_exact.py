"""Tests for exact counting, cross-validated against networkx."""

import itertools

import networkx as nx
import pytest

from repro.exact.cliques import count_cliques
from repro.exact.subgraphs import (
    count_homomorphisms,
    count_injective_homomorphisms,
    count_subgraphs,
)
from repro.exact.triangles import (
    count_triangles,
    global_clustering_coefficient,
    triangles_per_edge,
)
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo


def _to_networkx(graph):
    result = nx.Graph()
    result.add_nodes_from(range(graph.n))
    result.add_edges_from(graph.edges())
    return result


def _nx_triangles(graph):
    return sum(nx.triangles(_to_networkx(graph)).values()) // 3


class TestTriangles:
    def test_known_graphs(self):
        assert count_triangles(gen.complete_graph(5)) == 10
        assert count_triangles(gen.cycle_graph(5)) == 0
        assert count_triangles(gen.karate_club()) == 45
        assert count_triangles(gen.complete_bipartite_graph(4, 4)) == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_against_networkx(self, seed):
        graph = gen.gnp(40, 0.25, rng=seed)
        assert count_triangles(graph) == _nx_triangles(graph)

    def test_per_edge_counts_sum(self):
        graph = gen.karate_club()
        per_edge = triangles_per_edge(graph)
        assert sum(per_edge.values()) == 3 * count_triangles(graph)

    def test_per_edge_on_k4(self):
        per_edge = triangles_per_edge(gen.complete_graph(4))
        assert all(count == 2 for count in per_edge.values())

    def test_clustering_coefficient(self):
        graph = gen.karate_club()
        expected = nx.transitivity(_to_networkx(graph))
        assert global_clustering_coefficient(graph) == pytest.approx(expected)


class TestCliques:
    def test_complete_graph_binomials(self):
        import math

        for r in (3, 4, 5):
            assert count_cliques(gen.complete_graph(7), r) == math.comb(7, r)

    def test_trivial_orders(self):
        graph = gen.karate_club()
        assert count_cliques(graph, 1) == graph.n
        assert count_cliques(graph, 2) == graph.m

    def test_r3_matches_triangles(self):
        for seed in range(4):
            graph = gen.gnp(35, 0.3, rng=seed)
            assert count_cliques(graph, 3) == count_triangles(graph)

    @pytest.mark.parametrize("r", [3, 4, 5])
    def test_against_networkx_cliques(self, r):
        graph = gen.gnp(25, 0.4, rng=r)
        expected = sum(
            1
            for clique in nx.enumerate_all_cliques(_to_networkx(graph))
            if len(clique) == r
        )
        assert count_cliques(graph, r) == expected

    def test_planted(self):
        graph = gen.planted_cliques(60, 5, 7, noise_edges=0, rng=2)
        assert count_cliques(graph, 5) == 7


class TestSubgraphCounts:
    def _brute_force(self, host, pattern):
        """Count copies by brute-force subset enumeration."""
        target = pattern.graph
        k = target.n
        count = 0
        for subset in itertools.combinations(range(host.n), k):
            sub, _ = host.subgraph(subset)
            from repro.patterns.isomorphism import enumerate_spanning_copies

            count += len(enumerate_spanning_copies(sub, target, list(range(k))))
        return count

    @pytest.mark.parametrize(
        "pattern_factory",
        [
            pattern_zoo.triangle,
            pattern_zoo.path(3).__class__ and (lambda: pattern_zoo.path(3)),
            lambda: pattern_zoo.path(4),
            lambda: pattern_zoo.cycle(4),
            lambda: pattern_zoo.cycle(5),
            lambda: pattern_zoo.star(3),
            lambda: pattern_zoo.paw(),
            lambda: pattern_zoo.diamond(),
            lambda: pattern_zoo.matching(2),
        ],
    )
    def test_small_host_brute_force(self, pattern_factory):
        pattern = pattern_factory()
        host = gen.gnp(10, 0.45, rng=hash(pattern.name) % 1000)
        assert count_subgraphs(host, pattern) == self._brute_force(host, pattern)

    def test_wedges_closed_form(self):
        graph = gen.karate_club()
        wedges = sum(d * (d - 1) // 2 for d in graph.degrees())
        assert count_subgraphs(graph, pattern_zoo.path(3)) == wedges

    def test_disconnected_pattern(self):
        # Matchings in a path of 4 edges: pairs of non-adjacent edges.
        host = gen.path_graph(5)
        assert count_subgraphs(host, pattern_zoo.matching(2)) == 3

    def test_c4_in_complete_bipartite(self):
        import math

        host = gen.complete_bipartite_graph(4, 5)
        expected = math.comb(4, 2) * math.comb(5, 2)
        assert count_subgraphs(host, pattern_zoo.cycle(4)) == expected


class TestHomomorphisms:
    def test_hom_triangle_is_six_times_count(self):
        for seed in range(3):
            graph = gen.gnp(12, 0.5, rng=seed)
            assert count_homomorphisms(graph, pattern_zoo.triangle().graph) == (
                6 * count_triangles(graph)
            )

    def test_hom_c4_walk_identity(self):
        """hom(C4) = 8*#C4 + 2*sum(d^2) - 2m  (used by the C4 sketch)."""
        for seed in range(3):
            graph = gen.gnp(12, 0.5, rng=seed + 50)
            hom = count_homomorphisms(graph, pattern_zoo.cycle(4).graph)
            c4 = count_subgraphs(graph, pattern_zoo.cycle(4))
            degree_square = sum(d * d for d in graph.degrees())
            assert hom == 8 * c4 + 2 * degree_square - 2 * graph.m

    def test_hom_edge_is_2m(self):
        graph = gen.karate_club()
        assert count_homomorphisms(graph, pattern_zoo.edge().graph) == 2 * graph.m

    def test_injective_equals_aut_times_copies(self):
        graph = gen.gnp(11, 0.4, rng=77)
        pattern = pattern_zoo.paw()
        injective = count_injective_homomorphisms(graph, pattern.graph)
        assert injective == pattern.automorphism_count() * count_subgraphs(graph, pattern)
