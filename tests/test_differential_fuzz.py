"""Property-based differential fuzz suite.

Randomized streams (insertion-only and turnstile, with deletions,
re-inserted edges, adversarial chunkings) are driven through pairs of
execution paths that the engine guarantees are **bit-identical**:

* scalar vs columnar dispatch,
* arbitrary batch-size splits and cache policies,
* fed-live (:class:`repro.engine.live.LiveEngine`) vs one-shot fused,
* snapshot → restore → continue vs uninterrupted,
* serial vs thread vs process backends,
* sharded scatter/merge ingestion (random shard counts and random
  by-edge partitions, shard files with vertex ids past 2^32) vs the
  unsharded mirror run.

Seeds policy
------------
Every case derives its seed deterministically from ``BASE_SEED``
(default 20220704, the suite is fully reproducible), and every
assertion message carries the failing case's seed so a CI failure is
one command away from a local repro:

    REPRO_FUZZ_SEED=<printed seed> pytest tests/test_differential_fuzz.py

The CI fuzz job rotates ``REPRO_FUZZ_SEED`` per run (logged in the job
output and uploaded as an artifact on failure); tier-1 runs the fixed
default.
"""

import os
import random

import pytest

from repro.engine import (
    EstimatorSpec,
    FusionMode,
    LiveEngine,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
)
from repro.engine.parallel import build_exact_stream, build_triest
from repro.errors import StreamError
from repro.patterns import pattern as zoo
from repro.streams.stream import EdgeStream, Update

pytestmark = pytest.mark.fuzz

#: Root seed of the whole suite; rotate via REPRO_FUZZ_SEED.
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20220704"))


def case_rng(case: int, salt: str) -> random.Random:
    """The deterministic generator of one fuzz case."""
    return random.Random((BASE_SEED, salt, case).__repr__())


def random_stream(rng: random.Random, turnstile: bool) -> EdgeStream:
    """A random valid stream: dup re-insertions, deletions, skewed sizes.

    Turnstile streams interleave deletions of live edges (~35% of
    steps) with insertions, and deleted edges may be re-inserted later
    — the "dup edges over time" shape that exercises multiplicity
    bookkeeping.  Final multiplicities stay in {0, 1} by construction.
    """
    n = rng.randrange(10, 30)
    steps = rng.randrange(30, 110)
    present = []
    present_set = set()
    updates = []
    for _ in range(steps):
        if turnstile and present and rng.random() < 0.35:
            index = rng.randrange(len(present))
            edge = present.pop(index)
            present_set.discard(edge)
            u, v = edge if rng.random() < 0.5 else (edge[1], edge[0])
            updates.append(Update(u, v, -1))
            continue
        for _ in range(8):  # rejection-sample a non-present pair
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present_set:
                continue
            present.append(edge)
            present_set.add(edge)
            updates.append(Update(u, v, 1))
            break
    return EdgeStream(n, updates, allow_deletions=turnstile)


def random_cuts(rng: random.Random, length: int) -> list:
    """Random ragged chunk boundaries covering [0, length]."""
    cuts = sorted(rng.sample(range(1, max(2, length)), k=min(rng.randrange(1, 6), max(1, length - 1))))
    return [0] + [c for c in cuts if c < length] + [length]


def _fused(stream, pattern, rng, turnstile, **kwargs):
    entry = count_subgraphs_turnstile_fused if turnstile else count_subgraphs_insertion_only_fused
    return entry(stream, pattern, **kwargs)


CASES_SCALAR = 40
CASES_CACHE = 40
CASES_LIVE = 60
CASES_SNAPSHOT = 40
CASES_PROCESS = 5
CASES_VALIDATION = 16
CASES_WORLDS = 6
CASES_GEN_REPLAY = 10
CASES_SHARDED = 12
CASES_SHARD_FILES = 8


@pytest.mark.parametrize("case", range(CASES_SCALAR))
def test_scalar_vs_columnar(case):
    rng = case_rng(case, "scalar")
    turnstile = case % 2 == 1
    stream = random_stream(rng, turnstile)
    pattern = zoo.triangle() if rng.random() < 0.7 else zoo.path(3)
    seeds = [rng.randrange(1 << 30) for _ in range(2)]
    batch_a = rng.randrange(1, 64)
    batch_b = rng.randrange(1, 64)
    columnar = _fused(
        stream, pattern, rng, turnstile,
        copies=2, trials=6, mode=FusionMode.MIRROR, copy_rngs=list(seeds),
        batch_size=batch_a, columnar=True,
    )
    scalar = _fused(
        stream, pattern, rng, turnstile,
        copies=2, trials=6, mode=FusionMode.MIRROR, copy_rngs=list(seeds),
        batch_size=batch_b, columnar=False,
    )
    assert columnar.estimates == scalar.estimates, (
        f"scalar/columnar divergence (case={case}, base_seed={BASE_SEED}, "
        f"batch_sizes=({batch_a}, {batch_b}))"
    )


@pytest.mark.parametrize("case", range(CASES_CACHE))
def test_cache_policy_and_batch_split_invariance(case):
    rng = case_rng(case, "cache")
    turnstile = case % 2 == 0
    stream = random_stream(rng, turnstile)
    pattern = zoo.triangle()
    seeds = [rng.randrange(1 << 30)]
    reference = None
    for cache in ("all", f"lru:{rng.randrange(1, 8) << 10}", "none"):
        result = _fused(
            stream, pattern, rng, turnstile,
            copies=1, trials=8, mode=FusionMode.MIRROR, copy_rngs=list(seeds),
            batch_size=rng.randrange(1, 96), cache=cache,
        )
        if reference is None:
            reference = result
        assert result.estimates == reference.estimates, (
            f"cache-policy divergence under {cache!r} (case={case}, "
            f"base_seed={BASE_SEED})"
        )


@pytest.mark.parametrize("case", range(CASES_LIVE))
def test_fed_live_vs_one_shot(case):
    rng = case_rng(case, "live")
    turnstile = case % 4 == 0
    stream = random_stream(rng, turnstile)
    pattern = zoo.triangle()
    trials = rng.randrange(3, 8)
    seed = rng.randrange(1 << 30)
    factory = fgp_turnstile_estimator if turnstile else fgp_insertion_estimator

    one_shot = _fused(
        stream, pattern, rng, turnstile,
        copies=1, trials=trials, mode=FusionMode.MIRROR, copy_rngs=[seed],
    )

    engine = LiveEngine(
        n=stream.n,
        allow_deletions=turnstile,
        batch_size=rng.randrange(1, 64),
        columnar=rng.random() < 0.75,
    )
    engine.register_spec(EstimatorSpec(
        name="copy-0", factory=factory,
        kwargs=dict(pattern=pattern, trials=trials, rng=seed, name="copy-0"),
    ))
    if not turnstile and rng.random() < 0.4:
        engine.register_spec(EstimatorSpec(
            name="triest", factory=build_triest,
            kwargs=dict(capacity=max(2, rng.randrange(2, 40)), rng=seed + 1),
        ))
    u, v, d = stream.columns()
    cuts = random_cuts(rng, len(u))
    for a, b in zip(cuts, cuts[1:]):
        engine.feed((u[a:b], v[a:b], d[a:b]))
    live = engine.estimate()["copy-0"]
    assert (live.estimate, live.successes) == (
        one_shot.copies[0].estimate,
        one_shot.copies[0].successes,
    ), (
        f"fed-live/one-shot divergence (case={case}, base_seed={BASE_SEED}, "
        f"cuts={cuts})"
    )


@pytest.mark.parametrize("case", range(CASES_SNAPSHOT))
def test_snapshot_restore_vs_uninterrupted(case, tmp_path):
    rng = case_rng(case, "snapshot")
    turnstile = case % 3 == 1
    stream = random_stream(rng, turnstile)
    pattern = zoo.triangle()
    trials = rng.randrange(3, 7)
    seed = rng.randrange(1 << 30)
    factory = fgp_turnstile_estimator if turnstile else fgp_insertion_estimator

    def build():
        engine = LiveEngine(n=stream.n, allow_deletions=turnstile,
                            batch_size=rng.randrange(1, 48))
        engine.register_spec(EstimatorSpec(
            name="copy-0", factory=factory,
            kwargs=dict(pattern=pattern, trials=trials, rng=seed, name="copy-0"),
        ))
        engine.register_spec(EstimatorSpec(
            name="exact", factory=build_exact_stream, kwargs=dict(pattern=pattern),
        ))
        return engine

    u, v, d = stream.columns()
    quiet = build()
    quiet.feed((u, v, d))
    expected = quiet.estimate()

    cut = rng.randrange(0, len(u) + 1)
    interrupted = build()
    if cut:
        interrupted.feed((u[:cut], v[:cut], d[:cut]))
    path = tmp_path / f"fuzz-{case}.ckpt"
    interrupted.snapshot(path)
    restored = LiveEngine.restore(path)
    if cut < len(u):
        restored.feed((u[cut:], v[cut:], d[cut:]))
    resumed = restored.estimate()
    for name in expected:
        assert resumed[name].estimate == expected[name].estimate, (
            f"snapshot/restore divergence for {name!r} (case={case}, "
            f"base_seed={BASE_SEED}, cut={cut})"
        )


@pytest.mark.parametrize("case", range(CASES_PROCESS))
def test_serial_vs_thread_vs_process_backend(case):
    # Three-way: mirror-mode estimates are a pure function of the
    # seeds, whatever pool flavour (or worker count) ran the copies.
    rng = case_rng(case, "process")
    stream = random_stream(rng, turnstile=False)
    pattern = zoo.triangle()
    seeds = [rng.randrange(1 << 30) for _ in range(3)]
    serial = count_subgraphs_insertion_only_fused(
        stream, pattern, copies=3, trials=6,
        mode=FusionMode.MIRROR, copy_rngs=list(seeds),
    )
    for backend in ("thread", "process"):
        parallel = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=3, trials=6,
            mode=FusionMode.MIRROR, copy_rngs=list(seeds),
            backend=backend, workers=1 + case % 3,
        )
        assert parallel.estimates == serial.estimates, (
            f"serial/{backend} divergence (case={case}, base_seed={BASE_SEED}, "
            f"workers={1 + case % 3})"
        )


@pytest.mark.parametrize("case", range(CASES_VALIDATION))
def test_journal_rejects_invalid_feeds_atomically(case):
    rng = case_rng(case, "validation")
    stream = random_stream(rng, turnstile=True)
    engine = LiveEngine(n=stream.n, allow_deletions=True)
    engine.register_spec(EstimatorSpec(
        name="exact", factory=build_exact_stream, kwargs=dict(pattern=zoo.edge()),
    ))
    u, v, d = stream.columns()
    engine.feed((u, v, d))
    before = engine.elements
    kind = case % 4
    if kind == 0:
        bad = [(0, 0, 1)]  # self-loop
    elif kind == 1:
        bad = [(0, engine.n + 3, 1)]  # out of range
    elif kind == 2:
        bad = [(0, 1, 2)]  # bad delta
    else:
        # deleting an edge that is definitely absent: the stream model
        # forbids multiplicity below zero.
        seen = {(min(x, y), max(x, y)) for x, y in zip(u.tolist(), v.tolist())}
        absent = next(
            (a, b)
            for a in range(engine.n)
            for b in range(a + 1, engine.n)
            if (a, b) not in seen
        )
        engine.feed([absent])  # insert once...
        engine.feed([(absent[0], absent[1], -1)])  # ...delete it...
        before = engine.elements
        bad = [(absent[0], absent[1], -1)]  # ...delete again: absent
    with pytest.raises(StreamError):
        engine.feed(bad)
    assert engine.elements == before, (
        f"rejected feed mutated the journal (case={case}, base_seed={BASE_SEED})"
    )


def random_world_cell(rng: random.Random):
    """A random worlds grid point: family, scenario, compatible estimator."""
    from repro.worlds import FamilySpec, ScenarioSpec

    family = rng.choice([
        lambda: FamilySpec.create("gnp", n=rng.randrange(16, 33), p=0.2),
        lambda: FamilySpec.create("ws", n=rng.randrange(16, 33) | 1, k=4,
                                  rewire_p=0.2),
        lambda: FamilySpec.create("kronecker", power=5,
                                  edges=rng.randrange(40, 100)),
        lambda: FamilySpec.create("config", n=rng.randrange(24, 49),
                                  exponent=2.2, min_degree=1),
    ])()
    scenario = rng.choice([
        lambda: ScenarioSpec.create("insertion"),
        lambda: ScenarioSpec.create("adversarial"),
        lambda: ScenarioSpec.create("deletion_heavy",
                                    deletion_rate=rng.choice([0.3, 0.7])),
        lambda: ScenarioSpec.create("sliding_window",
                                    window_fraction=rng.choice([0.4, 0.8])),
    ])()
    turnstile = scenario.needs_deletions or rng.random() < 0.3
    return family, scenario, turnstile


@pytest.mark.parametrize("case", range(CASES_WORLDS))
def test_worlds_sampled_cell_is_backend_invariant(case, tmp_path):
    # A random grid cell, materialized out-of-core twice (the .reb
    # bytes must replay bit for bit), then driven through a random
    # estimator on serial vs thread backends: mirror-mode estimates
    # are a pure function of the seeds, whatever executed them.
    from repro.streams.datasets import DiskEdgeStream
    from repro.worlds import materialize_workload

    rng = case_rng(case, "worlds")
    family, scenario, turnstile = random_world_cell(rng)
    seed = rng.randrange(1 << 30)
    path_a = tmp_path / "a.reb"
    path_b = tmp_path / "b.reb"
    materialize_workload(family, scenario, seed, path_a)
    materialize_workload(family, scenario, seed, path_b)
    assert path_a.read_bytes() == path_b.read_bytes(), (
        f"workload materialization not bit-stable (case={case}, "
        f"base_seed={BASE_SEED}, family={family.label}, "
        f"scenario={scenario.label})"
    )

    stream = DiskEdgeStream(path_a, cache=rng.choice(["all", "lru:8K", "none"]))
    pattern = zoo.triangle() if rng.random() < 0.7 else zoo.path(3)
    seeds = [rng.randrange(1 << 30) for _ in range(2)]
    serial = _fused(
        stream, pattern, rng, turnstile,
        copies=2, trials=5, mode=FusionMode.MIRROR, copy_rngs=list(seeds),
        batch_size=rng.randrange(1, 64),
    )
    threaded = _fused(
        stream, pattern, rng, turnstile,
        copies=2, trials=5, mode=FusionMode.MIRROR, copy_rngs=list(seeds),
        batch_size=rng.randrange(1, 64), backend="thread", workers=2,
    )
    assert threaded.estimates == serial.estimates, (
        f"serial/thread divergence on worlds cell (case={case}, "
        f"base_seed={BASE_SEED}, family={family.label}, "
        f"scenario={scenario.label}, turnstile={turnstile})"
    )


@pytest.mark.parametrize("case", range(CASES_GEN_REPLAY))
def test_streaming_generators_replay_bit_stable(case):
    # The out-of-core contract of the streaming generator families:
    # identical arguments must yield identical chunk sequences, or
    # multi-pass DiskEdgeStream materialization silently diverges.
    import numpy as np

    from repro.graph import generators as gen

    rng = case_rng(case, "genreplay")
    seed = rng.randrange(1 << 30)
    chunk_size = rng.choice([7, 64, 8192])
    if case % 2 == 0:
        power = rng.randrange(4, 9)
        capacity = (1 << power) * ((1 << power) - 1) // 2
        edges = rng.randrange(20, min(200, capacity))

        def make():
            return list(gen.stochastic_kronecker_chunks(
                power, edges, seed=seed, chunk_size=chunk_size))
    else:
        degrees = gen.powerlaw_degree_sequence(
            rng.randrange(30, 120), rng.uniform(1.6, 3.5),
            min_degree=rng.randrange(1, 3), seed=seed,
        )

        def make():
            return list(gen.configuration_model_chunks(
                degrees, seed=seed, chunk_size=chunk_size))

    first = make()
    second = make()
    assert len(first) == len(second), (
        f"replay chunk-count drift (case={case}, base_seed={BASE_SEED})"
    )
    for (u1, v1), (u2, v2) in zip(first, second):
        assert np.array_equal(u1, u2) and np.array_equal(v1, v2), (
            f"replay bit-drift (case={case}, base_seed={BASE_SEED})"
        )


@pytest.mark.parametrize("case", range(CASES_SHARDED))
def test_sharded_scatter_merge_vs_unsharded(case):
    # Scatter/merge exactness: a turnstile run over ANY by-edge
    # partition of the stream — the canonical hash routing on even
    # cases, a completely random edge -> shard assignment (random "cut
    # points") on odd ones — merges back bit-identical to the
    # unsharded mirror run, whatever the shard count, batch sizes, or
    # local backend.
    import numpy as np

    from repro.engine import count_subgraphs_turnstile_sharded
    from repro.streams.datasets import stream_shard_views
    from repro.streams.stream import ColumnEdgeStream

    rng = case_rng(case, "sharded")
    stream = random_stream(rng, turnstile=True)
    pattern = zoo.triangle() if rng.random() < 0.7 else zoo.path(3)
    seeds = [rng.randrange(1 << 30) for _ in range(2)]
    unsharded = count_subgraphs_turnstile_fused(
        stream, pattern, copies=2, trials=6,
        mode=FusionMode.MIRROR, copy_rngs=list(seeds),
        batch_size=rng.randrange(1, 64),
    )
    shards_n = rng.randrange(1, 9)
    if case % 2 == 0:
        shard_streams = stream_shard_views(stream, shards_n)
    else:
        # A mergeable partition only needs all updates of one edge on
        # one shard, in stream order — sample the assignment freely.
        u, v, d = stream.columns()
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        assignment = {}
        routes = np.array([
            assignment.setdefault((a, b), rng.randrange(shards_n))
            for a, b in zip(lo.tolist(), hi.tolist())
        ] or [], dtype=np.int64)
        shard_streams = []
        for shard in range(shards_n):
            hit = routes == shard
            shard_streams.append(ColumnEdgeStream(
                stream.n, u[hit], v[hit], d[hit],
                allow_deletions=True, validate=False,
                net_edge_count=int(d[hit].sum()),
            ))
    sharded = count_subgraphs_turnstile_sharded(
        shard_streams, pattern, copies=2, trials=6,
        copy_rngs=list(seeds),
        backend=rng.choice(["serial", "thread"]),
        workers=rng.randrange(1, 4),
        batch_size=rng.randrange(1, 64),
    )
    assert sharded.estimates == unsharded.estimates, (
        f"sharded/unsharded divergence (case={case}, base_seed={BASE_SEED}, "
        f"shards={shards_n})"
    )


@pytest.mark.parametrize("case", range(CASES_SHARD_FILES))
def test_shard_files_big_ids_round_trip(case, tmp_path):
    # Shard routing and the shard file format must stay exact for
    # vertex ids past 2^32 (raw SNAP ids routinely are): routing is a
    # pure symmetric function of the normalized edge, every written
    # shard replays only rows routed to it, in stream order, and the
    # union of the shard headers reassembles the source's exactly.
    import numpy as np

    from repro.streams.datasets import (
        open_stream_shards,
        shard_route,
        write_binary_updates,
        write_stream_shards,
    )

    rng = case_rng(case, "shardfiles")
    shards_n = rng.randrange(1, 9)
    n = 1 << 40
    edges = set()
    while len(edges) < rng.randrange(6, 30):
        a = rng.randrange(n)
        b = rng.randrange(1 << 33, n)  # at least one endpoint past 2^32
        if a != b:
            edges.add((min(a, b), max(a, b)))
    rows = []
    for a, b in edges:
        if rng.random() < 0.4:  # churn: insert, delete, re-insert
            rows += [(a, b, 1), (b, a, -1), (a, b, 1)]
        else:
            rows.append((a, b, 1))
    rng.shuffle(rows)  # NOTE: may interleave edges, not their updates
    # restore per-edge update order (insert before delete before
    # re-insert) while keeping the shuffled global interleaving
    order = {}
    fixed = []
    for a, b, _ in rows:
        key = (min(a, b), max(a, b))
        seen = order.get(key, 0)
        fixed.append((a, b, 1 if seen % 2 == 0 else -1))
        order[key] = seen + 1
    u = np.array([r[0] for r in fixed], dtype=np.int64)
    v = np.array([r[1] for r in fixed], dtype=np.int64)
    d = np.array([r[2] for r in fixed], dtype=np.int8)

    route = shard_route(u, v, shards_n)
    assert np.array_equal(route, shard_route(v, u, shards_n)), (
        f"routing not symmetric (case={case}, base_seed={BASE_SEED})"
    )
    assert ((route >= 0) & (route < shards_n)).all()

    base = str(tmp_path / "big.reb")
    write_binary_updates(base, n, u, v, d, allow_deletions=True)
    write_stream_shards(base, shards_n)
    shards = open_stream_shards(base, shards_n)
    assert sum(s.length for s in shards) == len(u)
    assert sum(s.net_edge_count for s in shards) == int(d.sum())
    reassembled = []
    for index, shard in enumerate(shards):
        su = np.asarray(shard._u)
        sv = np.asarray(shard._v)
        sd = np.asarray(shard._delta, dtype=np.int64)
        assert (shard_route(su, sv, shards_n) == index).all(), (
            f"shard {index} holds foreign rows (case={case}, "
            f"base_seed={BASE_SEED})"
        )
        # every shard is itself a prefix-valid turnstile stream
        live = {}
        for a, b, delta in zip(su.tolist(), sv.tolist(), sd.tolist()):
            key = (min(a, b), max(a, b))
            live[key] = live.get(key, 0) + delta
            assert 0 <= live[key] <= 1, (
                f"shard {index} prefix-invalid (case={case}, "
                f"base_seed={BASE_SEED})"
            )
        reassembled += list(zip(su.tolist(), sv.tolist(), sd.tolist()))
    assert sorted(reassembled) == sorted(zip(u.tolist(), v.tolist(), d.tolist())), (
        f"shard union lost rows (case={case}, base_seed={BASE_SEED})"
    )
