"""Smoke tests: every example script runs end-to-end.

Examples are part of the public deliverable; a broken example is a
broken doc.  Each test execs the script with its ``main()`` and checks
the narrative output mentions the quantities it promises.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_every_example_is_covered(self):
        # If a new example lands, give it a smoke test too.
        assert ALL_EXAMPLES == [
            "clique_counting_degeneracy.py",
            "live_service.py",
            "privacy_split_turnstile.py",
            "query_model_playground.py",
            "quickstart.py",
            "social_network_motifs.py",
            "stream_models_tour.py",
            "two_pass_open_question.py",
        ]

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "exact triangle count" in output
        assert "3-pass estimate" in output

    @pytest.mark.slow
    def test_live_service(self, capsys):
        output = run_example("live_service.py", capsys)
        assert "live query" in output
        assert "bit-identical to the never-interrupted service: yes" in output

    @pytest.mark.slow
    def test_stream_models_tour(self, capsys):
        output = run_example("stream_models_tour.py", capsys)
        assert "random order" in output
        assert "promise broken" in output

    @pytest.mark.slow
    def test_two_pass_open_question(self, capsys):
        output = run_example("two_pass_open_question.py", capsys)
        assert "no (odd cycle)" in output
        assert "yes" in output
