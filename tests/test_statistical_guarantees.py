"""Statistical-guarantee suite: the (1±ε) bound holds empirically.

Seeded multi-trial runs of the fused counters at the paper's
parameterization — trial budget k = Θ((2m)^ρ/(ε² L)) with L = #H
(``chernoff_trials`` in PRACTICAL mode) and median amplification over
K copies — asserting the advertised relative-error guarantee for
triangle, 4-cycle, and 5-clique counting, over insertion-only and
turnstile streams.

Every run is seeded, so outcomes are deterministic; the failure-rate
bounds are still left loose (a couple of misses allowed per scenario)
so the suite survives refactors that legitimately permute random
draws.  Opt-in via ``pytest -m statistical`` (deselected from tier-1
by ``conftest.py``).
"""

import pytest

from repro import (
    count_cliques,
    count_subgraphs_exact,
    generators,
    insertion_stream,
    patterns,
)
from repro.engine import (
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
)
from repro.estimate.concentration import chernoff_trials
from repro.streams.generators import turnstile_churn_stream

pytestmark = pytest.mark.statistical


def _budget(stream, pattern, epsilon, truth):
    """The paper's PRACTICAL trial budget with L = #H."""
    return chernoff_trials(
        m=stream.net_edge_count,
        rho=pattern.rho(),
        epsilon=epsilon,
        n=stream.n,
        lower_bound=truth,
    )


def _within_rate(counter, trials_seeds, truth, epsilon):
    hits = sum(1 for seed in trials_seeds if counter(seed).within(truth, epsilon))
    return hits, len(trials_seeds)


class TestTriangleGuarantee:
    EPSILON = 0.25
    TRIALS = 10

    def _fixture(self):
        graph = generators.planted_cliques(60, 5, 8, noise_edges=60, rng=1)
        stream = insertion_stream(graph, rng=2)
        truth = float(count_subgraphs_exact(graph, patterns.triangle()))
        return stream, truth

    def test_fused_median_meets_epsilon(self):
        stream, truth = self._fixture()
        pattern = patterns.triangle()
        k = _budget(stream, pattern, self.EPSILON, truth)

        def run(seed):
            return count_subgraphs_insertion_only_fused(
                stream, pattern, copies=9, trials=k, rng=seed
            )

        hits, total = _within_rate(run, range(1000, 1000 + self.TRIALS), truth, self.EPSILON)
        assert hits >= total - 1, f"triangle: only {hits}/{total} within (1±{self.EPSILON})"

    def test_per_copy_success_rate_is_calibrated(self):
        """E[successes]/trials ≈ #H/(2m)^ρ — the estimator's core identity."""
        stream, truth = self._fixture()
        pattern = patterns.triangle()
        k = _budget(stream, pattern, self.EPSILON, truth)
        expected_rate = truth / (2.0 * stream.net_edge_count) ** pattern.rho()

        fused = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=9, trials=k, rng=4242
        )
        mean_rate = sum(c.details["success_rate"] for c in fused.copies) / fused.num_copies
        assert mean_rate == pytest.approx(expected_rate, rel=0.35)


class TestFourCycleGuarantee:
    EPSILON = 0.3
    TRIALS = 8

    def _fixture(self):
        graph = generators.complete_bipartite_graph(8, 8)
        stream = insertion_stream(graph, rng=3)
        truth = float(count_subgraphs_exact(graph, patterns.cycle(4)))
        return stream, truth

    def test_fused_median_meets_epsilon_three_pass(self):
        stream, truth = self._fixture()
        pattern = patterns.cycle(4)
        k = _budget(stream, pattern, self.EPSILON, truth)

        def run(seed):
            return count_subgraphs_insertion_only_fused(
                stream, pattern, copies=7, trials=k, rng=seed
            )

        hits, total = _within_rate(run, range(2000, 2000 + self.TRIALS), truth, self.EPSILON)
        assert hits >= total - 1, f"C4/3pass: only {hits}/{total} within (1±{self.EPSILON})"

    def test_fused_median_meets_epsilon_two_pass(self):
        """C4 is star-decomposable: the 2-pass counter owes the same bound."""
        stream, truth = self._fixture()
        pattern = patterns.cycle(4)
        k = _budget(stream, pattern, self.EPSILON, truth)

        def run(seed):
            return count_subgraphs_two_pass_fused(
                stream, pattern, copies=7, trials=k, rng=seed
            )

        hits, total = _within_rate(run, range(3000, 3000 + self.TRIALS), truth, self.EPSILON)
        assert hits >= total - 1, f"C4/2pass: only {hits}/{total} within (1±{self.EPSILON})"


class TestFiveCliqueGuarantee:
    EPSILON = 0.5
    TRIALS = 6

    def _fixture(self):
        graph = generators.planted_cliques(40, 12, 1, noise_edges=10, rng=5)
        stream = insertion_stream(graph, rng=6)
        truth = float(count_cliques(graph, 5))
        return stream, truth

    def test_fused_median_meets_epsilon(self):
        stream, truth = self._fixture()
        pattern = patterns.clique(5)
        k = _budget(stream, pattern, self.EPSILON, truth)

        def run(seed):
            return count_subgraphs_insertion_only_fused(
                stream, pattern, copies=5, trials=k, rng=seed
            )

        hits, total = _within_rate(run, range(4000, 4000 + self.TRIALS), truth, self.EPSILON)
        assert hits >= total - 1, f"K5: only {hits}/{total} within (1±{self.EPSILON})"


class TestTurnstileGuarantee:
    EPSILON = 0.4
    TRIALS = 6

    def _fixture(self):
        graph = generators.planted_cliques(30, 5, 4, noise_edges=10, rng=7)
        stream = turnstile_churn_stream(graph, churn_edges=25, rng=8)
        truth = float(count_subgraphs_exact(graph, patterns.triangle()))
        return stream, truth

    def test_fused_median_meets_epsilon_under_deletions(self):
        stream, truth = self._fixture()
        assert stream.allows_deletions
        pattern = patterns.triangle()
        k = _budget(stream, pattern, self.EPSILON, truth)

        def run(seed):
            return count_subgraphs_turnstile_fused(
                stream, pattern, copies=5, trials=k, rng=seed
            )

        hits, total = _within_rate(run, range(5000, 5000 + self.TRIALS), truth, self.EPSILON)
        assert hits >= total - 1, f"turnstile: only {hits}/{total} within (1±{self.EPSILON})"
