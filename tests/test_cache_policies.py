"""Batch-cache policies: bounded memory, validation, and bit-equality.

The regression core of the ingestion PR: the old ``EdgeStream`` batch
cache retained every decoded batch per batch size forever.  These
tests pin the replacement policies — LRU stays under its byte budget
across multi-pass runs, ``batch_size`` is validated with a clear
``ValueError``, and every policy yields bit-identical mirror-mode
estimates on both execution backends.
"""

import os

import numpy as np
import pytest

from repro.engine import FusionMode, count_subgraphs_insertion_only_fused
from repro.errors import EngineError, StreamError
from repro.graph import generators
from repro.patterns import pattern as zoo
from repro.streams.cache import (
    AllBatchCache,
    LRUBatchCache,
    NoBatchCache,
    parse_byte_size,
    resolve_cache_policy,
)
from repro.streams.datasets import DiskEdgeStream, write_binary_updates
from repro.streams.stream import EdgeStream, Update, insertion_stream


def _graph_stream(seed=3, n=40, p=0.2):
    return insertion_stream(generators.gnp(n, p, rng=seed), rng=seed + 1)


class TestPolicyPrimitives:
    def test_parse_byte_size(self):
        assert parse_byte_size(4096) == 4096
        assert parse_byte_size("64k") == 64 << 10
        assert parse_byte_size("64M") == 64 << 20
        assert parse_byte_size("1gb") == 1 << 30
        assert parse_byte_size("17") == 17
        for bad in ("", "x", "-3", "3tb", 0, -1, 2.5, True):
            with pytest.raises((StreamError, ValueError)):
                parse_byte_size(bad)

    def test_resolve_specs(self):
        assert isinstance(resolve_cache_policy(None), AllBatchCache)
        assert isinstance(resolve_cache_policy("all"), AllBatchCache)
        assert isinstance(resolve_cache_policy("none"), NoBatchCache)
        assert isinstance(resolve_cache_policy("lru"), LRUBatchCache)
        policy = resolve_cache_policy("lru:2M")
        assert policy.budget_bytes == 2 << 20
        assert resolve_cache_policy(policy) is policy
        with pytest.raises(StreamError):
            resolve_cache_policy("mru")
        with pytest.raises(StreamError):
            resolve_cache_policy(42)

    def test_lru_eviction_order_and_budget(self):
        policy = LRUBatchCache(100)

        class Fake:
            def __init__(self, nbytes):
                self.nbytes = nbytes

        a, b, c = Fake(40), Fake(40), Fake(40)
        policy.put((1, 0), a)
        policy.put((1, 1), b)
        assert policy.get((1, 0)) is a  # refresh a
        policy.put((1, 2), c)  # evicts b (LRU), not a
        assert policy.get((1, 1)) is None
        assert policy.get((1, 0)) is a
        assert policy.get((1, 2)) is c
        assert policy.resident_bytes == 80
        assert policy.peak_resident_bytes <= 100
        # An over-budget batch is served uncached.
        policy.put((9, 9), Fake(1000))
        assert policy.get((9, 9)) is None
        assert policy.peak_resident_bytes <= 100


class TestBatchSizeValidation:
    def test_rejects_non_positive(self):
        stream = _graph_stream()
        for bad in (0, -1, -100):
            with pytest.raises(ValueError):
                stream.batches(bad)

    def test_rejects_non_int(self):
        stream = _graph_stream()
        for bad in (2.5, "64", None, True):
            with pytest.raises(ValueError):
                stream.batches(bad)

    def test_numpy_integer_accepted(self):
        stream = _graph_stream()
        assert sum(len(b) for b in stream.batches(np.int64(7))) == stream.length

    def test_engine_rejects_bad_batch_size(self):
        from repro.engine.core import StreamEngine

        stream = _graph_stream()
        for bad in (0, 2.5, "big"):
            with pytest.raises(EngineError):
                StreamEngine(stream, batch_size=bad)

    def test_disk_stream_rejects_bad_batch_size(self, tmp_path):
        path = write_binary_updates(
            tmp_path / "s.reb", 4, np.array([0, 1]), np.array([1, 2])
        )
        stream = DiskEdgeStream(path)
        with pytest.raises(ValueError):
            stream.batches(0)
        with pytest.raises(ValueError):
            stream.batches(3.5)


class TestBoundedResidency:
    def test_lru_multi_pass_peak_stays_under_budget(self, tmp_path):
        # The regression for the unbounded _batch_cache: a multi-pass
        # run over a stream far larger than the budget must keep peak
        # resident batch bytes under the budget (per policy metering).
        m = 20_000
        rng = np.random.default_rng(0)
        u = rng.integers(0, 1_000_000, size=m)
        v = u + 1 + rng.integers(0, 1000, size=m)  # no self-loops
        path = write_binary_updates(tmp_path / "big.reb", 2_000_000, u, v)
        budget = 64 << 10  # 64 KiB ≪ 20k edges × 24 B ≈ 480 KiB
        stream = DiskEdgeStream(path, cache=f"lru:{budget}")
        for _ in range(3):  # a 3-pass estimator's worth of traffic
            total = sum(len(batch) for batch in stream.batches(512))
            assert total == m
        policy = stream.cache_policy
        assert policy.peak_resident_bytes <= budget
        assert policy.misses > 0
        assert stream.passes_used == 3

    def test_all_policy_reuses_objects_across_passes(self):
        stream = _graph_stream()
        first = list(stream.batches(16))
        second = list(stream.batches(16))
        assert all(a is b for a, b in zip(first, second))

    def test_none_policy_rebuilds_objects_each_pass(self):
        stream = _graph_stream()
        stream.set_cache_policy("none")
        first = list(stream.batches(16))
        second = list(stream.batches(16))
        assert all(a is not b for a, b in zip(first, second))
        # ... but with identical contents.
        for a, b in zip(first, second):
            assert a.tuples() == b.tuples()

    def test_multiple_batch_sizes_all_policy_counts_bytes(self):
        stream = _graph_stream()
        list(stream.batches(8))
        list(stream.batches(16))
        # 'all' retains both size families — exactly the old behavior,
        # now at least metered.
        assert stream.cache_policy.resident_bytes >= stream.length * 24 * 2

    def test_set_cache_policy_clears_retained_batches(self):
        stream = _graph_stream()
        list(stream.batches(8))
        assert stream.cache_policy.resident_bytes > 0
        stream.set_cache_policy("lru:1M")
        assert stream.cache_policy.resident_bytes == 0


class TestCachePolicyBitEquality:
    """Golden: mirror estimates identical across policies and backends."""

    POLICIES = ("all", "lru:32k", "none")

    def _run(self, tmp_path, backend, cache):
        graph = generators.gnp(30, 0.25, rng=7)
        # Same stream content on disk, in stream order, so disk and
        # memory runs see identical bytes.
        u, v, _ = insertion_stream(graph, rng=8).columns()
        path = write_binary_updates(tmp_path / f"{backend}-{cache.split(':')[0]}.reb",
                                    graph.n, u, v)
        disk = DiskEdgeStream(path)
        result = count_subgraphs_insertion_only_fused(
            disk,
            zoo.triangle(),
            copies=3,
            trials=12,
            rng=99,
            mode=FusionMode.MIRROR,
            backend=backend,
            workers=2,
            batch_size=64,
            cache=cache,
        )
        return result.estimates

    def test_identical_across_policies_serial(self, tmp_path):
        runs = {cache: self._run(tmp_path, "serial", cache) for cache in self.POLICIES}
        baseline = runs["all"]
        assert all(estimates == baseline for estimates in runs.values())

    @pytest.mark.slow
    def test_identical_across_policies_process(self, tmp_path):
        serial = self._run(tmp_path, "serial", "all")
        runs = {cache: self._run(tmp_path, "process", cache) for cache in self.POLICIES}
        assert all(estimates == serial for estimates in runs.values())


@pytest.mark.statistical
class TestAtScale:
    def test_ten_million_edge_disk_stream_bounded_memory(self, tmp_path):
        """Acceptance: ≥10M-edge on-disk stream, 3-pass K=32, LRU bound.

        Opt-in (``-m statistical``) because it writes a ~170 MB file
        and streams 30M+ update dispatches.  Asserts the three fused
        passes complete, the estimates are finite, and the LRU policy
        never exceeded its byte budget.
        """
        from repro.streams.datasets import BinaryUpdateWriter

        m = 10_000_000
        n = 5_000_000
        budget = 32 << 20  # 32 MiB ≪ 10M × 24 B = 240 MB of columns
        path = tmp_path / "ten_million.reb"
        rng = np.random.default_rng(42)
        with BinaryUpdateWriter(path, n) as writer:
            chunk = 1 << 20
            for start in range(0, m, chunk):
                size = min(chunk, m - start)
                cu = rng.integers(0, n - 1, size=size)
                cv = cu + 1 + rng.integers(0, 1000, size=size)
                np.minimum(cv, n - 1, out=cv)
                bad = cu == cv
                cu[bad] = cv[bad] - 1
                writer.append(cu, cv)
        stream = DiskEdgeStream(path, cache=f"lru:{budget}")
        result = count_subgraphs_insertion_only_fused(
            stream,
            zoo.triangle(),
            copies=32,
            trials=1,
            rng=5,
            mode=FusionMode.MIRROR,
            batch_size=1 << 16,
        )
        assert result.passes == 3
        assert len(result.estimates) == 32
        assert all(np.isfinite(e) for e in result.estimates)
        assert stream.cache_policy.peak_resident_bytes <= budget
        os.remove(path)
