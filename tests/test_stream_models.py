"""Tests for the §1.3 stream models and their counters.

Covers the random-order and adjacency-list models
(:mod:`repro.streams.models`), the model-specific triangle counters
(:mod:`repro.baselines.order_models`) and the 2-pass MVV baseline
(:mod:`repro.baselines.mvv_two_pass`).
"""

import statistics

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines.mvv_two_pass import mvv_two_pass_triangle_count
from repro.baselines.order_models import (
    adjacency_list_star_count,
    adjacency_list_triangle_count,
    random_order_triangle_count,
)
from repro.errors import EstimationError, StreamError
from repro.exact.subgraphs import count_subgraphs
from repro.exact.triangles import count_triangles
from repro.patterns.pattern import star as zoo_star
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.streams.models import (
    AdjacencyListStream,
    ListItem,
    adjacency_list_stream,
    random_order_stream,
)
from repro.streams.stream import insertion_stream
from repro.utils.rng import ensure_rng


class TestRandomOrderStream:
    def test_same_graph_different_orders(self):
        graph = gen.karate_club()
        a = random_order_stream(graph, rng=1)
        b = random_order_stream(graph, rng=2)
        assert set(a.final_graph().edges()) == set(b.final_graph().edges())
        assert [u.edge for u in a.updates()] != [u.edge for u in b.updates()]

    def test_replay_is_identical_across_passes(self):
        stream = random_order_stream(gen.karate_club(), rng=3)
        first = [u.edge for u in stream.updates()]
        second = [u.edge for u in stream.updates()]
        assert first == second
        assert stream.passes_used == 2

    def test_order_is_roughly_uniform(self):
        # The first element should be (close to) uniform over edges.
        graph = gen.cycle_graph(8)
        first_edges = {
            next(iter(random_order_stream(graph, rng=seed).updates())).edge
            for seed in range(200)
        }
        assert len(first_edges) == graph.m


class TestAdjacencyListStream:
    def test_each_edge_appears_twice(self):
        graph = gen.karate_club()
        stream = adjacency_list_stream(graph, rng=4)
        assert stream.length == 2 * graph.m
        assert stream.m == graph.m
        assert set(stream.final_graph().edges()) == set(graph.edges())

    def test_lists_are_contiguous(self):
        stream = adjacency_list_stream(gen.gnp(20, 0.3, rng=5), rng=6)
        seen = []
        for item in stream.items():
            if not seen or seen[-1] != item.owner:
                assert item.owner not in seen
                seen.append(item.owner)

    def test_deterministic_layout(self):
        graph = gen.path_graph(5)
        stream = adjacency_list_stream(
            graph, shuffle_vertices=False, shuffle_neighbors=False
        )
        items = [(i.owner, i.neighbor) for i in stream.items()]
        assert items == [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3)]

    def test_rejects_non_contiguous_lists(self):
        items = [ListItem(0, 1), ListItem(1, 0), ListItem(0, 2), ListItem(2, 0)]
        with pytest.raises(StreamError):
            AdjacencyListStream(3, items)

    def test_rejects_single_appearance(self):
        with pytest.raises(StreamError):
            AdjacencyListStream(2, [ListItem(0, 1)])

    def test_rejects_self_loop_item(self):
        with pytest.raises(StreamError):
            ListItem(3, 3)

    def test_as_edge_stream_projection(self):
        graph = gen.gnp(15, 0.4, rng=7)
        stream = adjacency_list_stream(graph, rng=8)
        projected = stream.as_edge_stream()
        assert projected.net_edge_count == graph.m
        assert set(projected.final_graph().edges()) == set(graph.edges())

    def test_pass_counting(self):
        stream = adjacency_list_stream(gen.path_graph(4))
        list(stream.items())
        list(stream.items())
        assert stream.passes_used == 2
        stream.reset_pass_count()
        assert stream.passes_used == 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_projection_preserves_graph(self, seed):
        graph = gen.gnp(12, 0.35, rng=seed)
        stream = adjacency_list_stream(graph, rng=seed + 1)
        assert set(stream.as_edge_stream().final_graph().edges()) == set(graph.edges())


class TestMvvTwoPass:
    def test_exhaustive_sampling_is_exact(self):
        # p = 1 keeps every edge: the estimate equals #T exactly.
        graph = gen.gnp(25, 0.4, rng=9)
        truth = count_triangles(graph)
        stream = insertion_stream(graph, rng=10)
        result = mvv_two_pass_triangle_count(stream, sample_probability=1.0, rng=11)
        assert result.estimate == pytest.approx(truth)
        assert result.passes == 2

    def test_unbiased_at_half_probability(self):
        graph = gen.gnp(30, 0.35, rng=12)
        truth = count_triangles(graph)
        estimates = [
            mvv_two_pass_triangle_count(
                insertion_stream(graph, rng=100 + seed), 0.5, rng=seed
            ).estimate
            for seed in range(60)
        ]
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_triangle_free_graph_estimates_zero(self):
        stream = insertion_stream(gen.grid_graph(6, 6), rng=13)
        result = mvv_two_pass_triangle_count(stream, 1.0, rng=14)
        assert result.estimate == 0.0

    def test_rejects_bad_probability(self):
        stream = insertion_stream(gen.karate_club(), rng=15)
        with pytest.raises(EstimationError):
            mvv_two_pass_triangle_count(stream, 0.0)
        with pytest.raises(EstimationError):
            mvv_two_pass_triangle_count(stream, 1.5)

    def test_space_tracks_sample(self):
        graph = gen.gnp(40, 0.3, rng=16)
        stream = insertion_stream(graph, rng=17)
        result = mvv_two_pass_triangle_count(stream, 0.2, rng=18)
        # Sampled edges ~ p*m; the space accounting must reflect that
        # rather than the full stream.
        assert result.space_words < 2 * graph.m


class TestRandomOrderCounter:
    def test_full_retention_unbiased(self):
        graph = gen.gnp(30, 0.35, rng=19)
        truth = count_triangles(graph)
        estimates = [
            random_order_triangle_count(
                random_order_stream(graph, rng=300 + seed),
                prefix_fraction=0.5,
                sample_probability=1.0,
                rng=seed,
            ).estimate
            for seed in range(80)
        ]
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_single_pass(self):
        stream = random_order_stream(gen.karate_club(), rng=20)
        result = random_order_triangle_count(stream, rng=21)
        assert result.passes == 1

    def test_subsampling_stays_unbiased(self):
        graph = gen.gnp(40, 0.35, rng=22)
        truth = count_triangles(graph)
        estimates = [
            random_order_triangle_count(
                random_order_stream(graph, rng=500 + seed),
                prefix_fraction=0.5,
                sample_probability=0.6,
                rng=seed,
            ).estimate
            for seed in range(120)
        ]
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.2)

    def test_parameter_validation(self):
        stream = random_order_stream(gen.karate_club(), rng=23)
        with pytest.raises(EstimationError):
            random_order_triangle_count(stream, prefix_fraction=0.0)
        with pytest.raises(EstimationError):
            random_order_triangle_count(stream, prefix_fraction=1.0)
        with pytest.raises(EstimationError):
            random_order_triangle_count(stream, sample_probability=0.0)

    def test_needs_three_edges(self):
        with pytest.raises(EstimationError):
            random_order_triangle_count(insertion_stream(gen.path_graph(3), rng=24))


class TestAdjacencyListCounter:
    def test_unbiased(self):
        graph = gen.gnp(30, 0.35, rng=25)
        truth = count_triangles(graph)
        estimates = [
            adjacency_list_triangle_count(
                adjacency_list_stream(graph, rng=700 + seed),
                wedge_samples=40,
                rng=seed,
            ).estimate
            for seed in range(60)
        ]
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_two_passes(self):
        stream = adjacency_list_stream(gen.karate_club(), rng=26)
        result = adjacency_list_triangle_count(stream, wedge_samples=10, rng=27)
        assert result.passes == 2

    def test_wedge_count_is_exact(self):
        graph = gen.karate_club()
        stream = adjacency_list_stream(graph, rng=28)
        result = adjacency_list_triangle_count(stream, wedge_samples=5, rng=29)
        expected = sum(
            graph.degree(v) * (graph.degree(v) - 1) // 2 for v in range(graph.n)
        )
        assert result.details["total_wedges"] == expected

    def test_triangle_free(self):
        stream = adjacency_list_stream(gen.grid_graph(5, 5), rng=30)
        result = adjacency_list_triangle_count(stream, wedge_samples=25, rng=31)
        assert result.estimate == 0.0

    def test_wedgeless_graph(self):
        # A perfect matching has no wedges at all.
        graph = Graph(4, [(0, 1), (2, 3)])
        stream = adjacency_list_stream(graph, rng=32)
        result = adjacency_list_triangle_count(stream, wedge_samples=5, rng=33)
        assert result.estimate == 0.0

    def test_validation(self):
        stream = adjacency_list_stream(gen.karate_club(), rng=34)
        with pytest.raises(EstimationError):
            adjacency_list_triangle_count(stream, wedge_samples=0)


class TestAdjacencyListStarCount:
    def test_exact_on_karate(self):
        graph = gen.karate_club()
        for petals in (1, 2, 3, 4):
            stream = adjacency_list_stream(graph, rng=40 + petals)
            result = adjacency_list_star_count(stream, petals)
            truth = count_subgraphs(graph, zoo_star(petals))
            assert result.estimate == truth
            assert result.passes == 1
            assert result.space_words <= 3

    def test_star_free_when_degrees_small(self):
        # A perfect matching has no S_2.
        graph = Graph(6, [(0, 1), (2, 3), (4, 5)])
        result = adjacency_list_star_count(adjacency_list_stream(graph, rng=45), 2)
        assert result.estimate == 0.0

    def test_validation(self):
        stream = adjacency_list_stream(gen.karate_club(), rng=46)
        with pytest.raises(EstimationError):
            adjacency_list_star_count(stream, 0)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_degree_formula(self, seed, petals):
        import math as _math

        graph = gen.gnp(14, 0.4, rng=seed)
        if graph.m == 0:
            return
        stream = adjacency_list_stream(graph, rng=seed + 1)
        result = adjacency_list_star_count(stream, petals)
        expected = sum(_math.comb(graph.degree(v), petals) for v in range(graph.n))
        if petals == 1:
            expected //= 2
        assert result.estimate == expected
