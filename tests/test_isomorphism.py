"""Tests for copy enumeration and automorphisms."""

import pytest

from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.patterns import pattern as pattern_zoo
from repro.patterns.automorphisms import automorphism_count, automorphisms
from repro.patterns.isomorphism import (
    count_spanning_copies,
    enumerate_copies,
    enumerate_spanning_copies,
    is_subgraph_of,
)


class TestAutomorphisms:
    def test_identity_always_present(self):
        graph = pattern_zoo.paw().graph
        perms = list(automorphisms(graph))
        assert tuple(range(graph.n)) in perms

    def test_known_groups(self):
        assert automorphism_count(gen.complete_graph(5)) == 120
        assert automorphism_count(gen.cycle_graph(6)) == 12
        assert automorphism_count(gen.path_graph(5)) == 2
        assert automorphism_count(gen.star_graph(4)) == 24

    def test_automorphisms_preserve_edges(self):
        graph = pattern_zoo.diamond().graph
        for perm in automorphisms(graph):
            for u, v in graph.edges():
                assert graph.has_edge(perm[u], perm[v])


class TestEnumerateCopies:
    def test_triangles_in_k4(self):
        copies = enumerate_copies(gen.complete_graph(4), pattern_zoo.triangle().graph)
        assert len(copies) == 4

    def test_edges_in_k4(self):
        copies = enumerate_copies(gen.complete_graph(4), pattern_zoo.edge().graph)
        assert len(copies) == 6

    def test_c4_in_k4(self):
        copies = enumerate_copies(gen.complete_graph(4), pattern_zoo.cycle(4).graph)
        assert len(copies) == 3

    def test_p4_count_in_karate_slice(self):
        host, _ = gen.karate_club().subgraph(range(10))
        copies = enumerate_copies(host, pattern_zoo.path(3).graph)
        wedges = sum(d * (d - 1) // 2 for d in host.degrees())
        assert len(copies) == wedges

    def test_copies_are_edge_subsets_of_host(self):
        host = gen.gnp(9, 0.5, rng=3)
        for copy in enumerate_copies(host, pattern_zoo.paw().graph):
            for u, v in copy:
                assert host.has_edge(u, v)


class TestSpanningCopies:
    def test_spanning_triangles(self):
        host = gen.complete_graph(4)
        assert count_spanning_copies(host, pattern_zoo.triangle().graph, [0, 1, 2]) == 1
        assert count_spanning_copies(host, pattern_zoo.triangle().graph, [0, 1, 2, 3]) == 0

    def test_spanning_p4_in_k4(self):
        # P4 spanning 4 clique vertices: 4!/2 orderings /... = 12 paths.
        host = gen.complete_graph(4)
        copies = enumerate_spanning_copies(host, pattern_zoo.path(4).graph, [0, 1, 2, 3])
        assert len(copies) == 12

    def test_required_edges_filter(self):
        host = gen.complete_graph(4)
        required = {(0, 1), (2, 3)}
        copies = enumerate_spanning_copies(
            host, pattern_zoo.path(4).graph, [0, 1, 2, 3], required_edges=required
        )
        # Paths through both matching edges: middle edge is one of 4.
        assert len(copies) == 4
        for copy in copies:
            assert required.issubset(copy)

    def test_wrong_cardinality_returns_empty(self):
        host = gen.complete_graph(5)
        assert enumerate_spanning_copies(host, pattern_zoo.triangle().graph, [0, 1]) == []

    def test_witness_bound_for_zoo(self):
        """|C(F)| <= f_T(H): the bound the sampler's correctness needs.

        For every zoo pattern, take U = V(K_k) (the richest host) and
        any decomposition-family edge set; the number of spanning
        copies containing it must not exceed f_T(H)."""
        for pattern in pattern_zoo.standard_zoo():
            k = pattern.num_vertices
            host = gen.complete_graph(k)
            decomposition = pattern.decomposition()
            family_count = pattern.family_count()
            # The family edge union of the witness decomposition:
            required = set()
            for piece in decomposition.pieces:
                if piece.kind == "cycle":
                    cyc = piece.vertices
                    for i in range(len(cyc)):
                        a, b = cyc[i], cyc[(i + 1) % len(cyc)]
                        required.add((min(a, b), max(a, b)))
                else:
                    center, *petals = piece.vertices
                    for petal in petals:
                        required.add((min(center, petal), max(center, petal)))
            copies = enumerate_spanning_copies(
                host, pattern.graph, list(range(k)), required_edges=required
            )
            assert 1 <= len(copies) <= family_count, pattern.name


class TestIsSubgraphOf:
    def test_positive(self):
        assert is_subgraph_of(gen.karate_club(), pattern_zoo.clique(4).graph)

    def test_negative(self):
        assert not is_subgraph_of(gen.grid_graph(3, 3), pattern_zoo.triangle().graph)
