"""The merge protocol: scatter/merge laws from sketches to estimators.

Turnstile state is linear — exact integer / modular sums over the
updates, with all randomness frozen at construction — so replicas built
from the same seeds merge by aggregate addition: commutatively,
associatively, with the empty replica as identity, bit-identical to
one object ingesting the whole stream.  This suite pins those laws at
every layer:

* sketch level (:class:`OneSparseRecovery`, :class:`L0Sampler`) —
  merge == single-stream ingestion, associativity, empty identity,
  incompatible configurations rejected with a :class:`MergeError`
  naming the mismatched field;
* reservoir level — every reservoir class refuses to merge (draws
  depend on the global stream order), with the documented reason;
* transform level (:class:`TurnstilePassState`,
  :class:`TurnstileStreamOracle`, and the insertion counterparts) —
  replica pass states fold exactly, non-replicas and insertion paths
  fail loudly;
* estimator level (:class:`RoundAdaptiveEstimator`) — replica checks
  (name, history lockstep, open pass) and answer adoption;
* end to end — sharded turnstile runs are bit-equal to the unsharded
  mirror run at shard counts {1, 2, 3, 8} on every backend, and the
  acceptance rail ``repro count --shards N`` works from the CLI.
"""

import numpy as np
import pytest

from repro import generators, patterns
from repro.engine import (
    EngineBackend,
    EstimatorSpec,
    FusionMode,
    ShardedRunner,
    StreamHandle,
    count_subgraphs_turnstile_fused,
    count_subgraphs_turnstile_sharded,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
    sharded_stream_handle,
)
from repro.errors import EngineError, MergeError
from repro.sketch.l0 import L0Sampler
from repro.sketch.onesparse import OneSparseRecovery
from repro.sketch.reservoir import (
    ReservoirSampler,
    SingleReservoir,
    SkipAheadReservoirBank,
)
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import ColumnEdgeStream
from repro.utils.rng import ensure_rng


def _turnstile_fixture():
    graph = generators.gnp(36, 0.25, rng=3)
    return turnstile_churn_stream(graph, churn_edges=25, rng=4)


def _hash_shards(stream, count):
    from repro.streams.datasets import stream_shard_views

    return stream_shard_views(stream, count)


UPDATES = [(3, 1), (17, -1), (3, -1), (99, 1), (17, 1), (42, 1), (99, -1)]


class TestOneSparseMerge:
    def test_merge_equals_single_stream_ingestion(self):
        for cut in range(len(UPDATES) + 1):
            reference = OneSparseRecovery(128, rng=7)
            left = OneSparseRecovery(128, rng=7)
            right = OneSparseRecovery(128, rng=7, z=left.z)
            reference.update_many(UPDATES)
            left.update_many(UPDATES[:cut])
            right.update_many(UPDATES[cut:])
            left.merge(right)
            assert left.state_dict() == reference.state_dict(), f"cut={cut}"

    def test_associative_and_commutative(self):
        def build(rows):
            sketch = OneSparseRecovery(128, rng=11)
            sketch.update_many(rows)
            return sketch

        a_bc = build(UPDATES[:2])
        bc = build(UPDATES[2:5])
        bc.merge(build(UPDATES[5:]))
        a_bc.merge(bc)

        ab_c = build(UPDATES[:2])
        ab_c.merge(build(UPDATES[2:5]))
        ab_c.merge(build(UPDATES[5:]))
        assert a_bc.state_dict() == ab_c.state_dict()

        reversed_order = build(UPDATES[2:])
        reversed_order.merge(build(UPDATES[:2]))
        assert reversed_order.state_dict() == ab_c.state_dict()

    def test_empty_shard_is_identity(self):
        loaded = OneSparseRecovery(128, rng=5)
        loaded.update_many(UPDATES)
        before = loaded.state_dict()
        loaded.merge(OneSparseRecovery(128, rng=5, z=loaded.z))
        assert loaded.state_dict() == before

    def test_incompatible_universe_names_field(self):
        left = OneSparseRecovery(128, rng=1)
        right = OneSparseRecovery(256, rng=1)
        with pytest.raises(MergeError, match="universe"):
            left.merge(right)

    def test_incompatible_z_names_field(self):
        left = OneSparseRecovery(128, rng=1)
        right = OneSparseRecovery(128, rng=2)
        if left.z == right.z:  # pragma: no cover - 1/(p-1) chance
            pytest.skip("independently drawn z collided")
        with pytest.raises(MergeError, match=r"\bz\b"):
            left.merge(right)

    def test_wrong_type_rejected(self):
        with pytest.raises(MergeError, match="OneSparseRecovery"):
            OneSparseRecovery(128, rng=1).merge(object())


class TestL0SamplerMerge:
    def test_merge_equals_single_stream_ingestion(self):
        for cut in (0, 3, len(UPDATES)):
            reference = L0Sampler(4096, rng=9, repetitions=4)
            left = L0Sampler(4096, rng=9, repetitions=4)
            right = L0Sampler(4096, rng=9, repetitions=4)
            reference.update_many(UPDATES)
            left.update_many(UPDATES[:cut])
            right.update_many(UPDATES[cut:])
            left.merge(right)
            assert left.state_dict() == reference.state_dict(), f"cut={cut}"
            assert left.sample() == reference.sample()

    def test_empty_shard_is_identity(self):
        loaded = L0Sampler(4096, rng=2, repetitions=4)
        loaded.update_many(UPDATES)
        before = loaded.state_dict()
        loaded.merge(L0Sampler(4096, rng=2, repetitions=4))
        assert loaded.state_dict() == before

    def test_different_seeds_name_coefficients(self):
        # Replicas must share frozen randomness; independently seeded
        # samplers have different hash coefficients / bases and the
        # error says which field disagreed.
        left = L0Sampler(4096, rng=1, repetitions=4)
        right = L0Sampler(4096, rng=2, repetitions=4)
        with pytest.raises(MergeError, match="coefficients|bases"):
            left.merge(right)

    def test_different_shape_names_field(self):
        left = L0Sampler(4096, rng=1, repetitions=4)
        with pytest.raises(MergeError, match="repetitions"):
            left.merge(L0Sampler(4096, rng=1, repetitions=8))
        with pytest.raises(MergeError, match="universe"):
            left.merge(L0Sampler(1024, rng=1, repetitions=4))


class TestReservoirsRefuse:
    @pytest.mark.parametrize("build", [
        lambda: SingleReservoir(rng=1),
        lambda: SkipAheadReservoirBank(3, rng=1),
        lambda: ReservoirSampler(5, rng=1),
    ])
    def test_reservoirs_raise_with_reason(self, build):
        left, right = build(), build()
        with pytest.raises(MergeError, match="global stream order"):
            left.merge(right)


class TestPassStateMerge:
    def _program(self, stream, rng_seed):
        estimator = fgp_turnstile_estimator(
            stream, patterns.triangle(), trials=16, rng=rng_seed,
            name="fgp-turnstile",
        )
        return estimator

    def test_replica_pass_states_fold_exactly(self):
        stream = _turnstile_fixture()
        handle = StreamHandle.of(stream)
        reference = self._program(stream, 5)
        left = self._program(handle, 5)
        right = self._program(handle, 5)
        batches = list(stream.batches(64))
        cut = len(batches) // 2
        for estimator in (reference, left, right):
            estimator.begin_pass(0)
        for batch in batches:
            reference.ingest_batch(batch)
        for batch in batches[:cut]:
            left.ingest_batch(batch)
        for batch in batches[cut:]:
            right.ingest_batch(batch)
        left.merge(right)
        assert left.end_pass() == reference.end_pass()

    def test_divergent_seeds_fail_loudly(self):
        stream = _turnstile_fixture()
        left = self._program(stream, 5)
        right = self._program(stream, 6)
        left.begin_pass(0)
        right.begin_pass(0)
        with pytest.raises(MergeError):
            left.merge(right)

    def test_history_lockstep_enforced(self):
        stream = _turnstile_fixture()
        left = self._program(stream, 5)
        right = self._program(stream, 5)
        batches = list(stream.batches(64))
        left.begin_pass(0)
        for batch in batches:
            left.ingest_batch(batch)
        left.end_pass()
        left.begin_pass(1)
        right.begin_pass(0)
        with pytest.raises(MergeError, match="histories diverged|round"):
            left.merge(right)

    def test_merge_requires_open_pass(self):
        stream = _turnstile_fixture()
        left = self._program(stream, 5)
        right = self._program(stream, 5)
        with pytest.raises(MergeError, match="open pass"):
            left.merge(right)

    def test_insertion_paths_raise_documented_reason(self):
        graph = generators.gnp(30, 0.2, rng=1)
        from repro.streams.stream import insertion_stream

        stream = insertion_stream(graph, rng=2)
        left = fgp_insertion_estimator(
            stream, patterns.triangle(), trials=8, rng=3, name="fgp-insertion"
        )
        right = fgp_insertion_estimator(
            stream, patterns.triangle(), trials=8, rng=3, name="fgp-insertion"
        )
        left.begin_pass(0)
        right.begin_pass(0)
        with pytest.raises(MergeError, match="reservoir"):
            left.merge(right)

    def test_name_mismatch_rejected(self):
        stream = _turnstile_fixture()
        left = fgp_turnstile_estimator(
            stream, patterns.triangle(), trials=8, rng=3, name="a")
        right = fgp_turnstile_estimator(
            stream, patterns.triangle(), trials=8, rng=3, name="b")
        left.begin_pass(0)
        right.begin_pass(0)
        with pytest.raises(MergeError, match="same spec"):
            left.merge(right)


class TestShardedEndToEnd:
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_shard_count_invariance(self, shards):
        # The acceptance rail: sharded turnstile runs are bit-equal to
        # the unsharded mirror run at shard counts {1, 2, 3, 8}.
        stream = _turnstile_fixture()
        pattern = patterns.triangle()
        unsharded = count_subgraphs_turnstile_fused(
            stream, pattern, copies=3, trials=32, rng=9, mode=FusionMode.MIRROR
        )
        sharded = count_subgraphs_turnstile_sharded(
            _hash_shards(stream, shards), pattern, copies=3, trials=32, rng=9
        )
        assert sharded.estimates == unsharded.estimates
        assert sharded.estimate == unsharded.estimate
        assert sharded.passes == unsharded.passes
        assert sharded.details["shards"] == float(shards)
        for mine, theirs in zip(sharded.copies, unsharded.copies):
            assert mine.estimate == theirs.estimate
            assert mine.successes == theirs.successes
            assert mine.details == theirs.details

    def test_thread_backend_matches(self):
        stream = _turnstile_fixture()
        pattern = patterns.triangle()
        serial = count_subgraphs_turnstile_sharded(
            _hash_shards(stream, 3), pattern, copies=2, trials=16, rng=9
        )
        threaded = count_subgraphs_turnstile_sharded(
            _hash_shards(stream, 3), pattern, copies=2, trials=16, rng=9,
            backend=EngineBackend.THREAD, workers=2,
        )
        assert threaded.estimates == serial.estimates

    def test_process_backend_matches(self):
        stream = _turnstile_fixture()
        pattern = patterns.triangle()
        serial = count_subgraphs_turnstile_sharded(
            _hash_shards(stream, 2), pattern, copies=2, trials=16, rng=9
        )
        pooled = count_subgraphs_turnstile_sharded(
            _hash_shards(stream, 2), pattern, copies=2, trials=16, rng=9,
            backend=EngineBackend.PROCESS,
        )
        assert pooled.estimates == serial.estimates
        from repro.engine.parallel import leaked_shm_segments

        assert leaked_shm_segments() == []

    def test_insertion_only_sharding_raises_merge_error(self):
        graph = generators.gnp(30, 0.2, rng=1)
        from repro.streams.stream import insertion_stream

        stream = insertion_stream(graph, rng=2)
        runner = ShardedRunner(_hash_shards(stream, 2))
        for index in range(2):
            runner.register(EstimatorSpec(
                name=f"copy-{index}", factory=fgp_insertion_estimator,
                kwargs=dict(pattern=patterns.triangle(), trials=8, rng=index,
                            name=f"copy-{index}"),
            ))
        with pytest.raises(MergeError):
            runner.run()

    def test_union_handle_carries_global_metadata(self):
        stream = _turnstile_fixture()
        shards = _hash_shards(stream, 3)
        handle = sharded_stream_handle(shards)
        assert handle.n == stream.n
        assert handle.length == stream.length
        assert handle.net_edge_count == stream.net_edge_count
        assert handle.allows_deletions == stream.allows_deletions

    def test_mismatched_n_rejected(self):
        left = ColumnEdgeStream(5, [0], [1])
        right = ColumnEdgeStream(6, [2], [3])
        with pytest.raises(EngineError, match="n="):
            sharded_stream_handle([left, right])

    def test_live_rng_kwargs_rejected_at_registration(self):
        stream = _turnstile_fixture()
        runner = ShardedRunner(_hash_shards(stream, 2))
        with pytest.raises(EngineError, match="integer seed"):
            runner.register(EstimatorSpec(
                name="copy-0", factory=fgp_turnstile_estimator,
                kwargs=dict(pattern=patterns.triangle(), trials=8,
                            rng=ensure_rng(1), name="copy-0"),
            ))

    def test_duplicate_spec_rejected(self):
        stream = _turnstile_fixture()
        runner = ShardedRunner(_hash_shards(stream, 2))
        spec = EstimatorSpec(
            name="copy-0", factory=fgp_turnstile_estimator,
            kwargs=dict(pattern=patterns.triangle(), trials=8, rng=1,
                        name="copy-0"),
        )
        runner.register(spec)
        with pytest.raises(EngineError, match="already registered"):
            runner.register(spec)


class TestShardedCli:
    def test_count_shards_cli_round_trip(self, tmp_path):
        # convert --shards materializes the partition; count --shards
        # must produce the same median as the unsharded fused run.
        from repro.cli import main
        from repro.graph.io import write_edge_list

        graph = generators.gnp(30, 0.2, rng=5)
        edge_list = tmp_path / "g.txt"
        write_edge_list(graph, edge_list)
        reb = tmp_path / "g.reb"
        assert main(["convert", str(edge_list), str(reb), "--shards", "2"]) == 0
        for index in range(2):
            assert (tmp_path / f"g.shard-{index}-of-2.reb").exists()
        assert main([
            "count", str(reb), "triangle", "--algorithm", "turnstile",
            "--copies", "2", "--trials", "16", "--shards", "2",
        ]) == 0

    def test_count_shards_rejects_insertion(self, capsys):
        from repro.cli import main

        code = main([
            "count", "whatever.reb", "triangle", "--shards", "2",
        ])
        assert code == 2
        assert "turnstile" in capsys.readouterr().err
