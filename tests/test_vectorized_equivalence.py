"""Scalar-vs-vectorized bit-equality for the columnar pipeline.

The columnar edge-batch pipeline (``repro.streams.batch`` + the
vectorized sketch kernels) promises *bit-identical* results to the
scalar reference paths it accelerates.  These tests pin that promise
down at every layer: the field-arithmetic kernels, the batched sketch
entry points, the oracle pass states, and the fused engine end to end
— under seeded fuzz over batch sizes (including 0, 1, and uneven
splits of the same stream), negative turnstile deltas, and duplicate
items inside one batch.
"""

import random

import numpy as np
import pytest

from repro import generators, insertion_stream, patterns
from repro.engine import (
    StreamEngine,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
)
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.hashing import (
    MERSENNE_PRIME,
    PolynomialHash,
    mulmod_vec,
    powmod_vec,
    split_sum,
)
from repro.sketch.l0 import L0Sampler
from repro.sketch.onesparse import OneSparseRecovery
from repro.sketch.reservoir import SkipAheadReservoirBank
from repro.streams.batch import EdgeBatch, sorted_member_mask
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import EdgeStream, Update
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle


class TestFieldKernels:
    def test_mulmod_matches_python_ints(self):
        rng = random.Random(7)
        a = np.array([rng.randrange(MERSENNE_PRIME) for _ in range(4096)], dtype=np.uint64)
        b = np.array([rng.randrange(MERSENNE_PRIME) for _ in range(4096)], dtype=np.uint64)
        out = mulmod_vec(a, b)
        for i in range(0, 4096, 97):
            assert int(out[i]) == (int(a[i]) * int(b[i])) % MERSENNE_PRIME

    def test_mulmod_boundary_values(self):
        p = MERSENNE_PRIME
        edge = np.array([0, 1, 2, p - 1, p - 2, (1 << 32) - 1, 1 << 32], dtype=np.uint64)
        for x in edge.tolist():
            out = mulmod_vec(np.full(len(edge), x, dtype=np.uint64), edge)
            for i, y in enumerate(edge.tolist()):
                assert int(out[i]) == (x * y) % p

    def test_powmod_matches_builtin_pow(self):
        rng = random.Random(11)
        base = 2 + rng.randrange(MERSENNE_PRIME - 2)
        exponents = np.array(
            [0, 1, 2, 63] + [rng.randrange(1 << 50) for _ in range(500)], dtype=np.uint64
        )
        out = powmod_vec(base, exponents)
        for i, e in enumerate(exponents.tolist()):
            assert int(out[i]) == pow(base, e, MERSENNE_PRIME)

    def test_split_sum_is_exact_beyond_uint64(self):
        # Nine 61-bit terms overflow a raw uint64 sum; split_sum must not.
        values = np.full(64, MERSENNE_PRIME - 1, dtype=np.uint64)
        assert split_sum(values) == 64 * (MERSENNE_PRIME - 1)
        assert split_sum(np.array([], dtype=np.uint64)) == 0

    def test_polynomial_hash_values_and_levels_match_scalar(self):
        rng = random.Random(3)
        for independence in (1, 2, 8):
            hash_function = PolynomialHash(independence, rng=rng.randrange(1 << 30))
            items = [rng.randrange(1 << 48) for _ in range(600)] + [0, MERSENNE_PRIME]
            vec = hash_function.values_many(np.array(items, dtype=np.uint64))
            assert [int(x) for x in vec] == [hash_function.value(i) for i in items]
            for max_level in (0, 1, 7, 40):
                lv = hash_function.levels_many(np.array(items, dtype=np.uint64), max_level)
                assert [int(x) for x in lv] == [
                    hash_function.level(i, max_level) for i in items
                ]

    def test_sorted_member_mask_matches_isin(self):
        rng = np.random.default_rng(5)
        haystack = np.unique(rng.integers(0, 1000, 64)).astype(np.int64)
        needles = rng.integers(0, 1000, 512).astype(np.int64)
        assert (sorted_member_mask(haystack, needles) == np.isin(needles, haystack)).all()


def _random_updates(rng, universe, count, allow_negative=True):
    """(item, delta) pairs with duplicates and (optionally) deletions."""
    updates = []
    for _ in range(count):
        item = rng.randrange(universe)
        delta = rng.choice([1, -1]) if allow_negative else 1
        updates.append((item, delta))
        if rng.random() < 0.3:  # force duplicate items inside the batch
            updates.append((item, -delta if allow_negative else 1))
    return updates


class TestBatchedSketches:
    @pytest.mark.parametrize("universe", [1, 50, 10**6, 1 << 45])
    def test_one_sparse_update_many_arrays_matches_scalar(self, universe):
        rng = random.Random(universe % 997)
        scalar = OneSparseRecovery(universe, rng=5)
        vector = OneSparseRecovery(universe, z=scalar.z)
        updates = _random_updates(rng, universe, 200)
        scalar.update_many(updates)
        items = np.array([i for i, _ in updates], dtype=np.int64)
        deltas = np.array([d for _, d in updates], dtype=np.int64)
        vector.update_many_arrays(items, deltas)
        assert scalar._weight == vector._weight
        assert scalar._weighted_sum == vector._weighted_sum
        assert scalar._fingerprint == vector._fingerprint
        assert scalar.recover() == vector.recover()

    def test_one_sparse_large_deltas_fall_back_to_exact_scalar_path(self):
        # max|delta| × batch beyond 2^31 would wrap the int64 limb sums;
        # the guard must route such batches to the scalar path instead.
        universe = 1 << 40
        scalar = OneSparseRecovery(universe, rng=3)
        vector = OneSparseRecovery(universe, z=scalar.z)
        items = [(1 << 32) - 1, (1 << 32) - 1, 7]
        deltas = [1 << 31, 1 << 31, -(1 << 62)]
        for item, delta in zip(items, deltas):
            scalar.update(item, delta)
        vector.update_many_arrays(
            np.array(items, dtype=np.int64), np.array(deltas, dtype=np.int64)
        )
        assert scalar._weight == vector._weight
        assert scalar._weighted_sum == vector._weighted_sum
        assert scalar._fingerprint == vector._fingerprint

    def test_one_sparse_empty_batch_is_noop(self):
        sketch = OneSparseRecovery(100, rng=1)
        sketch.update_many_arrays(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert sketch.is_empty

    @pytest.mark.parametrize("split", [[200], [1, 199], [0, 77, 123], [200] * 1])
    def test_l0_update_many_arrays_matches_scalar_across_splits(self, split):
        universe = 5000
        rng = random.Random(sum(split))
        updates = _random_updates(rng, universe, 200)[:200]
        scalar = L0Sampler(universe, rng=9, repetitions=4)
        vector = L0Sampler(universe, rng=9, repetitions=4)
        scalar.update_many(updates)
        cursor = 0
        for size in split:
            chunk = updates[cursor : cursor + size]
            cursor += size
            vector.update_many_arrays(
                np.array([i for i, _ in chunk], dtype=np.int64),
                np.array([d for _, d in chunk], dtype=np.int64),
            )
        # Remaining tail (splits may not cover all 200)
        tail = updates[cursor:]
        if tail:
            vector.update_many_arrays(
                np.array([i for i, _ in tail], dtype=np.int64),
                np.array([d for _, d in tail], dtype=np.int64),
            )
        for s_levels, v_levels in zip(scalar._sketches, vector._sketches):
            for s, v in zip(s_levels, v_levels):
                assert s._weight == v._weight
                assert s._weighted_sum == v._weighted_sum
                assert s._fingerprint == v._fingerprint
        assert scalar.sample() == vector.sample()

    def test_l0_update_many_arrays_validates_universe(self):
        sampler = L0Sampler(10, rng=1, repetitions=1)
        from repro.errors import SketchError

        with pytest.raises(SketchError):
            sampler.update_many_arrays(
                np.array([3, 10], dtype=np.int64), np.array([1, 1], dtype=np.int64)
            )

    @pytest.mark.parametrize("sizes", [[0, 1, 499], [500], [250, 250], [13] * 38 + [6]])
    def test_skip_ahead_bank_matches_per_element_across_batch_sizes(self, sizes):
        assert sum(sizes) == 500
        reference = SkipAheadReservoirBank(29, rng=4)
        batched = SkipAheadReservoirBank(29, rng=4)
        items = list(range(500))
        for item in items:
            reference.offer(item)
        cursor = 0
        for size in sizes:
            batched.offer_many(items[cursor : cursor + size])
            cursor += size
        assert reference.items() == batched.items()
        assert reference.count == batched.count

    def test_skip_ahead_bank_accepts_lazy_views_and_iterators(self):
        bank = SkipAheadReservoirBank(5, rng=8)
        bank.offer_many(iter(range(100)))  # non-indexable iterable
        other = SkipAheadReservoirBank(5, rng=8)
        other.offer_many(list(range(100)))
        assert bank.items() == other.items()
        assert bank.count == other.count == 100


def _query_mix(rng, n):
    """A batch exercising every insertion-oracle query type."""
    batch = [EdgeCountQuery(), RandomEdgeQuery(), RandomEdgeQuery()]
    for _ in range(4):
        batch.append(DegreeQuery(rng.randrange(n)))
        batch.append(AdjacencyQuery(rng.randrange(n), rng.randrange(n - 1) + 1))
        batch.append(NeighborQuery(rng.randrange(n), rng.randrange(3)))
        batch.append(RandomNeighborQuery(rng.randrange(n)))
    return batch


def _feed(state, stream, batch_size, columnar):
    if columnar:
        for chunk in stream.batches(batch_size):
            state.ingest_batch(chunk)
    else:
        from repro.streams.stream import decoded_chunks

        for chunk in decoded_chunks(stream.updates(), batch_size):
            state.ingest_batch(chunk)
    return state.finish()


class TestOraclePassStates:
    @pytest.mark.parametrize("batch_size", [1, 3, 64, 10_000])
    def test_insertion_pass_state_scalar_vs_columnar(self, batch_size):
        rng = random.Random(batch_size)
        graph = generators.gnp(40, 0.2, rng=1)
        stream = insertion_stream(graph, rng=2)
        queries = _query_mix(rng, stream.n)
        answers = {}
        for columnar in (False, True):
            oracle = InsertionStreamOracle(stream, rng=77)
            state = oracle.begin_batch(queries)
            answers[columnar] = _feed(state, stream, batch_size, columnar)
        assert answers[False] == answers[True]

    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_turnstile_pass_state_scalar_vs_columnar(self, batch_size):
        rng = random.Random(batch_size)
        graph = generators.gnp(30, 0.3, rng=3)
        stream = turnstile_churn_stream(graph, churn_edges=25, rng=4)
        assert stream.allows_deletions  # negative deltas exercised
        queries = [
            EdgeCountQuery(),
            RandomEdgeQuery(),
            DegreeQuery(rng.randrange(stream.n)),
            AdjacencyQuery(0, 1),
            RandomNeighborQuery(rng.randrange(stream.n)),
        ]
        answers = {}
        for columnar in (False, True):
            oracle = TurnstileStreamOracle(stream, rng=31, sampler_repetitions=4)
            state = oracle.begin_batch(queries)
            answers[columnar] = _feed(state, stream, batch_size, columnar)
        assert answers[False] == answers[True]

    def test_empty_stream_pass_state(self):
        stream = EdgeStream(5, [], allow_deletions=True)
        oracle = TurnstileStreamOracle(stream, rng=1)
        state = oracle.begin_batch([EdgeCountQuery(), RandomEdgeQuery()])
        for chunk in stream.batches():
            state.ingest_batch(chunk)
        assert state.finish() == [0, None]

    def test_mixed_scalar_and_columnar_chunks_in_one_pass(self):
        # Feeding the same pass state tuple chunks AND EdgeBatch chunks
        # must agree with an all-scalar feed (the accumulators merge).
        graph = generators.gnp(25, 0.3, rng=9)
        stream = insertion_stream(graph, rng=10)
        queries = _query_mix(random.Random(0), stream.n)
        oracle_a = InsertionStreamOracle(stream, rng=5)
        state_a = oracle_a.begin_batch(queries)
        tuples = [
            (u.u, u.v, u.delta, u.edge) for u in stream._updates
        ]
        half = len(tuples) // 2
        batch_objects = list(stream.batches())  # counts one pass
        state_a.ingest_batch(tuples[:half])
        state_a.ingest_batch(EdgeBatch.from_tuples(tuples[half:]))
        answers_mixed = state_a.finish()

        oracle_b = InsertionStreamOracle(stream, rng=5)
        state_b = oracle_b.begin_batch(queries)
        state_b.ingest_batch(tuples)
        assert answers_mixed == state_b.finish()
        assert batch_objects  # cache is primed and reused


class TestEndToEnd:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 100_000])
    def test_fused_insertion_scalar_vs_columnar_engine(self, batch_size):
        graph = generators.barabasi_albert(150, 4, rng=11)
        stream = insertion_stream(graph, rng=12)
        results = {}
        for columnar in (False, True):
            engine = StreamEngine(stream, batch_size=batch_size, columnar=columnar)
            engine.register(
                fgp_insertion_estimator(
                    stream, patterns.triangle(), trials=40, rng=61, name="fgp"
                )
            )
            results[columnar] = engine.run()["fgp"]
        assert results[False].estimate == results[True].estimate
        assert results[False].details == results[True].details

    def test_fused_turnstile_scalar_vs_columnar_engine(self):
        graph = generators.gnp(30, 0.3, rng=13)
        stream = turnstile_churn_stream(graph, churn_edges=20, rng=14)
        results = {}
        for columnar in (False, True):
            engine = StreamEngine(stream, batch_size=13, columnar=columnar)
            engine.register(
                fgp_turnstile_estimator(
                    stream, patterns.triangle(), trials=8, rng=71, name="fgp"
                )
            )
            results[columnar] = engine.run()["fgp"]
        assert results[False].estimate == results[True].estimate

    def test_fused_entry_point_columnar_flag_is_bit_invariant(self):
        graph = generators.barabasi_albert(120, 4, rng=21)
        stream = insertion_stream(graph, rng=22)
        runs = [
            count_subgraphs_insertion_only_fused(
                stream,
                patterns.triangle(),
                copies=3,
                trials=25,
                rng=5,
                mode="mirror",
                columnar=columnar,
            )
            for columnar in (False, True)
        ]
        assert runs[0].estimates == runs[1].estimates

    def test_fused_turnstile_entry_point_columnar_flag_is_bit_invariant(self):
        graph = generators.gnp(25, 0.3, rng=23)
        stream = turnstile_churn_stream(graph, churn_edges=15, rng=24)
        runs = [
            count_subgraphs_turnstile_fused(
                stream,
                patterns.triangle(),
                copies=2,
                trials=6,
                rng=7,
                mode="mirror",
                columnar=columnar,
            )
            for columnar in (False, True)
        ]
        assert runs[0].estimates == runs[1].estimates

    def test_process_backend_ships_columnar_batches_bit_identically(self):
        graph = generators.barabasi_albert(100, 4, rng=31)
        stream = insertion_stream(graph, rng=32)
        serial = count_subgraphs_insertion_only_fused(
            stream, patterns.triangle(), copies=2, trials=15, rng=3, mode="mirror"
        )
        process = count_subgraphs_insertion_only_fused(
            stream,
            patterns.triangle(),
            copies=2,
            trials=15,
            rng=3,
            mode="mirror",
            backend="process",
            workers=2,
        )
        assert serial.estimates == process.estimates


class TestEdgeBatch:
    def test_sequence_protocol_matches_decoded_tuples(self):
        updates = [Update(0, 3), Update(2, 1), Update(4, 0)]
        batch = EdgeBatch.from_updates(updates)
        expected = [(u.u, u.v, u.delta, u.edge) for u in updates]
        assert list(batch) == expected
        assert batch[1] == expected[1]
        assert len(batch) == 3
        assert batch.edge_list() == [u.edge for u in updates]
        assert all(isinstance(x, int) for tup in batch for x in tup[:3])

    def test_slicing_returns_batches(self):
        batch = EdgeBatch.from_updates([Update(0, 1), Update(1, 2), Update(2, 3)])
        tail = batch[1:]
        assert isinstance(tail, EdgeBatch)
        assert list(tail) == list(batch)[1:]

    def test_pickle_drops_caches_and_round_trips(self):
        import pickle

        batch = EdgeBatch.from_updates([Update(0, 5), Update(3, 1)])
        batch.tuples()  # materialize caches
        batch.edge_ids(6)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone._tuples is None and clone._edge_ids is None
        assert list(clone) == list(batch)

    def test_edge_ids_match_turnstile_encoding(self):
        from repro.transform.turnstile import _edge_id

        batch = EdgeBatch.from_updates([Update(4, 1), Update(0, 5), Update(2, 3)])
        ids = batch.edge_ids(6).tolist()
        assert ids == [_edge_id(u, v, 6) for u, v, _, _ in batch]

    def test_events_interleave_in_stream_order(self):
        batch = EdgeBatch.from_updates([Update(1, 2), Update(3, 0)])
        endpoint, other, index = batch.events()
        assert endpoint.tolist() == [1, 2, 3, 0]
        assert other.tolist() == [2, 1, 0, 3]
        assert index.tolist() == [0, 0, 1, 1]

    def test_stream_batches_cache_and_count_passes(self):
        graph = generators.gnp(20, 0.3, rng=2)
        stream = insertion_stream(graph, rng=3)
        stream.reset_pass_count()
        first = list(stream.batches(7))
        second = list(stream.batches(7))
        assert stream.passes_used == 2
        assert all(a is b for a, b in zip(first, second))  # cached objects
        flat = [tup for batch in first for tup in batch]
        from repro.streams.stream import decoded_chunks

        reference = [tup for chunk in decoded_chunks(stream.updates(), 7) for tup in chunk]
        assert flat == reference
