"""Tests for the 2-pass star-decomposable counter
(:mod:`repro.streaming.two_pass`) — the conclusion's open question,
answered for the star subclass."""

import pytest

from repro.errors import EstimationError
from repro.exact.subgraphs import count_subgraphs
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streaming.three_pass import count_subgraphs_insertion_only
from repro.streaming.two_pass import count_subgraphs_two_pass, is_star_decomposable
from repro.streams.stream import insertion_stream


class TestStarDecomposable:
    def test_star_only_patterns(self):
        for pattern in (
            zoo.edge(),
            zoo.star(2),
            zoo.star(3),
            zoo.path(3),
            zoo.path(4),
            zoo.matching(2),
            zoo.cycle(4),
            zoo.clique(4),
            zoo.diamond(),
            zoo.paw(),
        ):
            assert is_star_decomposable(pattern), pattern.name

    def test_odd_cycle_patterns_rejected(self):
        for pattern in (
            zoo.triangle(),
            zoo.cycle(5),
            zoo.clique(5),
            zoo.triangle_with_disjoint_edge(),
        ):
            assert not is_star_decomposable(pattern), pattern.name


class TestTwoPassCounter:
    def test_uses_exactly_two_passes(self):
        graph = gen.gnp(40, 0.25, rng=1)
        stream = insertion_stream(graph, rng=2)
        result = count_subgraphs_two_pass(stream, zoo.path(3), trials=500, rng=3)
        assert result.passes == 2
        assert stream.passes_used == 2

    def test_rejects_triangle(self):
        stream = insertion_stream(gen.karate_club(), rng=4)
        with pytest.raises(EstimationError):
            count_subgraphs_two_pass(stream, zoo.triangle(), trials=10)

    def test_accuracy_on_p3(self):
        graph = gen.gnp(35, 0.3, rng=5)
        truth = count_subgraphs(graph, zoo.path(3))
        stream = insertion_stream(graph, rng=6)
        result = count_subgraphs_two_pass(stream, zoo.path(3), trials=6000, rng=7)
        assert result.estimate == pytest.approx(truth, rel=0.25)

    def test_accuracy_on_c4(self):
        graph = gen.gnp(25, 0.4, rng=8)
        truth = count_subgraphs(graph, zoo.cycle(4))
        stream = insertion_stream(graph, rng=9)
        result = count_subgraphs_two_pass(stream, zoo.cycle(4), trials=25000, rng=10)
        assert truth > 0
        assert result.estimate == pytest.approx(truth, rel=0.35)

    def test_matches_three_pass_at_same_budget(self):
        # Same pattern, same trials: accuracy comparable, one pass fewer.
        graph = gen.gnp(30, 0.3, rng=11)
        truth = count_subgraphs(graph, zoo.star(2))
        two = count_subgraphs_two_pass(
            insertion_stream(graph, rng=12), zoo.star(2), trials=5000, rng=13
        )
        three = count_subgraphs_insertion_only(
            insertion_stream(graph, rng=14), zoo.star(2), trials=5000, rng=15
        )
        assert two.passes == 2
        assert three.passes == 3
        assert two.estimate == pytest.approx(truth, rel=0.25)
        assert three.estimate == pytest.approx(truth, rel=0.25)

    def test_empty_graph(self):
        stream = insertion_stream(gen.gnp(10, 0.0, rng=16), rng=16)
        result = count_subgraphs_two_pass(stream, zoo.path(3), trials=50, rng=17)
        assert result.estimate == 0.0

    def test_chernoff_budget_path(self):
        graph = gen.gnp(30, 0.3, rng=18)
        truth = count_subgraphs(graph, zoo.path(3))
        stream = insertion_stream(graph, rng=19)
        result = count_subgraphs_two_pass(
            stream, zoo.path(3), epsilon=0.3, lower_bound=truth, rng=20
        )
        assert result.trials >= 1
        assert result.estimate == pytest.approx(truth, rel=0.35)
