"""Tests for the estimation toolkit."""

import math

import pytest

from repro.errors import EstimationError
from repro.estimate.concentration import (
    ParamMode,
    chernoff_trials,
    median_of_means,
    relative_error,
    wilson_interval,
)
from repro.estimate.result import EstimateResult
from repro.estimate.search import geometric_search


class TestChernoffTrials:
    def test_theory_formula(self):
        m, rho, eps, n, lower = 100, 1.5, 0.1, 50, 10.0
        expected = math.ceil(30 * math.log(n) * (2 * m) ** rho / (eps**2 * lower))
        assert chernoff_trials(m, rho, eps, n, lower, mode=ParamMode.THEORY, cap=10**12) == expected

    def test_practical_scales_inverse_eps_squared(self):
        a = chernoff_trials(100, 1.5, 0.4, 50, 10.0)
        b = chernoff_trials(100, 1.5, 0.2, 50, 10.0)
        assert b == pytest.approx(4 * a, rel=0.02)

    def test_cap(self):
        assert chernoff_trials(10**6, 2.5, 0.01, 100, 1.0, cap=1000) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_trials(100, 1.5, 1.5, 50, 10.0)
        with pytest.raises(ValueError):
            chernoff_trials(100, 1.5, 0.1, 50, 0.0)
        with pytest.raises(EstimationError):
            chernoff_trials(100, 1.5, 0.1, 50, 1.0, mode="bogus")


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == math.inf


class TestMedianOfMeans:
    def test_single_group_is_mean(self):
        assert median_of_means([1.0, 2.0, 3.0, 4.0], 1) == pytest.approx(2.5)

    def test_outlier_robustness(self):
        values = [10.0] * 30 + [10**9]
        assert median_of_means(values, groups=7) == pytest.approx(10.0, rel=0.5)

    def test_validation(self):
        with pytest.raises(EstimationError):
            median_of_means([], 3)
        with pytest.raises(EstimationError):
            median_of_means([1.0], 0)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low <= 0.3 <= high

    def test_bounds_clamped(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        low, high = wilson_interval(10, 10)
        assert high == 1.0

    def test_validation(self):
        with pytest.raises(EstimationError):
            wilson_interval(0, 0)


class TestGeometricSearch:
    def test_finds_consistent_level(self):
        truth = 800.0

        def estimator(guess):
            # Lemma 21 contract: accurate when guess <= truth, small otherwise.
            return truth if guess <= truth else guess / 10.0

        estimate, accepted, evaluations = geometric_search(estimator, upper_bound=10**6)
        assert estimate == pytest.approx(truth)
        assert accepted <= truth
        assert evaluations >= 1

    def test_everything_rejected_reports_floor(self):
        estimate, accepted, _ = geometric_search(lambda guess: 0.0, upper_bound=100.0)
        assert accepted == 1.0
        assert estimate == 0.0

    def test_validation(self):
        with pytest.raises(EstimationError):
            geometric_search(lambda guess: 0.0, upper_bound=0.5)
        with pytest.raises(EstimationError):
            geometric_search(lambda guess: 0.0, upper_bound=10.0, shrink=1.0)


class TestEstimateResult:
    def test_error_and_within(self):
        result = EstimateResult("alg", "H", estimate=110.0)
        assert result.error_vs(100.0) == pytest.approx(0.1)
        assert result.within(100.0, 0.15)
        assert not result.within(100.0, 0.05)

    def test_summary_contains_fields(self):
        result = EstimateResult("alg", "H", estimate=5.0, passes=3, trials=7)
        text = result.summary(truth=5.0)
        assert "alg[H]" in text
        assert "passes=3" in text
        assert "err=0.000" in text
