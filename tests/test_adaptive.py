"""Tests for the unknown-#H workflow (:mod:`repro.streaming.adaptive`)."""

import pytest

from repro.errors import EstimationError
from repro.exact.subgraphs import count_subgraphs
from repro.exact.triangles import count_triangles
from repro.graph import generators as gen
from repro.patterns import pattern as zoo
from repro.streaming.adaptive import count_subgraphs_unknown
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import insertion_stream


class TestCountUnknown:
    def test_triangles_without_prior(self):
        graph = gen.gnp(40, 0.3, rng=1)
        truth = count_triangles(graph)
        result = count_subgraphs_unknown(
            insertion_stream(graph, rng=2), zoo.triangle(), epsilon=0.3, rng=3
        )
        assert result.estimate == pytest.approx(truth, rel=0.4)
        # 3 passes per probe; probes recorded in details.
        assert result.passes == 3 * int(result.details["probes"])
        assert result.details["accepted_L"] <= truth * 1.5

    def test_starts_from_agm_bound(self):
        graph = gen.gnp(30, 0.3, rng=4)
        result = count_subgraphs_unknown(
            insertion_stream(graph, rng=5), zoo.path(3), epsilon=0.3, rng=6
        )
        assert result.details["agm_start"] == pytest.approx(
            (2.0 * graph.m) ** 2.0
        )

    def test_zero_copies_terminates(self):
        # Triangle-free graph: every guess is rejected; the search
        # bottoms out at the floor instead of hanging.
        graph = gen.grid_graph(6, 6)
        result = count_subgraphs_unknown(
            insertion_stream(graph, rng=7), zoo.triangle(), epsilon=0.4, rng=8,
            max_trials_per_probe=4000,
        )
        assert result.estimate < 2.0

    def test_empty_stream(self):
        graph = gen.gnp(8, 0.0, rng=9)
        result = count_subgraphs_unknown(
            insertion_stream(graph, rng=10), zoo.triangle(), rng=11
        )
        assert result.estimate == 0.0
        assert result.passes == 0

    def test_rejects_turnstile(self):
        stream = turnstile_churn_stream(gen.karate_club(), 10, rng=12)
        with pytest.raises(EstimationError):
            count_subgraphs_unknown(stream, zoo.triangle())

    def test_trial_cap_respected(self):
        # A pattern with large m^rho relative to #H would demand a
        # huge first probe; the cap bounds every probe.
        graph = gen.gnp(30, 0.25, rng=13)
        result = count_subgraphs_unknown(
            insertion_stream(graph, rng=14),
            zoo.cycle(4),
            epsilon=0.3,
            rng=15,
            max_trials_per_probe=2000,
        )
        assert result.trials <= 2000 * result.details["probes"]

    def test_matches_known_bound_run(self):
        # The adaptive result should be in the same ballpark as a run
        # given the true lower bound.
        graph = gen.gnp(35, 0.3, rng=16)
        truth = count_subgraphs(graph, zoo.path(3))
        result = count_subgraphs_unknown(
            insertion_stream(graph, rng=17), zoo.path(3), epsilon=0.3, rng=18
        )
        assert result.estimate == pytest.approx(truth, rel=0.4)
