"""Tests for the baseline counters."""

import statistics

import pytest

from repro.baselines.cycle_sketch import (
    HomomorphismSketch,
    sketch_count_four_cycles,
    sketch_count_triangles,
)
from repro.baselines.doulion import doulion_count
from repro.baselines.exact_stream import exact_stream_count
from repro.baselines.mvv import mvv_triangle_count
from repro.baselines.triest import triest_count
from repro.errors import EstimationError
from repro.exact.subgraphs import count_homomorphisms, count_subgraphs
from repro.exact.triangles import count_triangles
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import insertion_stream


@pytest.fixture
def karate():
    return gen.karate_club()


class TestExactStream:
    def test_matches_exact_count(self, karate):
        stream = insertion_stream(karate, rng=1)
        result = exact_stream_count(stream, pattern_zoo.triangle())
        assert result.estimate == 45.0
        assert result.passes == 1

    def test_turnstile_respects_deletions(self, karate):
        stream = turnstile_churn_stream(karate, 30, rng=2)
        result = exact_stream_count(stream, pattern_zoo.triangle())
        assert result.estimate == 45.0

    def test_space_is_m(self, karate):
        stream = insertion_stream(karate, rng=3)
        result = exact_stream_count(stream, pattern_zoo.triangle())
        assert result.space_words == karate.m


class TestTriest:
    def test_exact_when_reservoir_holds_everything(self, karate):
        stream = insertion_stream(karate, rng=4)
        result = triest_count(stream, capacity=karate.m + 10, rng=5)
        assert result.estimate == pytest.approx(45.0)

    def test_sampled_regime_concentrates(self, karate):
        estimates = [
            triest_count(insertion_stream(karate, rng=10 + i), capacity=40, rng=20 + i).estimate
            for i in range(40)
        ]
        assert statistics.mean(estimates) == pytest.approx(45.0, rel=0.25)

    def test_capacity_validation(self, karate):
        with pytest.raises(EstimationError):
            triest_count(insertion_stream(karate, rng=1), capacity=1)

    def test_rejects_turnstile(self, karate):
        stream = turnstile_churn_stream(karate, 5, rng=1)
        with pytest.raises(EstimationError):
            triest_count(stream, capacity=10)


class TestDoulion:
    def test_unbiasedness(self, karate):
        estimates = [
            doulion_count(insertion_stream(karate, rng=30 + i), 0.5, rng=40 + i).estimate
            for i in range(60)
        ]
        assert statistics.mean(estimates) == pytest.approx(45.0, rel=0.25)

    def test_generalized_pattern(self, karate):
        truth = count_subgraphs(karate, pattern_zoo.cycle(4))
        estimates = [
            doulion_count(
                insertion_stream(karate, rng=50 + i),
                0.6,
                pattern=pattern_zoo.cycle(4),
                rng=60 + i,
            ).estimate
            for i in range(40)
        ]
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.3)

    def test_probability_validation(self, karate):
        with pytest.raises(ValueError):
            doulion_count(insertion_stream(karate, rng=1), 1.0)


class TestMvv:
    def test_accuracy_with_degree_oracle(self, karate):
        stream = insertion_stream(karate, rng=70)
        result = mvv_triangle_count(
            stream, trials=6000, rng=71, degree_oracle=karate.degree
        )
        assert result.estimate == pytest.approx(45.0, rel=0.25)
        assert result.passes == 3

    def test_accuracy_without_oracle_uses_four_passes(self, karate):
        stream = insertion_stream(karate, rng=72)
        result = mvv_triangle_count(stream, trials=6000, rng=73)
        assert result.estimate == pytest.approx(45.0, rel=0.25)
        assert result.passes == 4

    def test_triangle_free(self):
        graph = gen.complete_bipartite_graph(6, 6)
        stream = insertion_stream(graph, rng=74)
        result = mvv_triangle_count(stream, trials=1500, rng=75)
        assert result.estimate == 0.0

    def test_trials_validation(self, karate):
        with pytest.raises(EstimationError):
            mvv_triangle_count(insertion_stream(karate, rng=1), trials=0)


class TestHomomorphismSketch:
    def test_unbiased_for_triangle_hom(self):
        """E[estimate] = hom(C3 -> G); bound the deviation by the
        measured standard error (the estimator is high-variance by
        design — that is the point of experiment E7)."""
        graph = gen.gnp(12, 0.5, rng=80)
        truth = count_homomorphisms(graph, pattern_zoo.triangle().graph)
        estimates = []
        for i in range(1000):
            sketch = HomomorphismSketch(pattern_zoo.triangle(), rng=100 + i)
            for u, v in graph.edges():
                sketch.update(u, v, 1)
            estimates.append(sketch.estimate())
        mean = statistics.mean(estimates)
        standard_error = statistics.stdev(estimates) / len(estimates) ** 0.5
        assert abs(mean - truth) <= 5 * standard_error

    def test_deletions_cancel_exactly(self):
        sketch = HomomorphismSketch(pattern_zoo.triangle(), rng=81)
        sketch.update(0, 1, 1)
        sketch.update(0, 1, -1)
        assert sketch.estimate() == pytest.approx(0.0, abs=1e-9)

    def test_triangle_wrapper(self, karate):
        """Single runs are noisy by design; the *mean* over repeated
        runs must track the truth, and each run is 1 pass."""
        estimates = []
        for i in range(12):
            result = sketch_count_triangles(
                insertion_stream(karate, rng=82 + i), sketches=96, rng=83 + i
            )
            assert result.passes == 1
            estimates.append(result.estimate)
        mean = statistics.mean(estimates)
        standard_error = statistics.stdev(estimates) / len(estimates) ** 0.5
        assert abs(mean - 45.0) <= max(5 * standard_error, 30.0)

    def test_c4_wrapper_uses_exact_correction(self, karate):
        result = sketch_count_four_cycles(
            insertion_stream(karate, rng=84), sketches=96, rng=85
        )
        degree_square_sum = result.details["degree_square_sum"]
        assert degree_square_sum == sum(d * d for d in karate.degrees())
        # The wrapper must apply the exact walk correction to its own
        # hom estimate: #C4 = (hom - 2*sum(d^2) + 2m)/8.
        hom = result.details["hom"]
        expected = (hom - 2.0 * degree_square_sum + 2.0 * karate.m) / 8.0
        assert result.estimate == pytest.approx(expected)
        # The hom estimate itself is high-variance; bound the scale only.
        truth = count_subgraphs(karate, pattern_zoo.cycle(4))
        assert abs(result.estimate - truth) < 8 * truth

    def test_turnstile_support(self, karate):
        """Deletions must cancel: the churned stream's estimate has the
        same distribution as the clean stream's.  Check the mean."""
        estimates = []
        for i in range(12):
            stream = turnstile_churn_stream(karate, 25, rng=86 + i)
            estimates.append(
                sketch_count_triangles(stream, sketches=96, rng=87 + i).estimate
            )
        mean = statistics.mean(estimates)
        standard_error = statistics.stdev(estimates) / len(estimates) ** 0.5
        assert abs(mean - 45.0) <= max(5 * standard_error, 30.0)
