"""Tests for the sharded parallel backends (:mod:`repro.engine.parallel`).

The backends' contract has four legs:

* **equality** — mirror-mode fused counts on ``backend="process"``
  and ``backend="thread"`` return the same estimates as
  ``backend="serial"`` for the same seeds, for every worker count
  (the copies are fully independent, so sharding cannot change them);
* **determinism** — every parallel run is a pure function of the
  seeds (and, in shared mode, the worker count): no worker-side
  entropy, no scheduling sensitivity, no dependence on which pool
  flavour ran the shards;
* **serializability** — everything that crosses the process boundary
  (estimator specs, seed material, baseline estimators, results)
  pickles; live generator-based estimators are *reconstructed from
  seeds* via :class:`EstimatorSpec` instead of being shipped;
* **teardown hygiene** — shutdown is bounded even with wedged
  workers, a silent worker death anywhere in the pool aborts the run
  promptly, and no shared-memory ring segment survives any teardown
  path (graceful or error).
"""

import pickle
import random
import time

import pytest

from repro import generators, insertion_stream, patterns
from repro.baselines import (
    DoulionEstimator,
    ExactStreamEstimator,
    TriestEstimator,
    doulion_count,
    exact_stream_count,
    triest_count,
)
from repro.engine import (
    EngineBackend,
    EstimatorSpec,
    FusionMode,
    StreamEngine,
    StreamHandle,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
    fgp_insertion_estimator,
)
from repro.engine.parallel import (
    STOP_SEND_TIMEOUT,
    _make_context,
    _ProcessPool,
    build_doulion,
    build_exact_stream,
    build_triest,
    leaked_shm_segments,
    resolve_workers,
    run_process_engine,
    shard_indices,
)
from repro.errors import EngineError
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import pass_batches
from repro.utils.rng import derive_rng, derive_seed


def _insertion_fixture():
    graph = generators.barabasi_albert(150, 4, rng=11)
    return graph, insertion_stream(graph, rng=12)


def _assert_same_result(left, right):
    assert left.algorithm == right.algorithm
    assert left.estimate == right.estimate
    assert left.passes == right.passes
    assert left.space_words == right.space_words
    assert left.trials == right.trials
    assert left.successes == right.successes
    assert left.m == right.m
    assert left.details == right.details


class TestMirrorProcessEquality:
    """process/mirror == serial/mirror, independent of the worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_insertion_matches_serial_for_every_worker_count(self, workers):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        serial = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=4, trials=30, rng=5, mode=FusionMode.MIRROR
        )
        parallel = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=4,
            trials=30,
            rng=5,
            mode=FusionMode.MIRROR,
            backend=EngineBackend.PROCESS,
            workers=workers,
        )
        assert parallel.estimate == serial.estimate
        assert parallel.estimates == serial.estimates
        assert parallel.passes == serial.passes == 3
        assert parallel.backend == "process"
        assert parallel.details["workers"] == float(min(workers, 4))
        for parallel_copy, serial_copy in zip(parallel.copies, serial.copies):
            _assert_same_result(parallel_copy, serial_copy)

    def test_turnstile_matches_serial(self):
        graph = generators.gnp(36, 0.25, rng=3)
        stream = turnstile_churn_stream(graph, churn_edges=25, rng=4)
        pattern = patterns.triangle()
        serial = count_subgraphs_turnstile_fused(
            stream, pattern, copies=3, trials=8, rng=9, mode=FusionMode.MIRROR
        )
        parallel = count_subgraphs_turnstile_fused(
            stream,
            pattern,
            copies=3,
            trials=8,
            rng=9,
            mode=FusionMode.MIRROR,
            backend=EngineBackend.PROCESS,
            workers=2,
        )
        assert parallel.estimates == serial.estimates
        for parallel_copy, serial_copy in zip(parallel.copies, serial.copies):
            _assert_same_result(parallel_copy, serial_copy)

    def test_two_pass_matches_serial(self):
        _, stream = _insertion_fixture()
        pattern = patterns.cycle(4)
        serial = count_subgraphs_two_pass_fused(
            stream, pattern, copies=3, trials=25, rng=7, mode=FusionMode.MIRROR
        )
        parallel = count_subgraphs_two_pass_fused(
            stream,
            pattern,
            copies=3,
            trials=25,
            rng=7,
            mode=FusionMode.MIRROR,
            backend=EngineBackend.PROCESS,
            workers=2,
        )
        assert parallel.passes == 2
        assert parallel.estimates == serial.estimates

    def test_explicit_copy_rngs_match_one_shot_runs(self):
        from repro import count_subgraphs_insertion_only

        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        sequential = [
            count_subgraphs_insertion_only(stream, pattern, trials=25, rng=100 + i)
            for i in range(3)
        ]
        parallel = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=3,
            trials=25,
            mode=FusionMode.MIRROR,
            copy_rngs=[100, 101, 102],
            backend=EngineBackend.PROCESS,
            workers=3,
        )
        for parallel_copy, sequential_copy in zip(parallel.copies, sequential):
            _assert_same_result(parallel_copy, sequential_copy)


class TestProcessDeterminism:
    def test_mirror_runs_are_reproducible(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        runs = [
            count_subgraphs_insertion_only_fused(
                stream,
                pattern,
                copies=3,
                trials=20,
                rng=17,
                mode=FusionMode.MIRROR,
                backend=EngineBackend.PROCESS,
                workers=2,
            )
            for _ in range(2)
        ]
        assert runs[0].estimates == runs[1].estimates

    def test_shared_runs_are_reproducible_for_fixed_workers(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        runs = [
            count_subgraphs_insertion_only_fused(
                stream,
                pattern,
                copies=4,
                trials=20,
                rng=23,
                mode=FusionMode.SHARED,
                backend=EngineBackend.PROCESS,
                workers=2,
            )
            for _ in range(2)
        ]
        assert runs[0].estimates == runs[1].estimates
        assert runs[0].passes == 3
        # Global copy indices survive sharding.
        assert [c.details["fused_copy"] for c in runs[0].copies] == [0.0, 1.0, 2.0, 3.0]

    def test_shared_rejects_copy_rngs(self):
        _, stream = _insertion_fixture()
        with pytest.raises(EngineError):
            count_subgraphs_insertion_only_fused(
                stream,
                patterns.triangle(),
                copies=2,
                trials=5,
                mode=FusionMode.SHARED,
                backend=EngineBackend.PROCESS,
                copy_rngs=[1, 2],
            )

    def test_derive_seed_matches_derive_rng(self):
        # The bridge that lets plain ints cross the process boundary in
        # place of generators.
        for label in ("copy-0", "oracle-shard-1", 7):
            a, b = random.Random(99), random.Random(99)
            assert random.Random(derive_seed(a, label)).random() == derive_rng(b, label).random()
            assert a.getstate() == b.getstate()


class TestEstimatorSerialization:
    """The first serialization audit: what crosses the boundary, pickles."""

    def test_baseline_estimators_pickle_round_trip(self):
        graph, stream = _insertion_fixture()
        pattern = patterns.triangle()
        estimators = [
            TriestEstimator(capacity=60, rng=31),
            DoulionEstimator(stream.n, 0.5, pattern, rng=32),
            ExactStreamEstimator(stream.n, pattern),
        ]
        batch = [(u, v, 1, (u, v)) for u, v in graph.edges()]
        for estimator in estimators:
            clone = pickle.loads(pickle.dumps(estimator))
            for consumer in (estimator, clone):
                consumer.begin_pass(0)
                consumer.ingest_batch(batch)
                consumer.end_pass()
            assert clone.result().estimate == estimator.result().estimate

    def test_spec_pickle_round_trip_builds_equivalent_estimator(self):
        # Generator-based estimators are reconstructable from seeds:
        # the spec (not the estimator) is what pickles.
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        spec = EstimatorSpec(
            name="fgp",
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=20, rng=41, name="fgp"),
        )
        clone = pickle.loads(pickle.dumps(spec))
        results = []
        for recipe in (spec, clone):
            engine = StreamEngine(stream)
            engine.register_spec(recipe)
            results.append(engine.run()["fgp"])
        _assert_same_result(results[0], results[1])

    def test_spec_pickles_with_random_instance_seed_material(self):
        pattern = patterns.triangle()
        rng = random.Random(7)
        rng.random()  # advance: the *state*, not the seed, must survive
        spec = EstimatorSpec(
            name="fgp",
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=5, rng=rng, name="fgp"),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.kwargs["rng"].getstate() == rng.getstate()

    def test_stream_handle_is_picklable_and_refuses_iteration(self):
        _, stream = _insertion_fixture()
        handle = StreamHandle.of(stream)
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.n == stream.n
        assert clone.net_edge_count == stream.net_edge_count
        assert clone.allows_deletions == stream.allows_deletions
        assert len(clone) == stream.length
        assert StreamHandle.of(clone) is clone
        with pytest.raises(EngineError):
            clone.updates()

    def test_fused_results_pickle(self):
        _, stream = _insertion_fixture()
        result = count_subgraphs_insertion_only_fused(
            stream, patterns.triangle(), copies=2, trials=10, rng=3
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.estimate == result.estimate
        assert clone.estimates == result.estimates


class TestProcessEngineApi:
    def test_heterogeneous_baseline_specs_match_one_shot(self):
        graph, stream = _insertion_fixture()
        pattern = patterns.triangle()
        sequential_triest = triest_count(stream, capacity=80, rng=31)
        sequential_doulion = doulion_count(stream, 0.5, pattern, rng=32)
        sequential_exact = exact_stream_count(stream, pattern)

        engine = StreamEngine(stream, backend=EngineBackend.PROCESS, workers=3)
        engine.register_spec(
            EstimatorSpec("triest", build_triest, dict(capacity=80, rng=31))
        )
        engine.register_spec(
            EstimatorSpec(
                "doulion",
                build_doulion,
                dict(keep_probability=0.5, pattern=pattern, rng=32),
            )
        )
        engine.register_spec(
            EstimatorSpec("exact", build_exact_stream, dict(pattern=pattern))
        )
        report = engine.run()

        assert report.passes == 1
        assert report.workers == 3
        assert report["triest"].estimate == sequential_triest.estimate
        assert report["doulion"].estimate == sequential_doulion.estimate
        assert report["exact"].estimate == sequential_exact.estimate

    def test_register_live_estimator_rejected_on_process_backend(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream, backend=EngineBackend.PROCESS)
        with pytest.raises(EngineError, match="worker pool"):
            engine.register(TriestEstimator(capacity=10, rng=1))

    def test_register_spec_on_serial_backend_builds_immediately(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream)
        engine.register_spec(
            EstimatorSpec("triest", build_triest, dict(capacity=30, rng=9))
        )
        assert [e.name for e in engine.estimators] == ["triest"]
        report = engine.run()
        assert report.workers == 1
        assert report["triest"].algorithm == "triest"

    def test_duplicate_spec_names_rejected(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream, backend=EngineBackend.PROCESS)
        engine.register_spec(EstimatorSpec("a", build_triest, dict(capacity=10, name="a")))
        with pytest.raises(EngineError):
            engine.register_spec(
                EstimatorSpec("a", build_triest, dict(capacity=10, name="a"))
            )

    def test_unknown_backend_rejected(self):
        _, stream = _insertion_fixture()
        with pytest.raises(EngineError):
            StreamEngine(stream, backend="threads")

    def test_run_without_specs_rejected(self):
        _, stream = _insertion_fixture()
        with pytest.raises(EngineError):
            StreamEngine(stream, backend=EngineBackend.PROCESS).run()

    def test_worker_failure_propagates_with_traceback(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream, backend=EngineBackend.PROCESS, workers=1)
        engine.register_spec(EstimatorSpec("boom", _exploding_factory, {}))
        with pytest.raises(EngineError, match="worker 0 failed"):
            engine.run()

    def test_mid_pass_worker_failure_does_not_deadlock(self):
        # The estimator dies on the first batch while the driver still
        # has a whole pass of batch_size=1 messages to broadcast; the
        # guarded send must surface the worker's error instead of
        # blocking forever on the full command queue.
        _, stream = _insertion_fixture()
        engine = StreamEngine(
            stream, batch_size=1, backend=EngineBackend.PROCESS, workers=1
        )
        engine.register_spec(EstimatorSpec("mine", _ingest_bomb_factory, {}))
        with pytest.raises(EngineError, match="worker 0 failed"):
            engine.run()

    def test_misnamed_spec_fails_in_worker(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream, backend=EngineBackend.PROCESS, workers=1)
        engine.register_spec(
            EstimatorSpec("expected", build_triest, dict(capacity=10, name="actual"))
        )
        with pytest.raises(EngineError, match="worker 0 failed"):
            engine.run()


class TestThreadBackend:
    """The thread tier: same worker loop, by-reference transport."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_insertion_mirror_matches_serial_for_every_worker_count(self, workers):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        serial = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=4, trials=30, rng=5, mode=FusionMode.MIRROR
        )
        threaded = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=4,
            trials=30,
            rng=5,
            mode=FusionMode.MIRROR,
            backend=EngineBackend.THREAD,
            workers=workers,
        )
        assert threaded.estimate == serial.estimate
        assert threaded.estimates == serial.estimates
        assert threaded.passes == serial.passes == 3
        assert threaded.backend == "thread"
        for threaded_copy, serial_copy in zip(threaded.copies, serial.copies):
            _assert_same_result(threaded_copy, serial_copy)

    def test_shared_mode_matches_process_backend(self):
        # Shared mode shards the merged oracles per worker, so the
        # estimates depend on the pool size — but not on the pool
        # flavour: every seed is derived driver-side.
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        results = {
            backend: count_subgraphs_insertion_only_fused(
                stream,
                pattern,
                copies=4,
                trials=20,
                rng=23,
                mode=FusionMode.SHARED,
                backend=backend,
                workers=2,
            )
            for backend in (EngineBackend.THREAD, EngineBackend.PROCESS)
        }
        assert (
            results[EngineBackend.THREAD].estimates
            == results[EngineBackend.PROCESS].estimates
        )

    def test_heterogeneous_baseline_specs_match_one_shot(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        engine = StreamEngine(stream, backend=EngineBackend.THREAD, workers=2)
        engine.register_spec(
            EstimatorSpec("triest", build_triest, dict(capacity=80, rng=31))
        )
        engine.register_spec(
            EstimatorSpec("exact", build_exact_stream, dict(pattern=pattern))
        )
        report = engine.run()
        assert report.workers == 2
        assert report["triest"].estimate == triest_count(stream, capacity=80, rng=31).estimate
        assert report["exact"].estimate == exact_stream_count(stream, pattern).estimate

    def test_register_live_estimator_rejected_on_thread_backend(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream, backend=EngineBackend.THREAD)
        with pytest.raises(EngineError, match="worker pool"):
            engine.register(TriestEstimator(capacity=10, rng=1))

    def test_worker_failure_propagates_with_traceback(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream, backend=EngineBackend.THREAD, workers=1)
        engine.register_spec(EstimatorSpec("boom", _exploding_factory, {}))
        with pytest.raises(EngineError, match="thread worker 0 failed"):
            engine.run()


class TestTeardownHygiene:
    """Bounded shutdown, pool-wide death probes, no leaked segments."""

    def _pool(self, shards, batch_capacity=None):
        _, stream = _insertion_fixture()
        handle = StreamHandle.of(stream)
        kwargs = {} if batch_capacity is None else dict(batch_capacity=batch_capacity)
        return (
            _ProcessPool(_make_context(None), shards, handle, 600.0, **kwargs),
            stream,
        )

    @staticmethod
    def _fill_command_queue(pool, worker_id, payload):
        """Stuff a wedged worker's bounded queue until it backpressures."""
        import queue as queue_module

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                pool.commands[worker_id].put_nowait(payload)
            except queue_module.Full:
                return
            time.sleep(0.001)
        pytest.fail("command queue never filled; the worker should be wedged")

    def test_graceful_shutdown_with_wedged_worker_is_bounded(self):
        # Regression: shutdown(graceful=True) used to do a blocking
        # put(("stop",)) — a worker stalled mid-ingest with a full
        # command queue hung the driver forever.
        pool, _ = self._pool([[EstimatorSpec("stall", _stalling_factory, {})]])
        try:
            pool.gather("ready", [0])
            pool.send(0, ("begin_pass", 0))
            self._fill_command_queue(pool, 0, ("batch", [(0, 1, 1, (0, 1))]))
        finally:
            start = time.monotonic()
            pool.shutdown(graceful=True)
            elapsed = time.monotonic() - start
        assert elapsed < STOP_SEND_TIMEOUT + 20.0
        assert not pool.processes[0].is_alive()

    def test_silent_sibling_death_aborts_blocked_send(self):
        # Regression: the guarded send used to probe only its own
        # target, so a sibling dying silently (kill -9, OOM) left the
        # driver blocked on the wedged worker until the 600s reply
        # timeout instead of aborting within about a second.
        pool, _ = self._pool(
            [
                [EstimatorSpec("stall", _stalling_factory, {})],
                [
                    EstimatorSpec(
                        "exact", build_exact_stream, dict(pattern=patterns.triangle())
                    )
                ],
            ]
        )
        try:
            pool.gather("ready", [0, 1])
            pool.broadcast([0, 1], ("begin_pass", 0))
            self._fill_command_queue(pool, 0, ("batch", [(0, 1, 1, (0, 1))]))
            pool.processes[1].kill()
            pool.processes[1].join(timeout=10.0)
            start = time.monotonic()
            with pytest.raises(EngineError, match="died without reporting an error"):
                pool.send(0, ("batch", [(1, 2, 1, (1, 2))]))
            assert time.monotonic() - start < 30.0
        finally:
            pool.shutdown(graceful=False)

    def test_columnar_batches_travel_through_the_ring(self):
        # White-box: drive the worker protocol by hand and check the
        # batches actually took the shared-memory path (shm_batches
        # counts ring publications, not pickled fallbacks) while the
        # results still match the serial exact count.
        pattern = patterns.triangle()
        shards = [[EstimatorSpec("exact", build_exact_stream, dict(pattern=pattern))]]
        before = set(leaked_shm_segments())
        pool, stream = self._pool(shards, batch_capacity=64)
        try:
            pool.gather("ready", [0])
            pool.send(0, ("begin_pass", 0))
            for batch in pass_batches(stream, 64, True):
                pool.publish_batch([0], batch)
            pool.send(0, ("end_pass",))
            pool.gather("pass_done", [0])
            pool.send(0, ("collect",))
            results = pool.gather("results", [0])
        finally:
            pool.shutdown(graceful=True)
        assert pool.shm_batches > 0
        assert results[0]["exact"].estimate == exact_stream_count(stream, pattern).estimate
        assert set(leaked_shm_segments()) == before

    def test_no_segments_leak_on_the_graceful_path(self):
        _, stream = _insertion_fixture()
        before = set(leaked_shm_segments())
        count_subgraphs_insertion_only_fused(
            stream,
            patterns.triangle(),
            copies=2,
            trials=5,
            rng=1,
            mode=FusionMode.MIRROR,
            backend=EngineBackend.PROCESS,
            workers=2,
            batch_size=32,
        )
        assert set(leaked_shm_segments()) == before

    def test_no_segments_leak_on_the_error_path(self):
        # The bomb detonates while ring slots are still in flight; the
        # terminate path must unlink every segment regardless.
        _, stream = _insertion_fixture()
        before = set(leaked_shm_segments())
        engine = StreamEngine(
            stream, batch_size=1, backend=EngineBackend.PROCESS, workers=1
        )
        engine.register_spec(EstimatorSpec("mine", _ingest_bomb_factory, {}))
        with pytest.raises(EngineError, match="worker 0 failed"):
            engine.run()
        assert set(leaked_shm_segments()) == before

    def test_no_segments_leak_after_sigkill_during_publish(self):
        # Hardest teardown case: a worker takes a real SIGKILL while a
        # shared-memory batch it was ingesting is still in its ring
        # slot.  The degrade path must finish with survivors AND the
        # ring teardown must still unlink every segment — a dead
        # attach-side process cannot be allowed to pin one.
        from repro.faults import FaultPlan

        _, stream = _insertion_fixture()
        before = set(leaked_shm_segments())
        plan = FaultPlan(seed=77).kill_worker(0, nth_batch=2)
        report = run_process_engine(
            stream,
            [
                EstimatorSpec("t0", build_triest,
                              dict(capacity=60, rng=31, name="t0")),
                EstimatorSpec("t1", build_triest,
                              dict(capacity=60, rng=32, name="t1")),
            ],
            workers=2,
            batch_size=64,
            on_worker_loss="degrade",
            fault_plan=plan,
        )
        assert report.degraded
        assert report.lost == ("t0",)
        assert "t1" in report.results
        assert set(leaked_shm_segments()) == before


class TestShardingHelpers:
    def test_shard_indices_partition(self):
        assert shard_indices(5, 2) == [[0, 1, 2], [3, 4]]
        assert shard_indices(4, 4) == [[0], [1], [2], [3]]
        assert shard_indices(2, 5) == [[0], [1]]
        assert shard_indices(0, 3) == []
        with pytest.raises(EngineError):
            shard_indices(3, 0)

    def test_resolve_workers(self):
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(None, 3) >= 1
        with pytest.raises(EngineError):
            resolve_workers(0, 3)


def _exploding_factory(stream, **kwargs):
    raise RuntimeError("intentional failure for the error-path test")


class _IngestBomb:
    """Accepts the pass, then detonates on the first ingested batch."""

    name = "mine"

    def __init__(self):
        self._done = False

    def wants_pass(self):
        return not self._done

    def begin_pass(self, pass_index):
        pass

    def ingest_batch(self, batch):
        raise RuntimeError("intentional mid-pass failure")

    def end_pass(self):
        self._done = True

    def result(self):
        return None


def _ingest_bomb_factory(stream, **kwargs):
    return _IngestBomb()


class _StallingEstimator:
    """Wedges its worker: never returns from the first ingested batch."""

    name = "stall"

    def wants_pass(self):
        return True

    def begin_pass(self, pass_index):
        pass

    def ingest_batch(self, batch):
        time.sleep(600.0)

    def end_pass(self):
        pass

    def result(self):
        return None


def _stalling_factory(stream, **kwargs):
    return _StallingEstimator()
