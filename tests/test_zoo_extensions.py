"""Tests for the extended pattern zoo (gem, book, wheel, prism,
complete bipartite) and the new generator families (Watts–Strogatz,
random geometric, planted partition)."""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import GraphError, PatternError
from repro.exact.subgraphs import count_subgraphs
from repro.exact.triangles import count_triangles
from repro.graph import generators as gen
from repro.graph.degeneracy import degeneracy
from repro.patterns import pattern as zoo
from repro.patterns.decomposition import decomposition_cost


class TestNewPatterns:
    def test_gem_invariants(self):
        pattern = zoo.gem()
        assert pattern.num_vertices == 5
        assert pattern.num_edges == 7
        assert pattern.rho() == pytest.approx(2.5)

    def test_book_series(self):
        # B_1 is the triangle; B_2 the diamond; rho(B_k) = k for k >= 2.
        assert zoo.book(1).rho() == pytest.approx(1.5)
        assert zoo.book(2).rho() == pytest.approx(2.0)
        assert zoo.book(3).rho() == pytest.approx(3.0)
        assert zoo.book(4).rho() == pytest.approx(4.0)
        assert zoo.book(3).num_edges == 1 + 2 * 3

    def test_wheel_invariants(self):
        w4 = zoo.wheel(4)
        assert w4.num_vertices == 5
        assert w4.num_edges == 8
        assert w4.rho() == pytest.approx(2.5)
        # W_3 is K_4.
        assert zoo.wheel(3).num_edges == 6
        assert zoo.wheel(3).rho() == pytest.approx(2.0)

    def test_prism_invariants(self):
        pattern = zoo.prism()
        assert pattern.num_vertices == 6
        assert pattern.num_edges == 9
        assert pattern.rho() == pytest.approx(3.0)
        # Optimal decomposition: two disjoint triangles.
        assert pattern.decomposition().cycle_lengths == (3, 3)

    def test_complete_bipartite(self):
        k23 = zoo.complete_bipartite(2, 3)
        assert k23.num_vertices == 5
        assert k23.num_edges == 6
        assert k23.rho() == pytest.approx(3.0)
        # K_{1,k} is the star S_k.
        assert zoo.complete_bipartite(1, 4).rho() == pytest.approx(zoo.star(4).rho())

    def test_validation(self):
        with pytest.raises(PatternError):
            zoo.book(0)
        with pytest.raises(PatternError):
            zoo.wheel(2)
        with pytest.raises(PatternError):
            zoo.complete_bipartite(0, 3)

    def test_decomposition_cost_equals_rho_on_new_zoo(self):
        # Lemma 4 must hold on every added pattern.
        for pattern in (
            zoo.gem(),
            zoo.book(3),
            zoo.wheel(4),
            zoo.wheel(5),
            zoo.prism(),
            zoo.complete_bipartite(2, 3),
        ):
            cost = decomposition_cost(pattern.decomposition())
            assert cost == pytest.approx(pattern.rho()), pattern.name

    def test_exact_counts_on_known_hosts(self):
        # K_5 contains C(5,4)*... wheels: W_4 copies in K_5 equal
        # choosing the hub (5) times C_4 count in K_4 (3): 15.
        k5 = gen.complete_graph(5)
        assert count_subgraphs(k5, zoo.wheel(4)) == 15
        # Prism copies in K_6: choose the two triangles (10 ways to
        # split 6 vertices into two unordered triples) times the 6
        # perfect matchings between them.
        k6 = gen.complete_graph(6)
        assert count_subgraphs(k6, zoo.prism()) == 10 * 6
        # Books in a book host: B_2 in the diamond graph is 1.
        diamond_host = zoo.diamond().graph
        assert count_subgraphs(diamond_host, zoo.book(2)) == 1

    def test_extended_zoo_contains_new_patterns(self):
        names = {p.name for p in zoo.extended_zoo()}
        for expected in ("gem", "B3", "W4", "prism", "K2,3"):
            assert expected in names


class TestWattsStrogatz:
    def test_ring_lattice_at_zero_rewiring(self):
        graph = gen.watts_strogatz(12, 4, 0.0, rng=1)
        assert graph.m == 12 * 2
        assert all(graph.degree(v) == 4 for v in range(12))
        assert graph.has_edge(0, 1) and graph.has_edge(0, 2)

    def test_edge_count_preserved_by_rewiring(self):
        graph = gen.watts_strogatz(40, 6, 0.5, rng=2)
        assert graph.m == 40 * 3

    def test_low_degeneracy(self):
        graph = gen.watts_strogatz(200, 6, 0.1, rng=3)
        assert degeneracy(graph) <= 6

    def test_clustering_survives_mild_rewiring(self):
        graph = gen.watts_strogatz(200, 6, 0.05, rng=4)
        assert count_triangles(graph) > 100

    def test_validation(self):
        with pytest.raises(GraphError):
            gen.watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            gen.watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(GraphError):
            gen.watts_strogatz(10, 4, 1.5)  # bad probability

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_simple_graph(self, seed):
        graph = gen.watts_strogatz(30, 4, 0.3, rng=seed)
        assert graph.m == 60
        for v in range(graph.n):
            assert v not in graph.neighbors(v)


class TestRandomGeometric:
    def test_radius_one_is_complete(self):
        graph = gen.random_geometric(15, 1.5, rng=5)
        assert graph.m == 15 * 14 // 2

    def test_tiny_radius_is_sparse(self):
        graph = gen.random_geometric(50, 0.01, rng=6)
        assert graph.m < 25

    def test_edges_respect_radius(self):
        # Regenerate points with the same seed path used internally is
        # not possible from outside, so verify structural monotonicity:
        # shrinking the radius on the same seed loses edges only.
        big = gen.random_geometric(80, 0.3, rng=7)
        small = gen.random_geometric(80, 0.15, rng=7)
        assert set(small.edges()) <= set(big.edges())

    def test_validation(self):
        with pytest.raises(GraphError):
            gen.random_geometric(10, 0.0)

    def test_triangle_rich(self):
        graph = gen.random_geometric(200, 0.12, rng=8)
        assert count_triangles(graph) > 200


class TestPlantedPartition:
    def test_block_structure(self):
        graph = gen.planted_partition(4, 10, 1.0, 0.0, rng=9)
        # p_in = 1, p_out = 0: four disjoint K_10s.
        assert graph.m == 4 * 45
        assert len(graph.connected_components()) == 4

    def test_cross_edges_appear(self):
        graph = gen.planted_partition(2, 15, 0.0, 1.0, rng=10)
        assert graph.m == 15 * 15  # complete bipartite between blocks

    def test_validation(self):
        with pytest.raises(GraphError):
            gen.planted_partition(0, 5, 0.5, 0.1)
        with pytest.raises(GraphError):
            gen.planted_partition(2, 5, 1.5, 0.1)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_vertex_count(self, communities, size, seed):
        graph = gen.planted_partition(communities, size, 0.5, 0.1, rng=seed)
        assert graph.n == communities * size
