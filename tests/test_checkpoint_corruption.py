"""Checkpoint corruption matrix: every byte-level failure is typed.

Sweeps :mod:`repro.faults.corrupt` over the byte layout exposed by
:func:`repro.engine.live.checkpoint_manifest` — truncation at every
section boundary, bit-flips in every payload, magic/version/count
mutations, trailing garbage — and asserts the contract from the
robustness spec: a damaged checkpoint raises a
:class:`~repro.errors.CheckpointError` naming what broke, **never** a
raw ``EOFError``/``UnpicklingError`` and never a silently-wrong
engine.  The legacy un-sectioned v1 layout keeps restoring, with the
same typed-error surface.
"""

import pickle
import struct

import pytest

from repro import generators, insertion_stream, patterns
from repro.engine import EstimatorSpec, LiveEngine, checkpoint_manifest
from repro.engine.estimators import fgp_insertion_estimator
from repro.engine.live import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    _encode_sections,
    _FORMAT_FULL,
)
from repro.errors import CheckpointError
from repro.faults import append_garbage, flip_bit, overwrite_bytes, truncate_file

SECTIONS = ("engine", "journal", "estimators")


@pytest.fixture(scope="module")
def pristine():
    """One pristine checkpoint, shared read-only: ``(bytes, manifest,
    expected estimates)``."""
    graph = generators.barabasi_albert(80, 3, rng=21)
    stream = insertion_stream(graph, rng=22)
    engine = LiveEngine(n=stream.n)
    pattern = patterns.triangle()
    for index in range(2):
        engine.register_spec(EstimatorSpec(
            name=f"copy-{index}",
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=15, rng=300 + index,
                        name=f"copy-{index}"),
        ))
    u, v, d = stream.columns()
    engine.feed((u, v, d))
    expected = {n: r.estimate for n, r in engine.estimate().items()}
    import tempfile, os
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "pristine.ckpt")
        engine.snapshot(path)
        blob = open(path, "rb").read()
        manifest = checkpoint_manifest(path)
    engine.close()
    return blob, manifest, expected


def _damaged(tmp_path, blob, name="damaged.ckpt"):
    path = tmp_path / name
    path.write_bytes(blob)
    return str(path)


class TestTruncationMatrix:
    """Cutting the file at ANY section boundary is a typed error."""

    @pytest.mark.parametrize("section", SECTIONS)
    @pytest.mark.parametrize("where", ["header", "payload_start", "mid", "end-1"])
    def test_truncation_at_every_boundary(self, pristine, tmp_path,
                                          section, where):
        blob, manifest, _ = pristine
        entry = {s["name"]: s for s in manifest["sections"]}[section]
        cut = {
            "header": entry["offset"],
            "payload_start": entry["payload_offset"],
            "mid": entry["payload_offset"] + entry["payload_length"] // 2,
            "end-1": entry["payload_offset"] + entry["payload_length"] - 1,
        }[where]
        path = _damaged(tmp_path, blob)
        truncate_file(path, cut)
        with pytest.raises(CheckpointError) as info:
            LiveEngine.restore(path)
        assert path in str(info.value)

    @pytest.mark.parametrize("cut", [0, 4, len(CHECKPOINT_MAGIC),
                                     len(CHECKPOINT_MAGIC) + 3])
    def test_truncation_inside_the_preamble(self, pristine, tmp_path, cut):
        blob, _, _ = pristine
        path = _damaged(tmp_path, blob)
        truncate_file(path, cut)
        with pytest.raises(CheckpointError):
            LiveEngine.restore(path)


class TestBitFlipMatrix:
    """Any flipped payload bit trips the section's CRC by name."""

    @pytest.mark.parametrize("section", SECTIONS)
    @pytest.mark.parametrize("position", [0.0, 0.5, 1.0])
    def test_payload_flip_names_the_section(self, pristine, tmp_path,
                                            section, position):
        blob, manifest, _ = pristine
        entry = {s["name"]: s for s in manifest["sections"]}[section]
        offset = entry["payload_offset"] + min(
            entry["payload_length"] - 1,
            int(position * (entry["payload_length"] - 1)),
        )
        path = _damaged(tmp_path, blob)
        flip_bit(path, offset, bit=2)
        with pytest.raises(CheckpointError) as info:
            LiveEngine.restore(path)
        message = str(info.value)
        assert section in message
        assert "CRC32" in message

    def test_flip_in_a_section_name(self, pristine, tmp_path):
        blob, manifest, _ = pristine
        entry = manifest["sections"][0]  # "engine"
        path = _damaged(tmp_path, blob)
        flip_bit(path, entry["offset"] + 1, bit=0)  # 'engine' -> 'dngine'
        with pytest.raises(CheckpointError, match="unknown checkpoint format"):
            LiveEngine.restore(path)

    def test_flip_to_a_non_ascii_name(self, pristine, tmp_path):
        blob, manifest, _ = pristine
        entry = manifest["sections"][0]
        path = _damaged(tmp_path, blob)
        flip_bit(path, entry["offset"] + 1, bit=7)
        with pytest.raises(CheckpointError, match="non-ASCII"):
            LiveEngine.restore(path)


class TestHeaderMutations:
    def test_bad_magic(self, pristine, tmp_path):
        blob, _, _ = pristine
        path = _damaged(tmp_path, blob)
        overwrite_bytes(path, 0, b"X")
        with pytest.raises(CheckpointError, match="bad magic"):
            LiveEngine.restore(path)

    @pytest.mark.parametrize("version", [0, 1, 3, 99])
    def test_unsupported_container_version(self, pristine, tmp_path, version):
        blob, _, _ = pristine
        path = _damaged(tmp_path, blob)
        overwrite_bytes(path, len(CHECKPOINT_MAGIC),
                        struct.pack("<Q", version))
        with pytest.raises(CheckpointError, match="not supported"):
            LiveEngine.restore(path)

    def test_absurd_section_count(self, pristine, tmp_path):
        blob, _, _ = pristine
        path = _damaged(tmp_path, blob)
        overwrite_bytes(path, len(CHECKPOINT_MAGIC) + 8,
                        struct.pack("<Q", 2**60))
        with pytest.raises(CheckpointError, match="section count"):
            LiveEngine.restore(path)

    def test_trailing_garbage(self, pristine, tmp_path):
        blob, _, _ = pristine
        path = _damaged(tmp_path, blob)
        append_garbage(path, 12, seed=5)
        with pytest.raises(CheckpointError, match="trailing bytes"):
            LiveEngine.restore(path)

    def test_oversized_payload_length(self, pristine, tmp_path):
        blob, manifest, _ = pristine
        entry = manifest["sections"][0]
        path = _damaged(tmp_path, blob)
        # The payload-length u64 sits 8+4=12 bytes before the payload.
        overwrite_bytes(path, entry["payload_offset"] - 12,
                        struct.pack("<Q", 2**50))
        with pytest.raises(CheckpointError, match="truncated"):
            LiveEngine.restore(path)


class TestStructuralValidation:
    def test_missing_section_is_incomplete_not_a_crash(self, tmp_path):
        blob = _encode_sections([
            ("engine", {"format": _FORMAT_FULL, "n": 10}),
        ])
        path = _damaged(tmp_path, blob, "partial.ckpt")
        with pytest.raises(CheckpointError, match="structurally incomplete"):
            LiveEngine.restore(path)

    def test_never_a_raw_unpickling_error(self, pristine, tmp_path):
        """Sweep a burst of corruptions; whatever breaks is typed."""
        blob, manifest, _ = pristine
        for seed in range(8):
            import random
            rng = random.Random(seed)
            path = _damaged(tmp_path, blob, f"sweep-{seed}.ckpt")
            offset = rng.randrange(len(blob))
            flip_bit(path, offset, bit=rng.randrange(8))
            try:
                engine = LiveEngine.restore(path)
            except CheckpointError:
                continue  # typed, as required
            # A flip that still parses must still be the right engine
            # (e.g. a flipped bit inside ignored padding cannot exist
            # in this format, but a flip may hit a section name whose
            # absence restore tolerates — never wrong data).
            engine.close()
            pytest.fail(f"bit flip at offset {offset} (seed {seed}) was "
                        "silently accepted")

    def test_manifest_matches_the_parser(self, pristine):
        blob, manifest, _ = pristine
        assert manifest["version"] == CHECKPOINT_VERSION
        assert manifest["size"] == len(blob)
        offsets = [s["offset"] for s in manifest["sections"]]
        assert offsets == sorted(offsets)
        first = manifest["sections"][0]
        assert first["offset"] == len(CHECKPOINT_MAGIC) + 16


class TestLegacyV1:
    """The un-sectioned pickle-after-magic layout keeps restoring."""

    def _v1_blob(self, pristine_blob, path_hint="v1"):
        import io

        from repro.engine.live import _parse_container

        _, sections = _parse_container(pristine_blob, path_hint)
        document = {
            "format": _FORMAT_FULL,
            "version": 1,
            "engine": sections["engine"],
            "journal": sections["journal"],
            "estimators": sections["estimators"],
        }
        return CHECKPOINT_MAGIC + pickle.dumps(document)

    def test_v1_restores_bit_identical(self, pristine, tmp_path):
        blob, _, expected = pristine
        path = _damaged(tmp_path, self._v1_blob(blob), "legacy.ckpt")
        engine = LiveEngine.restore(path)
        assert {n: r.estimate for n, r in engine.estimate().items()} == expected
        engine.close()

    def test_truncated_v1_is_typed(self, pristine, tmp_path):
        blob, _, _ = pristine
        path = _damaged(tmp_path, self._v1_blob(blob), "legacy.ckpt")
        truncate_file(path, -20)
        with pytest.raises(CheckpointError, match="failed to deserialize"):
            LiveEngine.restore(path)

    def test_v1_non_mapping_document(self, tmp_path):
        path = _damaged(tmp_path, CHECKPOINT_MAGIC + pickle.dumps([1, 2]),
                        "legacy.ckpt")
        with pytest.raises(CheckpointError, match="not a mapping"):
            LiveEngine.restore(path)

    def test_v1_wrong_format_marker(self, tmp_path):
        document = {"format": "something-else", "version": 1}
        path = _damaged(tmp_path, CHECKPOINT_MAGIC + pickle.dumps(document),
                        "legacy.ckpt")
        with pytest.raises(CheckpointError, match="unknown checkpoint format"):
            LiveEngine.restore(path)

    def test_v1_wrong_document_version(self, tmp_path):
        document = {"format": _FORMAT_FULL, "version": 7}
        path = _damaged(tmp_path, CHECKPOINT_MAGIC + pickle.dumps(document),
                        "legacy.ckpt")
        with pytest.raises(CheckpointError, match="not supported"):
            LiveEngine.restore(path)
