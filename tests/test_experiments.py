"""Smoke tests: every experiment module regenerates its table.

These run the fast configurations; the benchmark suite runs them too
and records the output in EXPERIMENTS.md.  Heavier shape assertions
live here so a regression in an estimator is caught as a failing
experiment, not only as a wrong number in a document.
"""

import pytest

from repro.experiments import e01_sampler_probability
from repro.experiments import e02_three_pass
from repro.experiments import e03_turnstile
from repro.experiments import e04_transform
from repro.experiments import e05_space_scaling
from repro.experiments import e06_ers
from repro.experiments import e07_baselines
from repro.experiments import e08_l0_sampler
from repro.experiments import e09_degeneracy
from repro.experiments import e10_covers
from repro.experiments import e11_stream_models
from repro.experiments import e12_two_pass
from repro.experiments import e13_bounds
from repro.experiments.tables import Table


class TestTable:
    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_everything(self):
        table = Table("title", ["x", "y"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "title" in text and "x" in text and "2.5" in text

    def test_markdown_render(self):
        table = Table("t", ["a"])
        table.add_row("v")
        markdown = table.render_markdown()
        assert "| a |" in markdown
        assert "| v |" in markdown

    def test_column_access(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == ["2", "4"]


@pytest.mark.slow
class TestExperimentShapes:
    def test_e01_ratios_near_one(self):
        table = e01_sampler_probability.run(fast=True, seed=7)
        assert table.rows
        ratios = [float(value) for value in table.column("ratio")]
        assert all(0.7 <= ratio <= 1.3 for ratio in ratios)

    def test_e02_errors_below_epsilon_scale(self):
        table = e02_three_pass.run(fast=True, seed=7)
        assert table.rows
        for row in table.rows:
            epsilon = float(row[table.columns.index("epsilon")])
            mean_error = float(row[table.columns.index("mean_rel_err")])
            assert mean_error <= 1.5 * epsilon
            assert int(row[table.columns.index("passes")]) == 3

    def test_e03_turnstile_tracks_truth(self):
        table = e03_turnstile.run(fast=True, seed=7)
        assert table.rows
        for row in table.rows:
            error = float(row[table.columns.index("turnstile_err")])
            assert error <= 0.5

    def test_e04_substrates_agree(self):
        table = e04_transform.run(fast=True, seed=7)
        assert len(table.rows) == 4
        rates = [float(value) for value in table.column("P(success)")]
        theory = float(table.rows[0][table.columns.index("P(theory)")])
        for rate in rates:
            assert rate == pytest.approx(theory, rel=0.35)

    def test_e05_normalized_budget_flat(self):
        table = e05_space_scaling.run(fast=True, seed=7)
        normalized = [float(v) for v in table.column("k*_normalized")]
        assert normalized
        assert max(normalized) / min(normalized) < 2.5

    def test_e06_ers_pass_budget(self):
        table = e06_ers.run(fast=True, seed=7)
        assert table.rows
        for row in table.rows:
            passes = int(row[table.columns.index("passes")])
            budget = int(row[table.columns.index("pass_budget(5r)")])
            assert passes <= budget

    def test_e07_has_exact_row(self):
        table = e07_baselines.run(fast=True, seed=7)
        algorithms = table.column("algorithm")
        assert "exact-store-all" in algorithms
        exact_row = table.rows[algorithms.index("exact-store-all")]
        assert float(exact_row[table.columns.index("rel_err")]) == 0.0

    def test_e08_success_rate_improves_with_repetitions(self):
        table = e08_l0_sampler.run(fast=True, seed=7)
        rates = [float(v) for v in table.column("success_rate")]
        repetitions = [int(v) for v in table.column("repetitions")]
        ghosts = [int(v) for v in table.column("ghost_answers")]
        # More repetitions at the same workload -> at least as reliable.
        assert rates[1] >= rates[0]
        assert repetitions[1] > repetitions[0]
        assert all(g == 0 for g in ghosts)

    def test_e09_natural_families_low_degeneracy(self):
        table = e09_degeneracy.run(fast=True, seed=7)
        families = table.column("family")
        ratio = [float(v) for v in table.column("lambda/sqrt(m)")]
        for name, value in zip(families, ratio):
            if name.startswith(("ba", "plc", "grid")):
                assert value < 0.5, name

    def test_e10_rho_matches_known(self):
        table = e10_covers.run(fast=True)
        for row in table.rows:
            known = row[table.columns.index("rho(known)")]
            if known:
                lp = float(row[table.columns.index("rho(LP)")])
                assert lp == pytest.approx(float(known))
            cost = float(row[table.columns.index("decomp_cost")])
            lp = float(row[table.columns.index("rho(LP)")])
            assert cost == pytest.approx(lp)

    def test_e11_adversarial_row_breaks(self):
        table = e11_stream_models.run(fast=True, seed=7)
        models = table.column("model")
        errors = [float(v) for v in table.column("rel_err")]
        by_model = dict(zip(models, errors))
        # Promise-respecting rows are accurate; the adversarial row is not.
        assert by_model["random order"] < 0.5
        assert by_model["adjacency list"] < 0.5
        assert by_model["adversarial (promise broken)"] > 0.5

    def test_e12_two_pass_uses_fewer_passes(self):
        table = e12_two_pass.run(fast=True, seed=7)
        two_passes = table.column("2p passes")
        three_passes = table.column("3p passes")
        assert all(p in ("2", "—") for p in two_passes)
        assert all(p == "3" for p in three_passes)
        # The odd-cycle row must be rejected.
        assert any("rejected" in cell for cell in table.column("2p est (err)"))

    def test_e13_agm_holds_on_every_row(self):
        table = e13_bounds.run(fast=True, seed=7)
        ratios = [float(v) for v in table.column("AGM ratio")]
        assert all(ratio <= 1.0 + 1e-9 for ratio in ratios)
        # Cover chain: rho <= beta <= |E(H)| row-wise.
        rhos = [float(v) for v in table.column("rho")]
        betas = [float(v) for v in table.column("beta")]
        sizes = [float(v) for v in table.column("|E(H)|")]
        for rho, beta, size in zip(rhos, betas, sizes):
            assert rho <= beta + 1e-9 <= size + 1e-9


class TestSlidingWindowExperiment:
    def test_e16_probes_track_exact_and_restore_agrees(self):
        from repro.experiments import e16_sliding_window

        table = e16_sliding_window.run(fast=True, seed=7)
        assert len(table.raw_rows) >= 3
        # The snapshot/restore drill halfway through must be invisible:
        # every probed estimate of the restored engine equals the
        # uninterrupted engine's, bit for bit.
        assert all(flag == "yes" for flag in table.column("restored =="))
        # The exact fork reports the true count of the current window
        # graph, which shrinks and grows as blocks expire.
        window_sizes = [int(value) for value in table.column("window m")]
        assert max(window_sizes) > min(window_sizes)

    def test_e16_registered_with_runner(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "e16" in {name for name, _ in EXPERIMENTS}


class TestWorldsExperiment:
    @pytest.mark.slow
    def test_e17_sweep_shape_and_cross_scenario_truth(self):
        from repro.experiments import e17_worlds

        table = e17_worlds.run(fast=True, seed=2022)
        # 4 families x (insertion x 2 estimators + deletion x turnstile)
        # x 2 budgets.
        assert len(table.raw_rows) == 4 * 3 * 2
        # Scenarios are seeded off the family alone, so both scenarios
        # of a family report the identical base graph (m and truth).
        by_family = {}
        for row in table.raw_rows:
            family = row[table.columns.index("family")]
            m = row[table.columns.index("m")]
            truth = row[table.columns.index("truth")]
            by_family.setdefault(family, set()).add((m, truth))
        assert len(by_family) == 4
        for family, shapes in by_family.items():
            assert len(shapes) == 1, (family, shapes)
        # Every cell streamed through a metered cache.
        peaks = [float(v) for v in table.column("peak KiB")]
        assert all(peak > 0 for peak in peaks)

    def test_e17_registered_with_runner(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "e17" in {name for name, _ in EXPERIMENTS}
