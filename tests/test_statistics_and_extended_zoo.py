"""Tests for graph statistics and the extended pattern zoo."""

import math

import pytest

from repro.exact.subgraphs import count_subgraphs
from repro.graph import generators as gen
from repro.graph.statistics import (
    agm_bound,
    degree_histogram,
    degree_moment,
    heavy_vertices,
    profile,
    wedge_count,
)
from repro.patterns import pattern as pattern_zoo
from repro.patterns.edge_cover import fractional_edge_cover_number


class TestStatistics:
    def test_wedge_count_matches_p3(self):
        graph = gen.karate_club()
        assert wedge_count(graph) == count_subgraphs(graph, pattern_zoo.path(3))

    def test_degree_histogram_sums_to_n(self):
        graph = gen.gnp(30, 0.2, rng=1)
        histogram = degree_histogram(graph)
        assert sum(histogram.values()) == graph.n
        assert sum(d * c for d, c in histogram.items()) == 2 * graph.m

    def test_degree_moment(self):
        graph = gen.star_graph(5)
        assert degree_moment(graph, 1) == 2 * graph.m
        assert degree_moment(graph, 2) == 25 + 5

    def test_agm_bound_dominates_truth(self):
        graph = gen.karate_club()
        for pattern in (pattern_zoo.triangle(), pattern_zoo.cycle(4), pattern_zoo.clique(4)):
            truth = count_subgraphs(graph, pattern)
            assert truth <= agm_bound(graph, pattern.rho()) + 1e-9

    def test_heavy_vertices_threshold(self):
        graph = gen.star_graph(60)  # hub degree 60 >> sqrt(120)
        assert heavy_vertices(graph) == [0]
        assert heavy_vertices(gen.cycle_graph(10)) == []

    def test_profile_fields(self):
        graph = gen.karate_club()
        p = profile(graph)
        assert p.n == 34 and p.m == 78
        assert p.max_degree == 17
        assert p.degeneracy == 4
        assert p.mean_degree == pytest.approx(2 * 78 / 34)
        assert "lambda=4" in p.describe()


class TestExtendedZoo:
    def test_known_rho_values(self):
        for pattern in pattern_zoo.extended_zoo():
            known = pattern_zoo.KNOWN_RHO.get(pattern.name)
            if known is not None:
                assert pattern.rho() == pytest.approx(known), pattern.name

    def test_decomposition_cost_equals_rho(self):
        for pattern in pattern_zoo.extended_zoo():
            decomposition = pattern.decomposition()
            assert float(decomposition.cost) == pytest.approx(pattern.rho()), pattern.name

    def test_bull_structure(self):
        bull = pattern_zoo.bull()
        assert bull.num_vertices == 5 and bull.num_edges == 5
        assert bull.rho() == 3.0  # horns force integral pendant edges

    def test_bowtie_decomposes_as_triangle_plus_edge(self):
        bowtie = pattern_zoo.bowtie()
        assert bowtie.decomposition().type_signature() == ((3,), (1,))

    def test_house_decomposes_as_five_cycle(self):
        house = pattern_zoo.house()
        assert house.decomposition().type_signature() == ((5,), ())

    def test_c6_family_count(self):
        # C6 has 2 perfect matchings; 3 positions (3! orders) and 2^3
        # orientations -> 2 * 6 * 8 = 96.
        assert pattern_zoo.cycle(6).family_count() == 96

    def test_extended_counts_on_small_host(self):
        host = gen.gnp(10, 0.5, rng=9)
        for pattern in (pattern_zoo.bull(), pattern_zoo.house(), pattern_zoo.kite()):
            count = count_subgraphs(host, pattern)
            assert count >= 0
            # cross-check with brute force over vertex subsets
            import itertools

            from repro.patterns.isomorphism import enumerate_spanning_copies

            brute = 0
            for subset in itertools.combinations(range(host.n), 5):
                sub, _ = host.subgraph(subset)
                brute += len(
                    enumerate_spanning_copies(sub, pattern.graph, list(range(5)))
                )
            assert count == brute, pattern.name

    def test_bowtie_sampler_probability(self):
        """End-to-end check on a 6-vertex bowtie-rich host."""
        from repro.streaming.three_pass import sample_copies_stream
        from repro.streams.stream import insertion_stream

        host = gen.gnp(10, 0.55, rng=12)
        pattern = pattern_zoo.bowtie()
        truth = count_subgraphs(host, pattern)
        if truth == 0:
            pytest.skip("no bowties in random draw")
        stream = insertion_stream(host, rng=13)
        outputs = sample_copies_stream(stream, pattern, instances=30000, rng=14)
        successes = sum(1 for output in outputs if output is not None)
        theory = truth / (2.0 * host.m) ** pattern.rho()
        rate = successes / 30000
        sigma = math.sqrt(theory * (1 - theory) / 30000)
        assert abs(rate - theory) <= max(5 * sigma, 0.15 * theory)
