"""Fault-injection drills (:mod:`repro.faults`, :mod:`repro.utils.retry`).

Every drill here is deterministic: the fault plan's seed and rules are
the only inputs, so a failing drill reproduces from its parameters
alone.  The headline contracts:

* **degraded-K equality** — killing a worker mid-run drops exactly its
  shard; every surviving estimator is bit-equal to the same-named copy
  of an uninterrupted run (the copies are independent, so a dead
  sibling cannot perturb them);
* **respawn equality** — when the live engine respawns a dead worker
  and replays the journal, the replacement's estimates are bit-equal
  to an uninterrupted run (element order is all that matters);
* **transient-vs-deterministic** — injected ``EIO`` weather under the
  retry budget is invisible; past the budget it surfaces unchanged,
  and library-diagnosed errors are never retried at all;
* **delta-chain recovery** — a torn delta tip is dropped with a
  warning, restore lands on the longest valid prefix, and re-feeding
  the remainder reconverges bit-equal to a run that never tore.
"""

import errno
import os
import pickle
import random

import pytest

from repro import generators, insertion_stream, patterns
from repro.engine import EstimatorSpec, LiveEngine, checkpoint_manifest
from repro.engine.parallel import (
    build_triest,
    leaked_shm_segments,
    run_parallel_engine,
    run_process_engine,
)
from repro.errors import (
    CheckpointError,
    EngineError,
    FaultInjected,
    WorkerLossError,
)
from repro.faults import (
    FaultPlan,
    FaultRule,
    WorkerKilled,
    activate,
    active_plan,
    append_garbage,
    fire,
    flip_bit,
    overwrite_bytes,
    truncate_file,
)
from repro.utils.retry import RetryPolicy, retry_call


def _insertion_fixture():
    graph = generators.barabasi_albert(120, 4, rng=11)
    return graph, insertion_stream(graph, rng=12)


def _triest_specs(copies=4, capacity=80, base_rng=31):
    return [
        EstimatorSpec(
            name=f"t{index}",
            factory=build_triest,
            kwargs=dict(capacity=capacity, rng=base_rng + index,
                        name=f"t{index}"),
        )
        for index in range(copies)
    ]


def _fgp_specs(stream, copies=4, trials=20, base_rng=200):
    from repro.engine.estimators import fgp_insertion_estimator

    pattern = patterns.triangle()
    return [
        EstimatorSpec(
            name=f"copy-{index}",
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=trials,
                        rng=base_rng + index, name=f"copy-{index}"),
        )
        for index in range(copies)
    ]


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(FaultInjected):
            FaultRule(site="disk.write", action="melt")
        with pytest.raises(FaultInjected):
            FaultRule(site="disk.write", action="io_error", nth=0)
        with pytest.raises(FaultInjected):
            FaultRule(site="disk.write", action="io_error", count=0)

    def test_io_error_window(self):
        plan = FaultPlan(seed=1).fail_disk_write(nth=2, count=2)
        plan.fire("disk.write")  # call 1: clean
        for _ in range(2):  # calls 2 and 3: the window
            with pytest.raises(OSError) as info:
                plan.fire("disk.write")
            assert info.value.errno == errno.EIO
        plan.fire("disk.write")  # call 4: clean again

    def test_raise_action_and_site_isolation(self):
        plan = FaultPlan(seed=2, rules=[FaultRule(site="x", action="raise")])
        plan.fire("y")  # different site: not counted
        with pytest.raises(FaultInjected):
            plan.fire("x")

    def test_worker_filter(self):
        plan = FaultPlan(seed=3).fail_shm_attach(nth=1)
        plan.rules[0] = FaultRule(
            site="shm.attach", action="io_error", nth=1, worker=1
        )
        plan.fire("shm.attach", worker=0)  # not worker 1: ignored
        with pytest.raises(OSError):
            plan.fire("shm.attach", worker=1)

    def test_pickle_resets_counters(self):
        plan = FaultPlan(seed=4).fail_disk_write(nth=1)
        with pytest.raises(OSError):
            plan.fire("disk.write")
        plan.fire("disk.write")  # counter moved past the window
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules
        with pytest.raises(OSError):
            clone.fire("disk.write")  # fresh process counts from zero

    def test_rng_is_seed_and_label_deterministic(self):
        a = FaultPlan(seed=7).rng("offsets")
        b = FaultPlan(seed=7).rng("offsets")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]
        assert FaultPlan(seed=7).rng("other").random() != \
            FaultPlan(seed=7).rng("offsets").random()
        assert FaultPlan(seed=8).rng("offsets").random() != \
            FaultPlan(seed=7).rng("offsets").random()

    def test_activate_scoping(self):
        assert active_plan() is None
        plan = FaultPlan(seed=5).fail_disk_write(nth=1)
        with activate(plan):
            assert active_plan() is plan
            with pytest.raises(OSError):
                fire("disk.write")
        assert active_plan() is None
        fire("disk.write")  # no active plan: a no-op

    def test_fire_with_explicit_plan_beats_global(self):
        explicit = FaultPlan(seed=6).fail_disk_write(nth=1)
        with activate(FaultPlan(seed=6)):
            with pytest.raises(OSError):
                fire("disk.write", plan=explicit)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_deterministic_jitter_schedule(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=1.0)
        first = list(policy.delays(random.Random(17)))
        second = list(policy.delays(random.Random(17)))
        assert first == second
        assert len(first) == 4
        assert all(d >= 0 for d in first)

    def test_succeeds_within_budget(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "weather")
            return "ok"

        result = retry_call(
            flaky, RetryPolicy(attempts=3), seed=0, sleep=lambda d: None
        )
        assert result == "ok"
        assert len(calls) == 3

    def test_exhaustion_reraises_last_error(self):
        def doomed():
            raise OSError(errno.ENOSPC, "still full")

        with pytest.raises(OSError) as info:
            retry_call(doomed, RetryPolicy(attempts=3), seed=0,
                       sleep=lambda d: None)
        assert info.value.errno == errno.ENOSPC

    def test_never_retries_repro_errors(self):
        calls = []

        def diagnosed():
            calls.append(1)
            raise CheckpointError("a deterministic diagnosis")

        with pytest.raises(CheckpointError):
            retry_call(diagnosed, RetryPolicy(attempts=5),
                       retry_on=(Exception,), sleep=lambda d: None)
        assert len(calls) == 1

    def test_on_retry_callback(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise OSError(errno.EIO, "once")
            return 42

        retry_call(flaky, RetryPolicy(attempts=2), seed=0,
                   sleep=lambda d: None,
                   on_retry=lambda attempt, err: seen.append((attempt, err)))
        assert len(seen) == 1
        assert seen[0][0] == 1
        assert isinstance(seen[0][1], OSError)


class TestCorruptionHelpers:
    def test_truncate_negative_counts_from_end(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789")
        assert truncate_file(path, -3) == 7
        assert path.read_bytes() == b"0123456"
        assert truncate_file(path, 100) == 7  # never grows

    def test_flip_bit_is_an_involution(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abcd")
        flip_bit(path, 1, bit=3)
        assert path.read_bytes() != b"abcd"
        flip_bit(path, 1, bit=3)
        assert path.read_bytes() == b"abcd"
        with pytest.raises(ValueError):
            flip_bit(path, 99)

    def test_overwrite_and_append(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abcd")
        overwrite_bytes(path, -2, b"XY")
        assert path.read_bytes() == b"abXY"
        garbage = append_garbage(path, 5, seed=9)
        assert append_garbage(path, 5, seed=9) == garbage
        assert path.read_bytes() == b"abXY" + garbage + garbage


class TestParallelWorkerLoss:
    """run_parallel_engine under injected worker death (thread tier)."""

    def _run(self, stream, specs, **kwargs):
        return run_parallel_engine(
            stream, specs, backend="thread", workers=4, batch_size=64,
            **kwargs,
        )

    def test_degrade_drops_only_the_dead_shard(self):
        _, stream = _insertion_fixture()
        specs = _triest_specs()
        reference = self._run(stream, [s for s in specs])
        plan = FaultPlan(seed=41).kill_worker(2, nth_batch=2)
        degraded = self._run(
            stream, specs, on_worker_loss="degrade", fault_plan=plan
        )
        assert degraded.degraded
        assert degraded.lost  # exactly the dead worker's shard
        survivors = [s.name for s in specs if s.name not in degraded.lost]
        assert survivors
        for name in survivors:
            assert degraded[name].estimate == reference[name].estimate
            assert degraded[name].details == reference[name].details
        for name in degraded.lost:
            assert name not in degraded.results

    def test_degrade_is_deterministic(self):
        _, stream = _insertion_fixture()
        runs = []
        for _ in range(2):
            plan = FaultPlan(seed=42).kill_worker(1, nth_batch=3)
            report = self._run(
                stream, _triest_specs(), on_worker_loss="degrade",
                fault_plan=plan,
            )
            runs.append((report.lost,
                         {n: r.estimate for n, r in report.results.items()}))
        assert runs[0] == runs[1]

    def test_abort_raises_worker_loss_error(self):
        _, stream = _insertion_fixture()
        plan = FaultPlan(seed=43).kill_worker(1, nth_batch=2)
        with pytest.raises(WorkerLossError) as info:
            self._run(stream, _triest_specs(), fault_plan=plan)
        assert 1 in info.value.worker_ids

    def test_wedge_is_detected_and_degraded(self):
        _, stream = _insertion_fixture()
        reference = self._run(stream, _triest_specs())
        plan = FaultPlan(seed=44).wedge_worker(3, nth_batch=2, seconds=120.0)
        report = run_parallel_engine(
            stream, _triest_specs(), backend="thread", workers=4,
            batch_size=16, reply_timeout=1.0, on_worker_loss="degrade",
            fault_plan=plan,
        )
        assert report.degraded
        for name, result in report.results.items():
            assert result.estimate == reference[name].estimate

    def test_invalid_policy_rejected(self):
        _, stream = _insertion_fixture()
        with pytest.raises(EngineError):
            run_parallel_engine(stream, _triest_specs(),
                                backend="thread", on_worker_loss="panic")


class TestProcessWorkerLoss:
    """One real-SIGKILL drill through the process pool."""

    def test_sigkill_degrades_and_leaks_nothing(self):
        _, stream = _insertion_fixture()
        specs = _triest_specs(copies=2)
        reference = run_parallel_engine(
            stream, [s for s in specs], backend="thread", workers=2,
            batch_size=64,
        )
        plan = FaultPlan(seed=45).kill_worker(0, nth_batch=2)
        report = run_process_engine(
            stream, specs, workers=2, batch_size=64,
            on_worker_loss="degrade", fault_plan=plan,
        )
        assert report.degraded
        assert report.lost == ("t0",)
        assert report["t1"].estimate == reference["t1"].estimate
        assert leaked_shm_segments() == []

    def test_transient_shm_attach_failures_are_retried(self):
        _, stream = _insertion_fixture()
        specs = _triest_specs(copies=2)
        reference = run_parallel_engine(
            stream, [s for s in specs], backend="thread", workers=2,
            batch_size=64,
        )
        plan = FaultPlan(seed=46).fail_shm_attach(nth=1, count=2)
        report = run_process_engine(
            stream, specs, workers=2, batch_size=64, fault_plan=plan
        )
        assert not report.degraded
        for name in ("t0", "t1"):
            assert report[name].estimate == reference[name].estimate
        assert leaked_shm_segments() == []


class TestLiveEngineRecovery:
    """LiveEngine worker loss: respawn-and-replay, then degrade."""

    def _reference(self, stream, specs):
        engine = LiveEngine(n=stream.n)
        engine.register_all([EstimatorSpec(s.name, s.factory, dict(s.kwargs))
                             for s in specs])
        u, v, d = stream.columns()
        engine.feed((u, v, d))
        results = engine.estimate()
        engine.close()
        return results

    def _feed_chunks(self, engine, stream, chunk=64):
        u, v, d = stream.columns()
        for start in range(0, len(u), chunk):
            engine.feed((u[start:start + chunk], v[start:start + chunk],
                         d[start:start + chunk]))

    def test_respawn_replays_to_bit_equality(self):
        _, stream = _insertion_fixture()
        specs = _triest_specs()
        reference = self._reference(stream, specs)
        plan = FaultPlan(seed=51).kill_worker(2, nth_batch=3)
        engine = LiveEngine(
            n=stream.n, backend="thread", workers=4, batch_size=64,
            respawn_budget=2, fault_plan=plan,
        )
        engine.register_all(specs)
        self._feed_chunks(engine, stream)
        results = engine.estimate()
        assert not engine.degraded
        assert engine.respawns_left == 1
        for name, result in reference.items():
            assert results[name].estimate == result.estimate
            assert results[name].details == result.details
        engine.close()

    def test_exhausted_budget_degrades_to_survivors(self):
        _, stream = _insertion_fixture()
        specs = _triest_specs()
        reference = self._reference(stream, specs)
        plan = FaultPlan(seed=52).kill_worker(2, nth_batch=3)
        engine = LiveEngine(
            n=stream.n, backend="thread", workers=4, batch_size=64,
            respawn_budget=0, fault_plan=plan,
        )
        engine.register_all(specs)
        self._feed_chunks(engine, stream)
        # A silent thread death is detected lazily, at the next state
        # gather — estimate() both finds the body and degrades.
        results = engine.estimate()
        assert engine.degraded
        assert engine.lost_estimators == ["t2"]
        assert engine.surviving_copies == 3
        assert set(results) == {"t0", "t1", "t3"}
        for name, result in results.items():
            assert result.estimate == reference[name].estimate
        with pytest.raises(EngineError):
            engine.estimate(["t2"])
        status = engine.status()
        assert status["degraded"] is True
        assert status["lost"] == ["t2"]
        assert status["surviving_copies"] == 3
        engine.close()

    def test_abort_policy_raises(self):
        _, stream = _insertion_fixture()
        plan = FaultPlan(seed=53).kill_worker(1, nth_batch=2)
        engine = LiveEngine(
            n=stream.n, backend="thread", workers=4, batch_size=64,
            on_worker_loss="abort", fault_plan=plan,
        )
        engine.register_all(_triest_specs())
        with pytest.raises(WorkerLossError):
            self._feed_chunks(engine, stream)
            engine.estimate()  # detection is lazy; the gather finds the body
        engine.close()

    def test_degraded_snapshot_round_trips_lost_names(self, tmp_path):
        _, stream = _insertion_fixture()
        plan = FaultPlan(seed=54).kill_worker(0, nth_batch=2)
        engine = LiveEngine(
            n=stream.n, backend="thread", workers=4, batch_size=64,
            respawn_budget=0, fault_plan=plan,
        )
        engine.register_all(_triest_specs())
        self._feed_chunks(engine, stream)
        expected = {n: r.estimate for n, r in engine.estimate().items()}
        assert engine.degraded
        lost = engine.lost_estimators
        path = str(tmp_path / "degraded.ckpt")
        engine.snapshot(path)
        engine.close()
        restored = LiveEngine.restore(path)
        assert restored.degraded
        assert restored.lost_estimators == lost
        assert {n: r.estimate for n, r in restored.estimate().items()} == expected
        restored.close()


class TestDiskWriteRetry:
    """Injected EIO under/over the retry budget, snapshot and .reb paths."""

    def _small_engine(self, stream):
        engine = LiveEngine(n=stream.n)
        engine.register_all(_triest_specs(copies=2))
        u, v, d = stream.columns()
        engine.feed((u[:100], v[:100], d[:100]))
        return engine

    def test_snapshot_survives_two_transient_failures(self, tmp_path):
        _, stream = _insertion_fixture()
        engine = self._small_engine(stream)
        path = str(tmp_path / "ckpt.bin")
        with activate(FaultPlan(seed=61).fail_disk_write(nth=1, count=2)):
            engine.snapshot(path)
        restored = LiveEngine.restore(path)
        assert restored.elements == engine.elements
        engine.close()
        restored.close()

    def test_snapshot_fails_past_the_budget(self, tmp_path):
        _, stream = _insertion_fixture()
        engine = self._small_engine(stream)
        path = str(tmp_path / "ckpt.bin")
        with activate(FaultPlan(seed=62).fail_disk_write(nth=1, count=3)):
            with pytest.raises(OSError):
                engine.snapshot(path)
        assert not os.path.exists(path)  # never a half-written target
        assert not os.path.exists(path + ".tmp")
        engine.close()

    def test_binary_writer_publish_is_retried(self, tmp_path):
        import numpy as np

        from repro.streams.datasets import BinaryUpdateWriter, DiskEdgeStream

        path = str(tmp_path / "updates.reb")
        with activate(FaultPlan(seed=63).fail_disk_write(nth=1, count=2)):
            writer = BinaryUpdateWriter(path, n=10)
            writer.append(np.array([0, 1]), np.array([2, 3]))
            writer.close()
        stream = DiskEdgeStream(path)
        assert stream.length == 2
        assert not os.path.exists(path + ".part")

    def test_binary_writer_publish_fails_past_budget(self, tmp_path):
        import numpy as np

        from repro.streams.datasets import BinaryUpdateWriter

        path = str(tmp_path / "updates.reb")
        with activate(FaultPlan(seed=64).fail_disk_write(nth=1, count=3)):
            writer = BinaryUpdateWriter(path, n=10)
            writer.append(np.array([0, 1]), np.array([2, 3]))
            with pytest.raises(OSError):
                writer.close()
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".part")


class TestDeltaCheckpoints:
    """Base + journal-tail snapshots: chaining, rotation, torn-tip fallback."""

    def _engine(self, stream, copies=3):
        engine = LiveEngine(n=stream.n)
        engine.register_all(_fgp_specs(stream, copies=copies))
        return engine

    def _estimates(self, engine):
        return {n: r.estimate for n, r in engine.estimate().items()}

    def test_delta_chain_restores_bit_identical(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        cuts = [len(u) // 4, len(u) // 2, 3 * len(u) // 4, len(u)]
        path = str(tmp_path / "live.ckpt")

        engine = self._engine(stream)
        previous = 0
        written = []
        for cut in cuts:
            engine.feed((u[previous:cut], v[previous:cut], d[previous:cut]))
            written.append(engine.snapshot(path, mode="delta"))
            previous = cut
        expected = self._estimates(engine)
        engine.close()

        assert written[0] == path  # no base yet: the first write is full
        assert written[1:] == [f"{path}.delta.{i:05d}" for i in range(3)]
        sizes = [os.path.getsize(p) for p in written]
        assert max(sizes[1:]) < sizes[0]  # tails cost O(updates), not O(state)

        restored = LiveEngine.restore(path)
        assert restored.restore_info == {
            "path": path, "deltas_applied": 3, "fell_back": False,
            "dropped": [],
        }
        assert restored.elements == len(u)
        assert self._estimates(restored) == expected
        restored.close()

    def test_torn_tip_falls_back_then_reconverges(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        half, rest = len(u) // 2, 3 * len(u) // 4
        path = str(tmp_path / "live.ckpt")

        engine = self._engine(stream)
        engine.feed((u[:half], v[:half], d[:half]))
        engine.snapshot(path, mode="delta")  # full base
        engine.feed((u[half:rest], v[half:rest], d[half:rest]))
        tip = engine.snapshot(path, mode="delta")
        engine.feed((u[rest:], v[rest:], d[rest:]))
        expected = self._estimates(engine)
        engine.close()

        truncate_file(tip, -5)
        restored = LiveEngine.restore(path)
        assert restored.restore_info["fell_back"]
        assert restored.restore_info["dropped"] == [tip]
        assert restored.restore_info["deltas_applied"] == 0
        assert restored.elements == half  # the last valid point
        restored.feed((u[half:], v[half:], d[half:]))
        assert self._estimates(restored) == expected
        # The next delta snapshot overwrites the torn tip in place.
        assert restored.snapshot(path, mode="delta") == tip
        reread = LiveEngine.restore(path)
        assert not reread.restore_info["fell_back"]
        assert self._estimates(reread) == expected
        reread.close()
        restored.close()

    def test_corrupt_middle_delta_drops_the_suffix(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        path = str(tmp_path / "live.ckpt")
        engine = self._engine(stream)
        previous = 0
        written = []
        for cut in (len(u) // 4, len(u) // 2, 3 * len(u) // 4):
            engine.feed((u[previous:cut], v[previous:cut], d[previous:cut]))
            written.append(engine.snapshot(path, mode="delta"))
            previous = cut
        engine.close()

        flip_bit(written[1], -10)  # corrupt delta 0 of the two
        restored = LiveEngine.restore(path)
        assert restored.restore_info["deltas_applied"] == 0
        assert restored.restore_info["dropped"] == written[1:]
        assert restored.elements == len(u) // 4
        restored.close()

    def test_rotation_writes_a_fresh_full_base(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        path = str(tmp_path / "live.ckpt")
        engine = self._engine(stream, copies=2)
        chunk = len(u) // 5
        written = []
        for start in range(0, chunk * 5, chunk):
            engine.feed((u[start:start + chunk], v[start:start + chunk],
                         d[start:start + chunk]))
            written.append(engine.snapshot(path, mode="delta", max_deltas=2))
        expected = self._estimates(engine)
        engine.close()

        # full, delta 0, delta 1, rotated full, delta 0 (fresh chain)
        assert written[0] == path
        assert written[1] == f"{path}.delta.00000"
        assert written[2] == f"{path}.delta.00001"
        assert written[3] == path
        assert written[4] == f"{path}.delta.00000"
        assert not os.path.exists(f"{path}.delta.00001")  # pruned on rotation

        restored = LiveEngine.restore(path)
        assert restored.restore_info["deltas_applied"] == 1
        assert self._estimates(restored) == expected
        restored.close()

    def test_delta_snapshot_without_new_updates_is_a_noop(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        path = str(tmp_path / "live.ckpt")
        engine = self._engine(stream, copies=2)
        engine.feed((u[:50], v[:50], d[:50]))
        assert engine.snapshot(path, mode="delta") == path
        assert engine.snapshot(path, mode="delta") == path
        assert not os.path.exists(f"{path}.delta.00000")
        engine.close()

    def test_delta_file_rejected_as_base(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        path = str(tmp_path / "live.ckpt")
        engine = self._engine(stream, copies=2)
        engine.feed((u[:50], v[:50], d[:50]))
        engine.snapshot(path, mode="delta")
        engine.feed((u[50:100], v[50:100], d[50:100]))
        tip = engine.snapshot(path, mode="delta")
        engine.close()
        with pytest.raises(CheckpointError, match="delta"):
            LiveEngine.restore(tip)

    def test_mode_validation(self, tmp_path):
        _, stream = _insertion_fixture()
        engine = self._engine(stream, copies=2)
        with pytest.raises(CheckpointError):
            engine.snapshot(str(tmp_path / "x"), mode="increment")
        with pytest.raises(CheckpointError):
            engine.snapshot(str(tmp_path / "x"), mode="delta", max_deltas=0)
        engine.close()

    def test_manifest_exposes_the_byte_layout(self, tmp_path):
        _, stream = _insertion_fixture()
        u, v, d = stream.columns()
        path = str(tmp_path / "live.ckpt")
        engine = self._engine(stream, copies=2)
        engine.feed((u[:50], v[:50], d[:50]))
        engine.snapshot(path)
        engine.close()
        manifest = checkpoint_manifest(path)
        assert manifest["version"] == 2
        assert [s["name"] for s in manifest["sections"]] == [
            "engine", "journal", "estimators",
        ]
        last = manifest["sections"][-1]
        assert last["payload_offset"] + last["payload_length"] == \
            manifest["size"]


class TestDegradedQueries:
    """Queries against lost estimators refuse loudly, never partially.

    Regression tier for the degraded-path sweep: before it, an
    ``estimate(names=...)`` whose loss was discovered *during* the
    state gather silently returned a partial (or empty) result dict,
    and a fully degraded engine produced estimate dicts that blew up
    downstream median aggregation with a bare ``StatisticsError``.
    """

    def _feed_all(self, engine, stream, chunk=64):
        u, v, d = stream.columns()
        for start in range(0, len(u), chunk):
            engine.feed((u[start:start + chunk], v[start:start + chunk],
                         d[start:start + chunk]))

    def _engine(self, stream, plan):
        engine = LiveEngine(
            n=stream.n, backend="thread", workers=4, batch_size=64,
            respawn_budget=0, fault_plan=plan,
        )
        engine.register_all(_triest_specs())
        return engine

    def test_every_copy_lost_raises_naming_all(self):
        _, stream = _insertion_fixture()
        plan = FaultPlan(seed=61)
        for worker in range(4):
            plan = plan.kill_worker(worker, nth_batch=2)
        engine = self._engine(stream, plan)
        self._feed_all(engine, stream)
        with pytest.raises(EngineError, match="t0, t1, t2, t3"):
            engine.estimate()
        assert engine.degraded
        assert engine.lost_estimators == ["t0", "t1", "t2", "t3"]
        assert engine.surviving_copies == 0
        # The refusal is stable: asking again refuses the same way
        # instead of tripping on drained internal state.
        with pytest.raises(EngineError,
                           match="every (requested|registered) estimator"):
            engine.estimate()
        engine.close()

    def test_loss_discovered_mid_gather_refuses_partial_result(self):
        _, stream = _insertion_fixture()
        plan = FaultPlan(seed=62).kill_worker(2, nth_batch=3)
        engine = self._engine(stream, plan)
        self._feed_all(engine, stream)
        # The thread died silently mid-feed; this estimate() is the
        # FIRST gather, so the loss surfaces inside it — the old code
        # handed back {"t1": ...} and dropped t2 on the floor.
        with pytest.raises(EngineError, match="t2"):
            engine.estimate(["t1", "t2"])
        # Survivors stay queryable after the refusal (non-destructive).
        result = engine.estimate(["t1"])
        assert set(result) == {"t1"}
        engine.close()

    def test_explicit_request_for_known_lost_copy_names_it(self):
        _, stream = _insertion_fixture()
        plan = FaultPlan(seed=63).kill_worker(1, nth_batch=3)
        engine = self._engine(stream, plan)
        self._feed_all(engine, stream)
        engine.estimate()  # detect the body; engine now degraded
        assert engine.lost_estimators == ["t1"]
        with pytest.raises(EngineError, match="'t1'"):
            engine.estimate(["t1"])
        engine.close()

    def test_median_estimate_guard(self):
        from repro.engine import median_estimate
        from repro.errors import EstimationError

        _, stream = _insertion_fixture()
        engine = LiveEngine(n=stream.n)
        engine.register_all(_triest_specs(copies=3))
        u, v, d = stream.columns()
        engine.feed((u, v, d))
        import statistics

        results = engine.estimate()
        assert median_estimate(results) == statistics.median(
            r.estimate for r in results.values()
        )
        with pytest.raises(EstimationError, match="fully degraded"):
            median_estimate({})
        engine.close()
