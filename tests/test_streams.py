"""Tests for the stream substrate."""

import pytest

from repro.errors import StreamError
from repro.graph import generators as gen
from repro.streams.generators import (
    adversarial_order_stream,
    concatenate_streams,
    split_substreams,
    stream_from_graph,
    turnstile_churn_stream,
)
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream, Update, insertion_stream, turnstile_stream


class TestUpdate:
    def test_normalized_edge(self):
        assert Update(5, 2).edge == (2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(StreamError):
            Update(1, 1)

    def test_bad_delta_rejected(self):
        with pytest.raises(StreamError):
            Update(0, 1, 2)

    def test_is_insertion(self):
        assert Update(0, 1, 1).is_insertion
        assert not Update(0, 1, -1).is_insertion


class TestEdgeStreamValidation:
    def test_deletion_in_insertion_only_rejected(self):
        with pytest.raises(StreamError):
            EdgeStream(3, [Update(0, 1, 1), Update(0, 1, -1)])

    def test_delete_absent_edge_rejected(self):
        with pytest.raises(StreamError):
            EdgeStream(3, [Update(0, 1, -1)], allow_deletions=True)

    def test_duplicate_insertion_rejected(self):
        with pytest.raises(StreamError):
            EdgeStream(3, [Update(0, 1), Update(1, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(StreamError):
            EdgeStream(2, [Update(0, 5)])

    def test_insert_delete_insert_is_valid(self):
        stream = EdgeStream(
            3,
            [Update(0, 1, 1), Update(0, 1, -1), Update(0, 1, 1)],
            allow_deletions=True,
        )
        assert stream.net_edge_count == 1


class TestEdgeStreamBehavior:
    def test_pass_counting(self):
        stream = insertion_stream(gen.path_graph(5), rng=1)
        assert stream.passes_used == 0
        list(stream.updates())
        list(stream.updates())
        assert stream.passes_used == 2
        stream.reset_pass_count()
        assert stream.passes_used == 0

    def test_final_graph_roundtrip(self):
        graph = gen.gnp(20, 0.3, rng=7)
        stream = insertion_stream(graph, rng=9)
        assert stream.final_graph() == graph

    def test_turnstile_final_graph(self):
        stream = turnstile_stream(
            4, [(0, 1, 1), (1, 2, 1), (0, 1, -1), (2, 3, 1)]
        )
        final = stream.final_graph()
        assert final.m == 2
        assert final.has_edge(1, 2)
        assert final.has_edge(2, 3)
        assert not final.has_edge(0, 1)

    def test_length_counts_all_updates(self):
        stream = turnstile_stream(3, [(0, 1, 1), (0, 1, -1)])
        assert stream.length == 2
        assert stream.net_edge_count == 0


class TestStreamBuilders:
    def test_shuffle_is_permutation(self):
        graph = gen.gnp(15, 0.4, rng=3)
        stream = stream_from_graph(graph, rng=5, order="shuffled")
        assert stream.final_graph() == graph
        assert stream.length == graph.m

    def test_sorted_order(self):
        graph = gen.gnp(10, 0.5, rng=3)
        stream = stream_from_graph(graph, order="sorted")
        edges = [u.edge for u in stream.updates()]
        assert edges == sorted(edges)

    def test_unknown_order_rejected(self):
        with pytest.raises(StreamError):
            stream_from_graph(gen.path_graph(3), order="bogus")

    def test_adversarial_order_final_graph(self):
        graph = gen.barabasi_albert(50, 3, rng=2)
        stream = adversarial_order_stream(graph)
        assert stream.final_graph() == graph

    def test_churn_stream_final_graph_equals_reference(self):
        graph = gen.karate_club()
        for interleave in (True, False):
            stream = turnstile_churn_stream(graph, 25, rng=11, interleave=interleave)
            assert stream.final_graph() == graph
            assert stream.length == graph.m + 2 * 25

    def test_churn_capacity_guard(self):
        graph = gen.complete_graph(4)  # complement empty
        with pytest.raises(StreamError):
            turnstile_churn_stream(graph, 1, rng=1)

    def test_split_substreams_partition(self):
        graph = gen.gnp(25, 0.3, rng=13)
        stream = insertion_stream(graph, rng=14)
        parts = split_substreams(stream, 3, rng=15)
        assert sum(p.length for p in parts) == graph.m
        merged = concatenate_streams(parts)
        assert merged.final_graph() == graph

    def test_split_substreams_turnstile_safe(self):
        """Deletions land in the same part as their insertions."""
        graph = gen.gnp(20, 0.3, rng=21)
        stream = turnstile_churn_stream(graph, 15, rng=22)
        parts = split_substreams(stream, 4, rng=23)
        for part in parts:
            # Constructing the EdgeStream validates prefix-nonnegativity.
            assert part.allows_deletions


class TestSpaceMeter:
    def test_peak_tracking(self):
        meter = SpaceMeter()
        meter.set_usage("a", 10)
        meter.set_usage("b", 5)
        assert meter.current_words == 15
        meter.release("a")
        assert meter.current_words == 5
        assert meter.peak_words == 15

    def test_add_usage(self):
        meter = SpaceMeter()
        meter.add_usage("x", 3)
        meter.add_usage("x", 4)
        assert meter.current_words == 7

    def test_negative_rejected(self):
        meter = SpaceMeter()
        with pytest.raises(ValueError):
            meter.set_usage("x", -1)

    def test_breakdown(self):
        meter = SpaceMeter()
        meter.set_usage("a", 1)
        assert meter.breakdown() == {"a": 1}
