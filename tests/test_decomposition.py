"""Tests for Lemma 4 decompositions and f_T(H)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.graph import generators as gen
from repro.patterns.decomposition import (
    CycleStarDecomposition,
    Piece,
    decompose,
    family_normalisation_count,
)
from repro.patterns.edge_cover import fractional_edge_cover_number
from repro.patterns import pattern as pattern_zoo


class TestPiece:
    def test_cycle_piece_validation(self):
        with pytest.raises(PatternError):
            Piece("cycle", (0, 1))  # too short
        with pytest.raises(PatternError):
            Piece("cycle", (0, 1, 2, 3))  # even length

    def test_star_piece_validation(self):
        with pytest.raises(PatternError):
            Piece("star", (0,))

    def test_unknown_kind(self):
        with pytest.raises(PatternError):
            Piece("blob", (0, 1))

    def test_costs(self):
        assert float(Piece("cycle", (0, 1, 2)).cost) == 1.5
        assert float(Piece("cycle", (0, 1, 2, 3, 4)).cost) == 2.5
        assert float(Piece("star", (0, 1)).cost) == 1.0
        assert float(Piece("star", (0, 1, 2, 3)).cost) == 3.0


class TestDecomposeKnown:
    def test_triangle_is_one_cycle(self):
        decomposition = decompose(pattern_zoo.triangle().graph)
        assert decomposition.cycle_lengths == (3,)
        assert decomposition.star_petals == ()

    def test_c5_is_one_cycle(self):
        decomposition = decompose(pattern_zoo.cycle(5).graph)
        assert decomposition.cycle_lengths == (5,)

    def test_even_cycle_uses_stars(self):
        decomposition = decompose(pattern_zoo.cycle(4).graph)
        assert decomposition.cycle_lengths == ()
        assert decomposition.star_petals == (1, 1)

    def test_star_is_one_star(self):
        decomposition = decompose(pattern_zoo.star(3).graph)
        assert decomposition.star_petals == (3,)

    def test_k4_is_two_edges(self):
        decomposition = decompose(pattern_zoo.clique(4).graph)
        assert decomposition.star_petals == (1, 1)

    def test_k5_contains_cycle(self):
        decomposition = decompose(pattern_zoo.clique(5).graph)
        assert float(decomposition.cost) == 2.5

    def test_triangle_with_edge(self):
        decomposition = decompose(pattern_zoo.triangle_with_disjoint_edge().graph)
        assert decomposition.cycle_lengths == (3,)
        assert decomposition.star_petals == (1,)

    def test_isolated_vertex_rejected(self):
        with pytest.raises(PatternError):
            decompose(Graph(3, [(0, 1)]))


class TestDecompositionValidity:
    def _check(self, graph):
        decomposition = decompose(graph)
        # Pieces partition V(H).
        seen = []
        for piece in decomposition.pieces:
            seen.extend(piece.vertices)
        assert sorted(seen) == list(range(graph.n))
        # Piece edges are edges of H.
        for piece in decomposition.pieces:
            if piece.kind == "cycle":
                cyc = piece.vertices
                for i in range(len(cyc)):
                    assert graph.has_edge(cyc[i], cyc[(i + 1) % len(cyc)])
            else:
                center, *petals = piece.vertices
                for petal in petals:
                    assert graph.has_edge(center, petal)
        # Lemma 4: cost equals rho(H).
        assert float(decomposition.cost) == pytest.approx(
            fractional_edge_cover_number(graph)
        )

    def test_zoo(self):
        for pattern in pattern_zoo.standard_zoo():
            self._check(pattern.graph)

    def test_larger_patterns(self):
        for graph in (
            gen.complete_graph(6),
            gen.cycle_graph(7),
            gen.complete_bipartite_graph(3, 3),
            gen.lollipop_graph(4, 3),
        ):
            self._check(graph)


@st.composite
def coverable_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = set(draw(st.lists(st.sampled_from(possible), unique=True, max_size=16)))
    graph = Graph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    for v in range(n):
        if graph.degree(v) == 0:
            graph.add_edge_if_absent(v, (v + 1) % n)
    return graph


class TestLemma4Property:
    @given(coverable_graphs())
    @settings(max_examples=60, deadline=None)
    def test_decomposition_cost_equals_rho(self, graph):
        """The statement of Lemma 4, checked exactly on random patterns."""
        decomposition = decompose(graph)
        rho = fractional_edge_cover_number(graph)
        assert float(decomposition.cost) == pytest.approx(rho)

    @given(coverable_graphs())
    @settings(max_examples=40, deadline=None)
    def test_family_count_positive(self, graph):
        decomposition = decompose(graph)
        assert family_normalisation_count(graph, decomposition) >= 1


class TestFamilyCount:
    def test_known_values(self):
        cases = {
            "edge": 2,
            "triangle": 1,
            "C5": 1,
            "P4": 8,
            "M2": 8,
            "K4": 24,
            "C4": 16,
            "diamond": 16,
            "paw": 8,
            "K3+e": 2,
        }
        for pattern in pattern_zoo.standard_zoo():
            if pattern.name in cases:
                assert pattern.family_count() == cases[pattern.name], pattern.name

    def test_family_count_matches_decomposition_type(self):
        # Both optimal decompositions of K5 cost 2.5; f_T depends on
        # which one the DP returned: a spanning C5 (12 five-cycles in
        # K5) or C3+S1 (10 triangles x 2 edge orientations = 20).
        pattern = pattern_zoo.clique(5)
        signature = pattern.decomposition().type_signature()
        expected = {((5,), ()): 12, ((3,), (1,)): 20}
        assert signature in expected
        assert pattern.family_count() == expected[signature]
