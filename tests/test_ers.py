"""Tests for the ERS clique counter (Theorem 2)."""

import pytest

from repro.errors import EstimationError
from repro.exact.cliques import count_cliques
from repro.graph import generators as gen
from repro.graph.degeneracy import degeneracy
from repro.oracle.direct import DirectAugmentedOracle
from repro.streaming.ers.counter import (
    count_cliques_query_model,
    count_cliques_stream,
)
from repro.streaming.ers.params import ErsParameters
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import insertion_stream


class TestErsParameters:
    def test_validation(self):
        with pytest.raises(EstimationError):
            ErsParameters(r=2, degeneracy_bound=3)
        with pytest.raises(EstimationError):
            ErsParameters(r=3, degeneracy_bound=0)
        with pytest.raises(EstimationError):
            ErsParameters(r=3, degeneracy_bound=3, epsilon=1.5)
        with pytest.raises(EstimationError):
            ErsParameters(r=3, degeneracy_bound=3, mode="bogus")

    def test_tau_scaling_in_lambda(self):
        params = ErsParameters(r=4, degeneracy_bound=5)
        # tau_t proportional to lambda^{r-t}.
        assert params.tau(2) == pytest.approx(params.tau(3) * 5)
        assert params.tau(4) == 1.0

    def test_theory_constants_match_paper(self):
        params = ErsParameters(r=3, degeneracy_bound=2, epsilon=0.5, mode="theory")
        # gamma = eps/(8 r r!) = 0.5/(8*3*6)
        assert params.gamma_threshold == pytest.approx(0.5 / 144)
        assert params.beta_threshold == pytest.approx(1 / 18)
        assert params.gamma_run == pytest.approx(0.5 / 6)
        assert params.beta_run == pytest.approx(1 / 54)
        # Theory tau_2 = r^{4r}/(beta^r gamma^2) * lambda^{r-2} is enormous.
        assert params.tau(2) > 1e9

    def test_practical_sample_cap(self):
        params = ErsParameters(r=3, degeneracy_bound=3, sample_cap=100)
        assert params.sample_size(1e9) == 100
        assert params.sample_size(0.0) == 1

    def test_outer_and_activity_q(self):
        practical = ErsParameters(r=3, degeneracy_bound=3, outer_repetitions=7)
        assert practical.outer_q(1000) == 7
        theory = ErsParameters(r=3, degeneracy_bound=3, mode="theory")
        assert theory.activity_q(100) > 100


class TestErsStream:
    def _run(self, graph, r, seed, **overrides):
        lam = degeneracy(graph)
        truth = count_cliques(graph, r)
        stream = insertion_stream(graph, rng=seed)
        params = ErsParameters(
            r=r,
            degeneracy_bound=lam,
            epsilon=0.25,
            **overrides,
        )
        result = count_cliques_stream(
            stream, r=r, degeneracy_bound=lam, lower_bound=max(truth, 1),
            params=params, rng=seed + 1,
        )
        return truth, result

    def test_pass_budget_r3(self):
        graph = gen.barabasi_albert(150, 3, rng=31)
        _, result = self._run(graph, 3, seed=32)
        assert result.passes <= 15  # 5r with r=3

    def test_triangle_accuracy_on_ba(self):
        graph = gen.barabasi_albert(250, 4, rng=33)
        truth, result = self._run(graph, 3, seed=34, outer_repetitions=7)
        assert truth > 0
        assert result.estimate == pytest.approx(truth, rel=0.45)

    def test_k4_on_planted_cliques(self):
        graph = gen.planted_cliques(120, 5, 16, noise_edges=80, rng=35)
        truth, result = self._run(graph, 4, seed=36, outer_repetitions=5)
        assert truth >= 16 * 5  # each K5 has 5 K4s
        assert result.passes <= 20  # 5r with r=4
        assert result.estimate == pytest.approx(truth, rel=0.6)

    def test_zero_cliques(self):
        graph = gen.grid_graph(10, 10)  # triangle-free
        stream = insertion_stream(graph, rng=37)
        result = count_cliques_stream(
            stream, r=3, degeneracy_bound=2, lower_bound=1.0, rng=38
        )
        assert result.estimate == 0.0

    def test_rejects_turnstile(self):
        graph = gen.karate_club()
        stream = turnstile_churn_stream(graph, 10, rng=39)
        with pytest.raises(EstimationError):
            count_cliques_stream(stream, r=3, degeneracy_bound=4, lower_bound=10)


class TestErsQueryModel:
    def test_matches_stream_version_roughly(self):
        graph = gen.barabasi_albert(200, 4, rng=41)
        truth = count_cliques(graph, 3)
        oracle = DirectAugmentedOracle(graph, rng=42)
        result = count_cliques_query_model(
            oracle, r=3, degeneracy_bound=degeneracy(graph),
            lower_bound=truth, rng=43,
        )
        assert result.estimate == pytest.approx(truth, rel=0.5)

    def test_median_reported_fields(self):
        graph = gen.barabasi_albert(100, 3, rng=44)
        oracle = DirectAugmentedOracle(graph, rng=45)
        result = count_cliques_query_model(
            oracle, r=3, degeneracy_bound=3, lower_bound=10, rng=46
        )
        assert result.trials >= 1
        assert "min_run" in result.details
        assert result.details["min_run"] <= result.estimate <= result.details["max_run"]
