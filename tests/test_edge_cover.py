"""Tests for fractional/integral edge covers (Definition 3, footnote 1)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.graph import generators as gen
from repro.patterns.edge_cover import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    greedy_edge_cover,
    integral_edge_cover_number,
)


class TestFractionalEdgeCover:
    def test_rejects_isolated_vertices(self):
        with pytest.raises(PatternError):
            fractional_edge_cover_number(Graph(3, [(0, 1)]))

    def test_cover_is_feasible(self):
        graph = gen.complete_graph(5)
        cover = fractional_edge_cover(graph)
        for v in graph.vertices():
            incident = sum(w for (a, b), w in cover.items() if v in (a, b))
            assert incident >= 1 - 1e-7

    def test_single_edge(self):
        assert fractional_edge_cover_number(Graph(2, [(0, 1)])) == 1.0

    def test_odd_cycles(self):
        for k in (1, 2, 3):
            graph = gen.cycle_graph(2 * k + 1)
            assert fractional_edge_cover_number(graph) == pytest.approx(k + 0.5)

    def test_even_cycles(self):
        for k in (2, 3, 4):
            graph = gen.cycle_graph(2 * k)
            assert fractional_edge_cover_number(graph) == pytest.approx(k)

    def test_stars(self):
        for petals in (1, 2, 5):
            assert fractional_edge_cover_number(gen.star_graph(petals)) == pytest.approx(petals)

    def test_cliques(self):
        for r in (3, 4, 5, 6):
            assert fractional_edge_cover_number(gen.complete_graph(r)) == pytest.approx(r / 2)

    def test_half_vertex_lower_bound(self):
        # rho >= |V|/2 because an edge covers at most two vertices.
        graph = gen.gnp(10, 0.6, rng=4)
        if all(graph.degree(v) > 0 for v in graph.vertices()):
            assert fractional_edge_cover_number(graph) >= graph.n / 2 - 1e-9


class TestIntegralEdgeCover:
    def test_footnote_identities(self):
        for r in (3, 4, 5, 6, 7):
            assert integral_edge_cover_number(gen.complete_graph(r)) == (r + 1) // 2
            assert integral_edge_cover_number(gen.cycle_graph(r)) == (r + 1) // 2

    def test_star(self):
        assert integral_edge_cover_number(gen.star_graph(5)) == 5

    def test_greedy_cover_covers_everything(self):
        graph = gen.gnp(12, 0.4, rng=9)
        if any(graph.degree(v) == 0 for v in graph.vertices()):
            pytest.skip("isolated vertex in random draw")
        cover = greedy_edge_cover(graph)
        covered = {v for edge in cover for v in edge}
        assert covered == set(graph.vertices())


@st.composite
def covered_graphs(draw):
    """Random graphs with min degree >= 1 (so covers exist)."""
    n = draw(st.integers(min_value=2, max_value=9))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = set(draw(st.lists(st.sampled_from(possible), unique=True, max_size=18)))
    graph = Graph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    # Patch isolated vertices with an arbitrary edge.
    for v in range(n):
        if graph.degree(v) == 0:
            target = (v + 1) % n
            graph.add_edge_if_absent(v, target)
    if any(graph.degree(v) == 0 for v in graph.vertices()):
        # n == 2 corner with v == target; impossible here, but guard anyway.
        graph.add_edge_if_absent(0, 1)
    return graph


class TestCoverChainProperties:
    @given(covered_graphs())
    @settings(max_examples=50, deadline=None)
    def test_rho_le_beta_le_m(self, graph):
        rho = fractional_edge_cover_number(graph)
        beta = integral_edge_cover_number(graph)
        assert rho <= beta + 1e-9
        assert beta <= graph.m

    @given(covered_graphs())
    @settings(max_examples=50, deadline=None)
    def test_rho_at_least_half_n(self, graph):
        assert fractional_edge_cover_number(graph) >= graph.n / 2 - 1e-9

    @given(covered_graphs())
    @settings(max_examples=50, deadline=None)
    def test_rho_is_half_integral(self, graph):
        rho = fractional_edge_cover_number(graph)
        assert abs(rho * 2 - round(rho * 2)) < 1e-9

    @given(covered_graphs())
    @settings(max_examples=30, deadline=None)
    def test_vertex_cover_lp_value_positive(self, graph):
        tau = fractional_vertex_cover_number(graph)
        assert tau >= 1.0 - 1e-9
        # LP duality: tau(H) = max fractional matching <= rho-ish bounds
        assert tau <= graph.n
