"""Tests for the AGM bound module (:mod:`repro.patterns.agm`) and the
fractional vertex cover τ(H) exposure."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import PatternError
from repro.graph import generators as gen
from repro.patterns import agm
from repro.patterns import pattern as zoo


class TestTau:
    def test_known_values(self):
        # τ(K_r) = r/2 (the all-1/2 vector); τ(S_k) = 1 (the center);
        # τ(C_{2k}) = k; τ(C_{2k+1}) = k + 1/2.
        assert zoo.triangle().tau() == pytest.approx(1.5)
        assert zoo.clique(4).tau() == pytest.approx(2.0)
        assert zoo.clique(5).tau() == pytest.approx(2.5)
        assert zoo.star(3).tau() == pytest.approx(1.0)
        assert zoo.cycle(4).tau() == pytest.approx(2.0)
        assert zoo.cycle(5).tau() == pytest.approx(2.5)
        assert zoo.path(3).tau() == pytest.approx(1.0)

    def test_lp_duality_bound(self):
        # Weak duality: τ(H) >= (fractional matching) and for any graph
        # τ <= ρ is false in general, but τ <= |V|/2 + ... we check the
        # universally valid sandwich m/|V| <= ... τ >= m/Δ? Keep it
        # simple: τ is at least 1 and at most |V(H)| on the whole zoo.
        for pattern in zoo.extended_zoo():
            tau = pattern.tau()
            assert 1.0 <= tau <= pattern.num_vertices, pattern.name


class TestAgmBound:
    def test_bound_values(self):
        assert agm.agm_bound(zoo.triangle(), 100) == pytest.approx(100**1.5)
        assert agm.agm_bound(zoo.clique(4), 10) == pytest.approx(100.0)

    def test_negative_m_rejected(self):
        with pytest.raises(PatternError):
            agm.agm_bound(zoo.edge(), -1)

    def test_holds_on_zoo_karate(self):
        host = gen.karate_club()
        for pattern in zoo.standard_zoo():
            check = agm.verify_agm(host, pattern)
            assert check.holds, pattern.name
            assert check.ratio <= 1.0 + 1e-9

    def test_tight_for_stars_on_star_host(self):
        # A star host maximizes S_k density: #S_k = C(m, k) approaches
        # m^k/k!; the AGM ratio approaches 1/k! — large, not ~0.
        host = gen.star_graph(12)
        check = agm.verify_agm(host, zoo.star(2))
        assert check.ratio > 0.4

    def test_zero_edges(self):
        host = gen.gnp(5, 0.0, rng=1)
        check = agm.verify_agm(host, zoo.edge())
        assert check.count == 0
        assert check.holds

    @given(
        st.integers(min_value=4, max_value=16),
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_agm_holds_on_random_hosts(self, n, p, seed):
        host = gen.gnp(n, p, rng=seed)
        for pattern in (zoo.edge(), zoo.path(3), zoo.triangle(), zoo.cycle(4)):
            assert agm.verify_agm(host, pattern).holds


class TestKkpScale:
    def test_zero_count_defaults_to_m(self):
        assert agm.one_pass_lower_bound_scale(zoo.triangle(), 50, 0) == 50.0

    def test_scale_shrinks_with_count(self):
        pattern = zoo.triangle()
        sparse = agm.one_pass_lower_bound_scale(pattern, 1000, 10)
        dense = agm.one_pass_lower_bound_scale(pattern, 1000, 1000)
        assert dense < sparse

    def test_triangle_formula(self):
        # tau(C3) = 3/2, so the scale is m / #T^{2/3}.
        scale = agm.one_pass_lower_bound_scale(zoo.triangle(), 1000, 8)
        assert scale == pytest.approx(1000 / 8 ** (2 / 3))
