"""Tests for graph I/O, RNG plumbing, and validation helpers."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.order import VertexOrder, precedes
from repro.utils.rng import coin, derive_rng, ensure_rng, random_index, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    check_vertex_count,
)


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        graph = gen.gnp(20, 0.3, rng=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_round_trip_preserves_trailing_isolated_vertices(self, tmp_path):
        from repro.graph.graph import Graph

        graph = Graph(10, [(0, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        assert read_edge_list(path).n == 10

    def test_headerless_inference(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 3\n1 2\n")
        graph = read_edge_list(path)
        assert graph.n == 4
        assert graph.m == 2

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "noisy.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        assert read_edge_list(path).m == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_explicit_n_overrides(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path, n=7).n == 7


class TestVertexOrder:
    def test_precedes_by_degree_then_id(self):
        graph = gen.star_graph(3)  # degree(0)=3, others 1
        assert precedes(graph, 1, 0)
        assert precedes(graph, 1, 2)
        assert not precedes(graph, 2, 1)

    def test_materialized_order_matches_graph(self):
        graph = gen.karate_club()
        order = VertexOrder.from_graph(graph)
        for u in range(10):
            for v in range(10):
                if u != v:
                    assert order.precedes(u, v) == precedes(graph, u, v)

    def test_sorted_and_minimum(self):
        order = VertexOrder({0: 5, 1: 2, 2: 2, 3: 9})
        assert order.sorted([3, 0, 1, 2]) == [1, 2, 0, 3]
        assert order.minimum([3, 0, 2]) == 2
        assert order.is_increasing([1, 2, 0, 3])
        assert not order.is_increasing([2, 1])

    def test_minimum_of_empty_rejected(self):
        with pytest.raises(ValueError):
            VertexOrder({0: 1}).minimum([])

    def test_knows(self):
        order = VertexOrder({1: 4})
        assert order.knows(1)
        assert not order.knows(2)


class TestRng:
    def test_ensure_rng_variants(self):
        assert isinstance(ensure_rng(None), random.Random)
        assert isinstance(ensure_rng(7), random.Random)
        existing = random.Random(1)
        assert ensure_rng(existing) is existing

    def test_ensure_rng_rejects_bad_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_default_seed_reproducible(self):
        assert ensure_rng(None).random() == ensure_rng(None).random()

    def test_derive_rng_decorrelates_labels(self):
        parent_a, parent_b = random.Random(5), random.Random(5)
        child_a = derive_rng(parent_a, "x")
        child_b = derive_rng(parent_b, "x")
        assert child_a.random() == child_b.random()

    def test_spawn_rngs_independent(self):
        children = list(spawn_rngs(3, count=4))
        values = [child.random() for child in children]
        assert len(set(values)) == 4

    def test_random_index_bounds(self):
        rng = random.Random(1)
        assert all(0 <= random_index(rng, 5) < 5 for _ in range(100))
        with pytest.raises(ValueError):
            random_index(rng, 0)

    def test_coin_extremes(self):
        rng = random.Random(2)
        assert coin(rng, 1.0)
        assert not coin(rng, 0.0)
        heads = sum(coin(rng, 0.3) for _ in range(5000))
        assert 1200 <= heads <= 1800


class TestValidation:
    def test_check_type(self):
        assert check_type(5, int, "x") == 5
        with pytest.raises(TypeError):
            check_type("5", int, "x")

    def test_numeric_guards(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0, "x")
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")

    def test_probability_and_fraction(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")
        assert check_fraction(0.5, "f") == 0.5
        for bad in (0.0, 1.0):
            with pytest.raises(ValueError):
                check_fraction(bad, "f")

    def test_vertex_count(self):
        assert check_vertex_count(3) == 3
        with pytest.raises(TypeError):
            check_vertex_count(True)
        with pytest.raises(ValueError):
            check_vertex_count(-1)


class TestPublicApi:
    def test_all_symbols_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
