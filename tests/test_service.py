"""The multi-tenant service tier (:mod:`repro.service`).

Contracts under test:

* **Tenant isolation** — two registry streams fed alternately are
  bit-identical to two isolated :class:`~repro.engine.live.LiveEngine`
  instances fed the same columns; a tenant cannot perturb its
  neighbor.
* **Restore-on-open** — killing a tenant mid-traffic (no final
  checkpoint) and reopening it resumes from the last scheduled
  snapshot, and re-feeding the tail reconverges bit-identical to an
  uninterrupted tenant.
* **Admission is typed and non-destructive** — every refusal
  (``max_streams``, journal watermark, in-flight byte budget, bad
  names, unknown streams, double opens) raises
  :class:`~repro.errors.ServiceError` and leaves the registry exactly
  as it was.
* **The wire adds nothing** — feeding through ``repro serve``'s
  protocol (ServerThread + ServiceClient over localhost) produces the
  same estimates as driving the engine directly, including across a
  kill → reopen drill; malformed lines are answered, not fatal.
"""

import json
import socket

import numpy as np
import pytest

from repro import generators, insertion_stream
from repro.engine import EstimatorSpec, LiveEngine
from repro.engine.parallel import build_triest
from repro.errors import EngineError, ServiceError
from repro.service import (
    CheckpointPolicy,
    ServerThread,
    ServiceClient,
    ServiceLimits,
    StreamConfig,
    StreamRegistry,
    feed_nbytes,
)
from repro.service.protocol import (
    decode_request,
    encode_message,
    error_response,
    updates_from_wire,
)


def _columns(seed_graph=11, seed_stream=12, n=120):
    graph = generators.barabasi_albert(n, 4, rng=seed_graph)
    return insertion_stream(graph, rng=seed_stream).columns()


def _specs(copies=3, capacity=80, base_rng=31):
    return tuple(
        EstimatorSpec(
            name=f"t{index}",
            factory=build_triest,
            kwargs=dict(capacity=capacity, rng=base_rng + index,
                        name=f"t{index}"),
        )
        for index in range(copies)
    )


def _config(n, base_rng=31, **kwargs):
    return StreamConfig(n=n, specs=_specs(base_rng=base_rng), **kwargs)


def _reference_estimates(u, v, d, n, base_rng=31):
    engine = LiveEngine(n=n)
    for spec in _specs(base_rng=base_rng):
        engine.register_spec(EstimatorSpec(spec.name, spec.factory,
                                           dict(spec.kwargs)))
    engine.feed((u, v, d))
    results = engine.estimate()
    engine.close()
    return {name: (result.estimate, result.details)
            for name, result in results.items()}


def _chunks(u, v, d, chunk=48):
    for start in range(0, len(u), chunk):
        yield u[start:start + chunk], v[start:start + chunk], \
            d[start:start + chunk]


class TestRegistryTenancy:
    def test_interleaved_streams_match_isolated_engines(self):
        u, v, d = _columns()
        n = 120
        registry = StreamRegistry()
        registry.open("a", _config(n, base_rng=31))
        registry.open("b", _config(n, base_rng=77))
        a_chunks = list(_chunks(u, v, d))
        # Tenant b sees the same updates in a different order (its own
        # stream order is all that matters to it).
        order = np.argsort(np.arange(len(u)) % 7, kind="stable")
        b_u, b_v, b_d = u[order], v[order], d[order]
        b_chunks = list(_chunks(b_u, b_v, b_d))
        for a_chunk, b_chunk in zip(a_chunks, b_chunks):
            registry.feed("a", a_chunk)
            registry.feed("b", b_chunk)
        expected_a = _reference_estimates(u, v, d, n, base_rng=31)
        expected_b = _reference_estimates(b_u, b_v, b_d, n, base_rng=77)
        got_a = registry.estimate("a")
        got_b = registry.estimate("b")
        for name, (estimate, details) in expected_a.items():
            assert got_a[name].estimate == estimate
            assert got_a[name].details == details
        for name, (estimate, details) in expected_b.items():
            assert got_b[name].estimate == estimate
            assert got_b[name].details == details
        registry.close_all(checkpoint=False)

    def test_kill_then_restore_on_open_matches_uninterrupted(self, tmp_path):
        u, v, d = _columns()
        n = 120
        policy = CheckpointPolicy(every_elements=100)
        registry = StreamRegistry(root=str(tmp_path), default_policy=policy)
        registry.open("tenant", _config(n))
        fed = 0
        for chunk in _chunks(u, v, d):
            registry.feed("tenant", chunk)
            fed += len(chunk[0])
            if fed >= len(u) // 2:
                break
        status = registry.status("tenant")
        assert status["checkpoints_written"] >= 1
        # Crash the tenant: no final checkpoint, state after the last
        # scheduled snapshot is lost.
        registry.kill("tenant")
        assert "tenant" not in registry.streams
        reopened = registry.open("tenant")
        assert reopened["restored"] is True
        resumed_at = reopened["elements"]
        # The scheduler fires on feed boundaries, so the snapshot sits
        # on a whole chunk somewhere behind the crash point.
        assert 0 < resumed_at <= fed
        assert resumed_at % 48 == 0
        # Re-feed everything the checkpoint had not seen.
        registry.feed("tenant", (u[resumed_at:], v[resumed_at:],
                                 d[resumed_at:]))
        expected = _reference_estimates(u, v, d, n)
        got = registry.estimate("tenant")
        for name, (estimate, details) in expected.items():
            assert got[name].estimate == estimate
            assert got[name].details == details
        registry.close_all(checkpoint=False)

    def test_close_checkpoints_and_reopen_restores(self, tmp_path):
        u, v, d = _columns()
        registry = StreamRegistry(root=str(tmp_path))
        registry.open("s", _config(120))
        cut = len(u) // 2
        registry.feed("s", (u[:cut], v[:cut], d[:cut]))
        closed = registry.close("s")
        assert closed["checkpoint"] is not None
        reopened = registry.open("s")
        assert reopened["restored"] is True
        assert reopened["elements"] == cut
        registry.feed("s", (u[cut:], v[cut:], d[cut:]))
        expected = _reference_estimates(u, v, d, 120)
        got = registry.estimate("s")
        for name, (estimate, _) in expected.items():
            assert got[name].estimate == estimate
        registry.close_all(checkpoint=False)

    def test_admission_refusals_are_typed_and_non_destructive(self):
        u, v, d = _columns()
        limits = ServiceLimits(max_streams=1, max_feed_bytes=1 << 20,
                               max_journal_elements=100)
        registry = StreamRegistry(limits=limits)
        registry.open("only", _config(120))
        registry.feed("only", (u[:60], v[:60], d[:60]))

        with pytest.raises(ServiceError, match="max_streams"):
            registry.open("second", _config(120))
        assert registry.streams == ["only"]

        with pytest.raises(ServiceError, match="already open"):
            registry.open("only", _config(120))

        with pytest.raises(ServiceError, match="invalid stream name"):
            registry.open("../escape", _config(120))

        with pytest.raises(ServiceError, match="not open"):
            registry.feed("ghost", (u[:2], v[:2], d[:2]))

        # The watermark refuses the whole chunk: nothing is journaled.
        before = registry.status("only")["elements"]
        with pytest.raises(ServiceError, match="max_journal_elements"):
            registry.feed("only", (u[60:], v[60:], d[60:]))
        assert registry.status("only")["elements"] == before
        assert registry.status("only")["refusals"] == 1

        # A chunk that fits under the watermark is still admitted.
        registry.feed("only", (u[60:100], v[60:100], d[60:100]))
        assert registry.status("only")["elements"] == 100

        # The in-flight byte budget reserves nothing when it refuses.
        registry.reserve_feed_bytes(1 << 19)
        with pytest.raises(ServiceError, match="max_feed_bytes"):
            registry.reserve_feed_bytes(1 << 20)
        assert registry.inflight_bytes == 1 << 19
        registry.release_feed_bytes(1 << 19)
        assert registry.inflight_bytes == 0

        # After every refusal the tenant still answers queries.
        assert len(registry.estimate("only")) == 3
        registry.close_all(checkpoint=False)

    def test_checkpoint_scheduling_by_time(self, tmp_path):
        now = [0.0]
        policy = CheckpointPolicy(every_seconds=10.0)
        registry = StreamRegistry(root=str(tmp_path), default_policy=policy,
                                  clock=lambda: now[0])
        u, v, d = _columns()
        registry.open("s", _config(120))
        result = registry.feed("s", (u[:50], v[:50], d[:50]))
        assert result["checkpoint"] is None  # no time has passed
        now[0] = 11.0
        result = registry.feed("s", (u[50:60], v[50:60], d[50:60]))
        assert result["checkpoint"] is not None
        status = registry.status("s")
        assert status["checkpoints_written"] == 1
        assert status["elements_since_checkpoint"] == 0
        registry.close_all(checkpoint=False)

    def test_new_stream_requires_config(self, tmp_path):
        registry = StreamRegistry(root=str(tmp_path))
        with pytest.raises(ServiceError, match="needs a config"):
            registry.open("fresh")

    def test_checkpoint_without_root_refuses(self):
        registry = StreamRegistry()
        registry.open("s", _config(120))
        with pytest.raises(ServiceError, match="no root"):
            registry.checkpoint("s")
        registry.close_all(checkpoint=False)

    def test_status_estimate_guard_reports_degradation(self):
        registry = StreamRegistry()
        registry.open("s", _config(120))
        u, v, d = _columns()
        registry.feed("s", (u[:50], v[:50], d[:50]))
        status = registry.status("s", estimate=True)
        assert isinstance(status["median"], float)

        # Full degradation must answer with a message, not a traceback
        # (the `repro serve` status path reuses the live-report guard).
        entry = registry._entry("s")

        def all_lost(names=None):
            raise EngineError("every registered estimator was lost")

        entry.engine.estimate = all_lost
        status = registry.status("s", estimate=True)
        assert status["median"] is None
        assert "lost" in status["estimate_error"]
        registry.close_all(checkpoint=False)


class TestWireConfig:
    def test_from_wire_matches_cli_spec_layout(self):
        config = StreamConfig.from_wire({
            "n": 64, "estimator": "triest", "copies": 2, "capacity": 16,
            "seed": 9, "checkpoint": {"every_elements": 32},
        })
        assert [spec.name for spec in config.specs] == ["copy-0", "copy-1"]
        assert config.specs[0].kwargs["rng"] == 10  # seed + 1 + index
        assert config.checkpoint.every_elements == 32

    def test_from_wire_refusals(self):
        with pytest.raises(ServiceError, match="missing required"):
            StreamConfig.from_wire({"n": 64})
        with pytest.raises(ServiceError, match="unknown estimator"):
            StreamConfig.from_wire({"n": 64, "estimator": "oracle"})
        with pytest.raises(ServiceError, match="unknown stream config"):
            StreamConfig.from_wire({"n": 64, "estimator": "triest",
                                    "shards": 4})
        with pytest.raises(ServiceError, match="at least one estimator"):
            StreamConfig(n=64, specs=())


class TestProtocol:
    def test_decode_request_refusals(self):
        with pytest.raises(ServiceError, match="malformed"):
            decode_request(b"not json\n")
        with pytest.raises(ServiceError, match="JSON object"):
            decode_request(b"[1, 2]\n")
        with pytest.raises(ServiceError, match="unknown command"):
            decode_request(encode_message({"cmd": "drop"}))
        with pytest.raises(ServiceError, match="requires a 'stream'"):
            decode_request(encode_message({"cmd": "feed"}))
        doc = decode_request(encode_message({"cmd": "status"}))
        assert doc["cmd"] == "status"

    def test_updates_from_wire_validation(self):
        u, v, delta = updates_from_wire({"u": [1, 2], "v": [3, 4]})
        assert delta == [1, 1]
        with pytest.raises(ServiceError, match="missing column"):
            updates_from_wire({"u": [1]})
        with pytest.raises(ServiceError, match="equal length"):
            updates_from_wire({"u": [1], "v": [2, 3]})
        with pytest.raises(ServiceError, match="non-integer"):
            updates_from_wire({"u": [1.5], "v": [2]})
        with pytest.raises(ServiceError, match="non-integer"):
            updates_from_wire({"u": [True], "v": [2]})
        with pytest.raises(ServiceError, match=r"\+1 or -1"):
            updates_from_wire({"u": [1], "v": [2], "delta": [2]})
        with pytest.raises(ServiceError, match="unknown feed column"):
            updates_from_wire({"u": [1], "v": [2], "w": [3]})

    def test_error_response_names_the_type(self):
        doc = error_response(ServiceError("nope"))
        assert doc == {"ok": False, "error": "ServiceError",
                       "message": "nope"}
        assert error_response(RuntimeError("x"))["error"] == "InternalError"

    def test_feed_nbytes_counts_columns(self):
        u = np.arange(10, dtype=np.int64)
        assert feed_nbytes((u, u, u)) == 240
        assert feed_nbytes(([1, 2], [3, 4], [1, 1])) == 48


class TestServiceEndToEnd:
    def _wire_config(self, base_rng=31, **extra):
        # The declarative wire form of _config(): same copy names come
        # from explicit registry configs; over the wire the estimator
        # copies are named copy-N, so compare by median and by order.
        doc = {"n": 120, "estimator": "triest", "capacity": 80,
               "copies": 3, "seed": base_rng - 1}
        doc.update(extra)
        return doc

    def test_wire_feed_matches_direct_engine(self, tmp_path):
        u, v, d = _columns()
        with ServerThread(root=str(tmp_path)) as server:
            with ServiceClient(server.host, server.port) as client:
                client.open("tenant", config=self._wire_config())
                for cu, cv, cd in _chunks(u, v, d):
                    client.feed("tenant", cu, cv, cd)
                wire = client.estimate("tenant")
                client.close_stream("tenant", checkpoint=False)
        # The wire's copy-N estimators mirror _specs' tN ones: the
        # factory kwargs (capacity, rng) are identical pairwise.
        expected = _reference_estimates(u, v, d, 120)
        by_order = sorted(expected)
        got = wire["estimates"]
        for index, name in enumerate(sorted(got)):
            assert got[name]["estimate"] == expected[by_order[index]][0]

    def test_kill_reopen_drill_over_the_wire(self, tmp_path):
        u, v, d = _columns()
        with ServerThread(root=str(tmp_path)) as server:
            with ServiceClient(server.host, server.port) as client:
                client.open("drill", config=self._wire_config(
                    checkpoint={"every_elements": 100}))
                fed = 0
                for cu, cv, cd in _chunks(u, v, d):
                    client.feed("drill", cu, cv, cd)
                    fed += len(cu)
                    if fed >= len(u) // 2:
                        break
                client.kill("drill")
                reopened = client.open("drill")
                assert reopened["restored"] is True
                resumed_at = reopened["elements"]
                assert 0 < resumed_at <= fed
                assert resumed_at % 48 == 0
                client.feed("drill", u[resumed_at:], v[resumed_at:],
                            d[resumed_at:])
                wire = client.estimate("drill")
                status = client.status("drill", estimate=True)
                client.close_stream("drill", checkpoint=False)
        expected = _reference_estimates(u, v, d, 120)
        by_order = sorted(expected)
        got = wire["estimates"]
        for index, name in enumerate(sorted(got)):
            assert got[name]["estimate"] == expected[by_order[index]][0]
        assert status["median"] == wire["median"]

    def test_refusals_over_the_wire_are_typed(self, tmp_path):
        with ServerThread(root=str(tmp_path)) as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError, match="not open"):
                    client.feed("ghost", [1], [2])
                with pytest.raises(ServiceError, match="ServiceError"):
                    client.open("bad name!")
                # The connection survives every refusal.
                assert client.status()["open_streams"] == 0

    def test_malformed_lines_are_answered_not_fatal(self, tmp_path):
        with ServerThread(root=str(tmp_path)) as server:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=30)
            try:
                stream = sock.makefile("rwb")
                stream.write(b"this is not json\n")
                stream.flush()
                answer = json.loads(stream.readline())
                assert answer["ok"] is False
                assert answer["error"] == "ServiceError"
                # Same connection keeps working afterwards.
                stream.write(encode_message({"cmd": "status"}))
                stream.flush()
                answer = json.loads(stream.readline())
                assert answer["ok"] is True
            finally:
                sock.close()

    def test_backpressure_refusal_over_the_wire(self, tmp_path):
        limits = ServiceLimits(max_feed_bytes=64)
        registry = StreamRegistry(root=str(tmp_path), limits=limits)
        with ServerThread(registry=registry) as server:
            with ServiceClient(server.host, server.port) as client:
                client.open("s", config=self._wire_config())
                with pytest.raises(ServiceError, match="max_feed_bytes"):
                    client.feed("s", list(range(10)),
                                list(range(10, 20)))
                # Refusal reserved nothing: a small feed is admitted.
                result = client.feed("s", [0, 1], [5, 6])
                assert result["fed"] == 2
                assert server.registry.inflight_bytes == 0
