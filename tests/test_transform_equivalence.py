"""Property test: stream emulation answers exact queries *exactly*.

Theorem 9's proof is an exactness claim for f2/f3/f4/edge-count: the
emulated answers coincide with the direct oracle's on any graph and
any arrival order.  Hypothesis generates random graphs and random
arrival orders; we compare the two substrates query-by-query.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.graph import Graph
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
)
from repro.oracle.direct import DirectAugmentedOracle
from repro.streams.stream import EdgeStream, Update
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle


@st.composite
def graph_and_order(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=20))
    permutation = draw(st.permutations(edges)) if edges else []
    return n, list(permutation)


@st.composite
def turnstile_history(draw):
    """A random valid insert/delete history over a small vertex set."""
    n = draw(st.integers(min_value=2, max_value=8))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    updates = []
    live = set()
    for _ in range(draw(st.integers(min_value=0, max_value=24))):
        edge = draw(st.sampled_from(possible))
        if edge in live:
            if draw(st.booleans()):
                updates.append(Update(edge[0], edge[1], -1))
                live.discard(edge)
        else:
            updates.append(Update(edge[0], edge[1], 1))
            live.add(edge)
    return n, updates


class TestInsertionExactness:
    @given(graph_and_order())
    @settings(max_examples=40, deadline=None)
    def test_deterministic_queries_match_direct_oracle(self, case):
        n, arrival = case
        stream = EdgeStream(n, [Update(u, v) for u, v in arrival])
        # Build the reference graph in arrival order so f3's neighbor
        # indexing coincides between the two substrates.
        graph = Graph(n, arrival)
        direct = DirectAugmentedOracle(graph, rng=1)
        emulated = InsertionStreamOracle(stream, rng=2)

        batch = [EdgeCountQuery()]
        batch += [DegreeQuery(v) for v in range(n)]
        batch += [AdjacencyQuery(u, v) for u in range(n) for v in range(u + 1, n)]
        batch += [NeighborQuery(v, i) for v in range(n) for i in range(3)]

        expected = direct.answer_batch(batch)
        actual = emulated.answer_batch(batch)
        assert actual == expected


class TestTurnstileExactness:
    @given(turnstile_history())
    @settings(max_examples=40, deadline=None)
    def test_counters_track_final_graph(self, case):
        n, updates = case
        stream = EdgeStream(n, updates, allow_deletions=True)
        final = stream.final_graph()
        oracle = TurnstileStreamOracle(stream, rng=3, sampler_repetitions=2)

        batch = [EdgeCountQuery()]
        batch += [DegreeQuery(v) for v in range(n)]
        batch += [AdjacencyQuery(u, v) for u in range(n) for v in range(u + 1, n)]
        answers = oracle.answer_batch(batch)

        assert answers[0] == final.m
        for v in range(n):
            assert answers[1 + v] == final.degree(v)
        offset = 1 + n
        for index, (u, v) in enumerate(
            (u, v) for u in range(n) for v in range(u + 1, n)
        ):
            assert answers[offset + index] == final.has_edge(u, v)
