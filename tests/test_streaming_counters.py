"""End-to-end tests for the 3-pass streaming counters (Theorems 1, 17)."""

import pytest

from repro.errors import EstimationError
from repro.estimate.concentration import ParamMode
from repro.exact.subgraphs import count_subgraphs
from repro.graph import generators as gen
from repro.patterns import pattern as pattern_zoo
from repro.streaming.three_pass import (
    count_subgraphs_insertion_only,
    resolve_trials,
    sample_copies_stream,
)
from repro.streaming.turnstile import count_subgraphs_turnstile
from repro.streams.generators import adversarial_order_stream, turnstile_churn_stream
from repro.streams.stream import insertion_stream


class TestInsertionOnlyCounter:
    def test_three_passes_exactly(self):
        graph = gen.karate_club()
        stream = insertion_stream(graph, rng=1)
        result = count_subgraphs_insertion_only(
            stream, pattern_zoo.triangle(), trials=200, rng=2
        )
        assert result.passes == 3
        assert stream.passes_used == 3

    def test_triangle_accuracy(self):
        graph = gen.karate_club()
        truth = count_subgraphs(graph, pattern_zoo.triangle())
        stream = insertion_stream(graph, rng=3)
        result = count_subgraphs_insertion_only(
            stream, pattern_zoo.triangle(), trials=25000, rng=4
        )
        assert result.estimate == pytest.approx(truth, rel=0.2)

    def test_star_pattern_accuracy(self):
        graph = gen.gnp(25, 0.3, rng=5)
        pattern = pattern_zoo.path(3)
        truth = count_subgraphs(graph, pattern)
        stream = insertion_stream(graph, rng=6)
        result = count_subgraphs_insertion_only(stream, pattern, trials=25000, rng=7)
        assert result.estimate == pytest.approx(truth, rel=0.25)

    def test_adversarial_order_unaffected(self):
        graph = gen.karate_club()
        truth = count_subgraphs(graph, pattern_zoo.triangle())
        stream = adversarial_order_stream(graph)
        result = count_subgraphs_insertion_only(
            stream, pattern_zoo.triangle(), trials=25000, rng=8
        )
        assert result.estimate == pytest.approx(truth, rel=0.25)

    def test_zero_pattern_graph(self):
        # Triangle-free graph: estimate must be exactly 0.
        graph = gen.complete_bipartite_graph(5, 5)
        stream = insertion_stream(graph, rng=9)
        result = count_subgraphs_insertion_only(
            stream, pattern_zoo.triangle(), trials=3000, rng=10
        )
        assert result.estimate == 0.0
        assert result.successes == 0

    def test_space_scales_with_trials(self):
        graph = gen.karate_club()
        small = count_subgraphs_insertion_only(
            insertion_stream(graph, rng=11), pattern_zoo.triangle(), trials=100, rng=12
        )
        large = count_subgraphs_insertion_only(
            insertion_stream(graph, rng=13), pattern_zoo.triangle(), trials=1000, rng=14
        )
        assert large.space_words > 5 * small.space_words

    def test_sampled_copies_are_valid(self):
        graph = gen.karate_club()
        stream = insertion_stream(graph, rng=15)
        outputs = sample_copies_stream(stream, pattern_zoo.triangle(), 4000, rng=16)
        for copy in outputs:
            if copy is not None:
                assert all(graph.has_edge(u, v) for u, v in copy)
                assert len(copy) == 3


class TestTrialResolution:
    def test_explicit_trials_win(self):
        stream = insertion_stream(gen.karate_club(), rng=1)
        assert resolve_trials(stream, pattern_zoo.triangle(), 0.1, 45, 123) == 123

    def test_requires_trials_or_lower_bound(self):
        stream = insertion_stream(gen.karate_club(), rng=1)
        with pytest.raises(EstimationError):
            resolve_trials(stream, pattern_zoo.triangle(), 0.1, None, None)

    def test_chernoff_budget_shape(self):
        stream = insertion_stream(gen.karate_club(), rng=1)
        loose = resolve_trials(
            stream, pattern_zoo.triangle(), 0.4, 45, None, ParamMode.PRACTICAL
        )
        tight = resolve_trials(
            stream, pattern_zoo.triangle(), 0.2, 45, None, ParamMode.PRACTICAL
        )
        assert tight == pytest.approx(4 * loose, rel=0.05)

    def test_invalid_trials(self):
        stream = insertion_stream(gen.karate_club(), rng=1)
        with pytest.raises(EstimationError):
            resolve_trials(stream, pattern_zoo.triangle(), 0.1, None, 0)


class TestTurnstileCounter:
    def test_three_passes_and_deletion_correctness(self):
        graph = gen.karate_club()
        truth = count_subgraphs(graph, pattern_zoo.triangle())
        stream = turnstile_churn_stream(graph, 30, rng=21)
        result = count_subgraphs_turnstile(
            stream,
            pattern_zoo.triangle(),
            trials=4000,
            rng=22,
            sampler_repetitions=4,
        )
        assert result.passes == 3
        assert result.estimate == pytest.approx(truth, rel=0.35)

    def test_counts_final_graph_not_churn(self):
        # All triangles are churned away: final graph is a tree.
        tree = gen.star_graph(8)
        stream = turnstile_churn_stream(tree, 20, rng=23)
        result = count_subgraphs_turnstile(
            stream, pattern_zoo.triangle(), trials=1500, rng=24, sampler_repetitions=4
        )
        assert result.estimate == pytest.approx(0.0, abs=1e-9)

    def test_works_on_insertion_pattern_p3(self):
        graph = gen.gnp(18, 0.35, rng=25)
        pattern = pattern_zoo.path(3)
        truth = count_subgraphs(graph, pattern)
        if truth == 0:
            pytest.skip("random graph had no P3 (practically impossible)")
        stream = turnstile_churn_stream(graph, 15, rng=26)
        result = count_subgraphs_turnstile(
            stream, pattern, trials=4000, rng=27, sampler_repetitions=4
        )
        assert result.estimate == pytest.approx(truth, rel=0.35)
