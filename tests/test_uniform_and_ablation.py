"""Tests for the streaming uniform sampler and the wedge ablation knob."""

import pytest

from repro.errors import EstimationError, SketchError
from repro.exact.subgraphs import count_subgraphs
from repro.fgp.rounds import (
    WEDGE_BOTH,
    WEDGE_HIGH_ONLY,
    WEDGE_LOW_ONLY,
    subgraph_sampler_rounds,
)
from repro.graph import generators as gen
from repro.oracle.direct import DirectAugmentedOracle
from repro.patterns import pattern as pattern_zoo
from repro.streaming.uniform import (
    default_attempt_budget,
    sample_subgraph_uniformly_stream,
)
from repro.streams.stream import insertion_stream
from repro.transform.driver import run_round_adaptive
from repro.utils.rng import derive_rng, ensure_rng


class TestUniformStreamSampler:
    def test_budget_formula(self):
        import math

        assert default_attempt_budget(100, 1.5, 10.0) == math.ceil(10 * 200**1.5 / 10)

    def test_budget_validation(self):
        with pytest.raises(EstimationError):
            default_attempt_budget(100, 1.5, 0)

    def test_returns_valid_copy(self):
        graph = gen.karate_club()
        stream = insertion_stream(graph, rng=1)
        result = sample_subgraph_uniformly_stream(
            stream, pattern_zoo.triangle(), copies_lower_bound=45, rng=2
        )
        assert result.passes == 3
        assert result.succeeded
        assert all(graph.has_edge(u, v) for u, v in result.copy)

    def test_triangle_free_never_succeeds(self):
        graph = gen.grid_graph(5, 5)
        stream = insertion_stream(graph, rng=3)
        result = sample_subgraph_uniformly_stream(
            stream, pattern_zoo.triangle(), attempts=500, rng=4
        )
        assert not result.succeeded
        assert result.successes == 0

    def test_attempt_cap_respected(self):
        graph = gen.karate_club()
        stream = insertion_stream(graph, rng=5)
        result = sample_subgraph_uniformly_stream(
            stream, pattern_zoo.clique(4), copies_lower_bound=0.001,
            attempt_cap=200, rng=6,
        )
        assert result.attempts == 200


def _ablated_rate(graph, pattern, branches, attempts, seed):
    rng = ensure_rng(seed)
    oracle = DirectAugmentedOracle(graph, derive_rng(rng, "oracle"))
    generators = [
        subgraph_sampler_rounds(
            pattern, rng=derive_rng(rng, i), wedge_branches=branches
        )
        for i in range(attempts)
    ]
    outputs = run_round_adaptive(generators, oracle).outputs
    return sum(1 for output in outputs if output is not None) / attempts


class TestWedgeAblation:
    def test_unknown_setting_rejected(self):
        with pytest.raises(SketchError):
            list(
                subgraph_sampler_rounds(
                    pattern_zoo.triangle(), rng=1, wedge_branches="sideways"
                )
            )

    def test_low_only_suffices_on_low_degree_graph(self):
        graph = gen.karate_club()  # max degree 17 > sqrt(156)=12.5? deg(33)=17
        pattern = pattern_zoo.triangle()
        both = _ablated_rate(graph, pattern, WEDGE_BOTH, 8000, seed=11)
        low = _ablated_rate(graph, pattern, WEDGE_LOW_ONLY, 8000, seed=12)
        # Karate triangles all have a low-degree minimum vertex.
        assert low == pytest.approx(both, rel=0.25)

    def test_high_branch_needed_on_pendant_clique(self):
        from repro.experiments.a01_wedge_ablation import pendant_clique_graph

        graph = pendant_clique_graph(16, 6)
        pattern = pattern_zoo.triangle()
        truth = count_subgraphs(graph, pattern)
        assert truth == 560
        low = _ablated_rate(graph, pattern, WEDGE_LOW_ONLY, 4000, seed=13)
        high = _ablated_rate(graph, pattern, WEDGE_HIGH_ONLY, 12000, seed=14)
        both = _ablated_rate(graph, pattern, WEDGE_BOTH, 12000, seed=15)
        assert low == 0.0  # every triangle lives above the threshold
        assert high == pytest.approx(both, rel=0.3)
        theory = truth / (2.0 * graph.m) ** 1.5
        assert both == pytest.approx(theory, rel=0.25)

    def test_ablation_experiment_runs(self):
        from repro.experiments import a01_wedge_ablation

        table = a01_wedge_ablation.run(fast=True, seed=3)
        assert table.rows
        errors = [float(v) for v in table.column("both_err")]
        assert all(error < 0.2 for error in errors)
