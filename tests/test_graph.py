"""Unit tests for repro.graph.graph."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            normalize_edge(3, 3)


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(0)
        assert graph.n == 0
        assert graph.m == 0
        assert list(graph.edges()) == []

    def test_from_edges_infers_n(self):
        graph = Graph.from_edges([(0, 1), (4, 2)])
        assert graph.n == 5
        assert graph.m == 2

    def test_from_edges_explicit_n(self):
        graph = Graph.from_edges([(0, 1)], n=10)
        assert graph.n == 10

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_copy_is_independent(self):
        graph = Graph(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.m == 1
        assert clone.m == 2

    def test_equality_ignores_edge_order(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b


class TestMutation:
    def test_add_and_query(self):
        graph = Graph(4)
        graph.add_edge(0, 2)
        assert graph.has_edge(0, 2)
        assert graph.has_edge(2, 0)
        assert not graph.has_edge(0, 1)
        assert (0, 2) in graph

    def test_duplicate_edge_rejected(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.add_edge(1, 0)

    def test_add_edge_if_absent(self):
        graph = Graph(3, [(0, 1)])
        assert not graph.add_edge_if_absent(1, 0)
        assert graph.add_edge_if_absent(1, 2)
        assert graph.m == 2

    def test_self_loop_rejected(self):
        graph = Graph(3)
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_out_of_range_vertex(self):
        graph = Graph(3)
        with pytest.raises(GraphError):
            graph.add_edge(0, 3)

    def test_remove_edge(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert graph.m == 2
        assert not graph.has_edge(1, 2)
        assert graph.degree(1) == 1
        assert graph.degree(2) == 1

    def test_remove_absent_edge_raises(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.remove_edge(1, 2)

    def test_remove_keeps_edge_index_consistent(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        graph.remove_edge(0, 1)
        # Every remaining edge must still be retrievable by index.
        seen = {graph.edge_at(i) for i in range(graph.m)}
        assert seen == {(1, 2), (2, 3), (3, 4)}


class TestAccessors:
    def test_degrees(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degrees() == [3, 1, 1, 1]
        assert graph.max_degree() == 3

    def test_neighbor_at_follows_insertion_order(self):
        graph = Graph(4)
        graph.add_edge(0, 2)
        graph.add_edge(0, 1)
        graph.add_edge(0, 3)
        assert graph.neighbor_at(0, 0) == 2
        assert graph.neighbor_at(0, 1) == 1
        assert graph.neighbor_at(0, 2) == 3

    def test_neighbor_at_out_of_range(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            graph.neighbor_at(0, 1)

    def test_edge_at(self):
        graph = Graph(3, [(2, 1)])
        assert graph.edge_at(0) == (1, 2)


class TestDerivedViews:
    def test_subgraph_relabels(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
        sub, mapping = graph.subgraph([1, 2, 3])
        assert sub.n == 3
        assert sub.m == 3  # edges 1-2, 2-3, 1-3
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_connected_components(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)])
        components = graph.connected_components()
        assert [0, 1, 2] in components
        assert [3, 4] in components
        assert [5] in components
        assert not graph.is_connected()

    def test_is_connected(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert graph.is_connected()

    def test_complement_edges(self):
        graph = Graph(3, [(0, 1)])
        assert set(graph.complement_edges()) == {(0, 2), (1, 2)}
