"""Golden tests: the fused engine reproduces the sequential paths bit for bit.

The engine's contract (mirror mode) is that sharing the stream
iteration changes *nothing* about any individual estimator: same rng
consumption, same queries, same answers, same estimate — for
insertion-only, turnstile, 2-pass, ERS-clique, and the baseline
estimators, across adversarial-order and churny (adaptive) stream
scenarios, and for every batch size.
"""

import statistics

import pytest

from repro import (
    count_subgraphs_insertion_only,
    count_subgraphs_turnstile,
    count_subgraphs_two_pass,
    generators,
    insertion_stream,
    patterns,
)
from repro.baselines import (
    DoulionEstimator,
    ExactStreamEstimator,
    TriestEstimator,
    doulion_count,
    exact_stream_count,
    triest_count,
)
from repro.engine import (
    FusionMode,
    StreamEngine,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
    ers_clique_estimator,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
)
from repro.errors import EngineError
from repro.sketch.l0 import L0Sampler
from repro.sketch.reservoir import SingleReservoir, SkipAheadReservoirBank
from repro.streaming.ers.counter import count_cliques_stream
from repro.streams.generators import adversarial_order_stream, turnstile_churn_stream


def _insertion_fixture():
    graph = generators.barabasi_albert(220, 4, rng=11)
    return graph, insertion_stream(graph, rng=12)


def _assert_same_result(fused, sequential):
    assert fused.algorithm == sequential.algorithm
    assert fused.estimate == sequential.estimate
    assert fused.passes == sequential.passes
    assert fused.space_words == sequential.space_words
    assert fused.trials == sequential.trials
    assert fused.successes == sequential.successes
    assert fused.m == sequential.m
    assert fused.details == sequential.details


class TestMirrorEquivalence:
    def test_insertion_copies_match_sequential_runs(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        copies = 4
        sequential = [
            count_subgraphs_insertion_only(stream, pattern, trials=60, rng=100 + i)
            for i in range(copies)
        ]
        fused = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=copies,
            trials=60,
            mode=FusionMode.MIRROR,
            copy_rngs=[100 + i for i in range(copies)],
        )
        for fused_copy, sequential_copy in zip(fused.copies, sequential):
            _assert_same_result(fused_copy, sequential_copy)
        assert fused.estimate == statistics.median(r.estimate for r in sequential)

    def test_insertion_four_cycle_copies_match(self):
        _, stream = _insertion_fixture()
        pattern = patterns.cycle(4)
        sequential = [
            count_subgraphs_insertion_only(stream, pattern, trials=40, rng=7 + i)
            for i in range(3)
        ]
        fused = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=3,
            trials=40,
            mode=FusionMode.MIRROR,
            copy_rngs=[7, 8, 9],
        )
        for fused_copy, sequential_copy in zip(fused.copies, sequential):
            _assert_same_result(fused_copy, sequential_copy)

    def test_turnstile_copies_match_sequential_runs(self):
        graph = generators.gnp(40, 0.25, rng=3)
        stream = turnstile_churn_stream(graph, churn_edges=30, rng=4)
        assert stream.allows_deletions
        pattern = patterns.triangle()
        sequential = [
            count_subgraphs_turnstile(stream, pattern, trials=12, rng=50 + i)
            for i in range(3)
        ]
        fused = count_subgraphs_turnstile_fused(
            stream,
            pattern,
            copies=3,
            trials=12,
            mode=FusionMode.MIRROR,
            copy_rngs=[50, 51, 52],
        )
        for fused_copy, sequential_copy in zip(fused.copies, sequential):
            _assert_same_result(fused_copy, sequential_copy)

    def test_two_pass_copies_match_sequential_runs(self):
        _, stream = _insertion_fixture()
        pattern = patterns.cycle(4)
        sequential = [
            count_subgraphs_two_pass(stream, pattern, trials=40, rng=20 + i)
            for i in range(3)
        ]
        fused = count_subgraphs_two_pass_fused(
            stream,
            pattern,
            copies=3,
            trials=40,
            mode=FusionMode.MIRROR,
            copy_rngs=[20, 21, 22],
        )
        assert fused.passes == 2
        for fused_copy, sequential_copy in zip(fused.copies, sequential):
            _assert_same_result(fused_copy, sequential_copy)

    def test_adversarial_order_scenario_matches(self):
        graph = generators.power_law_cluster(150, 4, 0.5, rng=9)
        stream = adversarial_order_stream(graph)
        pattern = patterns.triangle()
        sequential = [
            count_subgraphs_insertion_only(stream, pattern, trials=30, rng=200 + i)
            for i in range(3)
        ]
        fused = count_subgraphs_insertion_only_fused(
            stream,
            pattern,
            copies=3,
            trials=30,
            mode=FusionMode.MIRROR,
            copy_rngs=[200, 201, 202],
        )
        for fused_copy, sequential_copy in zip(fused.copies, sequential):
            _assert_same_result(fused_copy, sequential_copy)

    def test_ers_clique_estimator_matches_one_shot(self):
        graph = generators.planted_cliques(60, 4, 5, noise_edges=40, rng=5)
        stream = insertion_stream(graph, rng=6)
        sequential = count_cliques_stream(
            stream, r=3, degeneracy_bound=10, lower_bound=5.0, rng=77
        )
        engine = StreamEngine(stream)
        engine.register(
            ers_clique_estimator(
                stream, r=3, degeneracy_bound=10, lower_bound=5.0, rng=77, name="ers"
            )
        )
        report = engine.run()
        _assert_same_result(report["ers"], sequential)

    def test_derived_copy_rngs_default_is_deterministic(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        first = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=3, trials=25, rng=5, mode=FusionMode.MIRROR
        )
        second = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=3, trials=25, rng=5, mode=FusionMode.MIRROR
        )
        assert first.estimates == second.estimates


class TestBaselineAndHeterogeneousEquivalence:
    def test_baselines_fused_match_one_shot(self):
        graph, stream = _insertion_fixture()
        pattern = patterns.triangle()
        sequential_triest = triest_count(stream, capacity=150, rng=31)
        sequential_doulion = doulion_count(stream, 0.5, pattern, rng=32)
        sequential_exact = exact_stream_count(stream, pattern)

        engine = StreamEngine(stream)
        engine.register(TriestEstimator(capacity=150, rng=31))
        engine.register(DoulionEstimator(stream.n, 0.5, pattern, rng=32))
        engine.register(ExactStreamEstimator(stream.n, pattern))
        report = engine.run()

        assert report.passes == 1
        assert report["triest"].estimate == sequential_triest.estimate
        assert report["doulion"].estimate == sequential_doulion.estimate
        assert report["doulion"].space_words == sequential_doulion.space_words
        assert report["exact"].estimate == sequential_exact.estimate

    def test_heterogeneous_registration_matches_each_sequential_path(self):
        graph, stream = _insertion_fixture()
        pattern = patterns.triangle()
        sequential_fgp = count_subgraphs_insertion_only(stream, pattern, trials=40, rng=41)
        sequential_triest = triest_count(stream, capacity=120, rng=42)

        engine = StreamEngine(stream)
        engine.register(fgp_insertion_estimator(stream, pattern, trials=40, rng=41, name="fgp"))
        engine.register(TriestEstimator(capacity=120, rng=42))
        report = engine.run()

        # The 3-pass FGP counter dictates the fused pass count; TRIEST
        # consumed only the first pass.
        assert report.passes == 3
        _assert_same_result(report["fgp"], sequential_fgp)
        assert report["triest"].estimate == sequential_triest.estimate
        assert report["triest"].passes == 1


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 100_000])
    def test_insertion_results_do_not_depend_on_batch_size(self, batch_size):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        sequential = count_subgraphs_insertion_only(stream, pattern, trials=30, rng=61)
        engine = StreamEngine(stream, batch_size=batch_size)
        engine.register(fgp_insertion_estimator(stream, pattern, trials=30, rng=61, name="fgp"))
        report = engine.run()
        _assert_same_result(report["fgp"], sequential)

    @pytest.mark.parametrize("batch_size", [1, 13, 4096])
    def test_turnstile_results_do_not_depend_on_batch_size(self, batch_size):
        graph = generators.gnp(30, 0.3, rng=13)
        stream = turnstile_churn_stream(graph, churn_edges=20, rng=14)
        pattern = patterns.triangle()
        sequential = count_subgraphs_turnstile(stream, pattern, trials=8, rng=71)
        engine = StreamEngine(stream, batch_size=batch_size)
        engine.register(fgp_turnstile_estimator(stream, pattern, trials=8, rng=71, name="fgp"))
        report = engine.run()
        _assert_same_result(report["fgp"], sequential)


class TestSharedMode:
    def test_shared_mode_produces_independent_copy_records(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        fused = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=6, trials=30, rng=91, mode=FusionMode.SHARED
        )
        assert fused.num_copies == 6
        assert fused.passes == 3
        assert stream.passes_used == 3
        assert len(set(id(copy) for copy in fused.copies)) == 6
        for index, copy in enumerate(fused.copies):
            assert copy.trials == 30
            assert copy.details["fused_copy"] == float(index)
        assert fused.estimate == statistics.median(fused.estimates)

    def test_shared_mode_is_deterministic_in_rng(self):
        _, stream = _insertion_fixture()
        pattern = patterns.triangle()
        first = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=4, trials=25, rng=17
        )
        second = count_subgraphs_insertion_only_fused(
            stream, pattern, copies=4, trials=25, rng=17
        )
        assert first.estimates == second.estimates

    def test_shared_mode_rejects_copy_rngs(self):
        _, stream = _insertion_fixture()
        with pytest.raises(EngineError):
            count_subgraphs_insertion_only_fused(
                stream,
                patterns.triangle(),
                copies=2,
                trials=5,
                mode=FusionMode.SHARED,
                copy_rngs=[1, 2],
            )


class TestBatchedSketchEquivalence:
    def test_single_reservoir_offer_many_matches_offer(self):
        one = SingleReservoir(rng=5)
        other = SingleReservoir(rng=5)
        items = list(range(500))
        for item in items:
            one.offer(item)
        other.offer_many(items)
        assert one.item == other.item
        assert one.count == other.count

    def test_skip_ahead_bank_offer_many_matches_offer(self):
        one = SkipAheadReservoirBank(37, rng=6)
        other = SkipAheadReservoirBank(37, rng=6)
        items = list(range(2000))
        for item in items:
            one.offer(item)
        # Mixed chunk sizes, including a tail chunk.
        other.offer_many(items[:512])
        other.offer_many(items[512:513])
        other.offer_many(items[513:])
        assert one.items() == other.items()
        assert one.count == other.count

    def test_one_sparse_update_many_matches_update(self):
        from repro.sketch.onesparse import OneSparseRecovery

        one = OneSparseRecovery(200, rng=11)
        other = OneSparseRecovery(200, z=one.z)
        updates = [(7, 1), (7, 1), (9, 1), (7, -1), (9, -1), (7, -1), (13, 1)]
        for item, delta in updates:
            one.update(item, delta)
        other.update_many(updates)
        assert one.recover() == other.recover() == (13, 1)
        assert one.is_empty == other.is_empty

    def test_l0_update_many_matches_update(self):
        one = L0Sampler(500, rng=7, repetitions=4)
        other = L0Sampler(500, rng=7, repetitions=4)
        updates = [(i, 1) for i in range(0, 400, 2)] + [(i, -1) for i in range(0, 100, 2)]
        for item, delta in updates:
            one.update(item, delta)
        other.update_many(updates)
        assert one.sample() == other.sample()
        assert one.is_empty() == other.is_empty()


class TestEngineApi:
    def test_duplicate_names_rejected(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream)
        engine.register(TriestEstimator(capacity=10, rng=1, name="a"))
        with pytest.raises(EngineError):
            engine.register(TriestEstimator(capacity=10, rng=2, name="a"))

    def test_run_without_estimators_rejected(self):
        _, stream = _insertion_fixture()
        with pytest.raises(EngineError):
            StreamEngine(stream).run()

    def test_engine_is_single_use(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream)
        engine.register(TriestEstimator(capacity=10, rng=1))
        engine.run()
        with pytest.raises(EngineError):
            engine.run()

    def test_result_before_finish_rejected(self):
        _, stream = _insertion_fixture()
        estimator = fgp_insertion_estimator(stream, patterns.triangle(), trials=5, rng=1)
        with pytest.raises(EngineError):
            estimator.result()

    def test_report_getitem(self):
        _, stream = _insertion_fixture()
        engine = StreamEngine(stream)
        engine.register(TriestEstimator(capacity=25, rng=9))
        report = engine.run()
        assert report["triest"].algorithm == "triest"
        assert report.elements == stream.length
