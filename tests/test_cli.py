"""Tests for the command-line interface (:mod:`repro.cli`)."""

import pytest

from repro.cli import build_parser, main, parse_pattern
from repro.errors import ReproError
from repro.graph import generators as gen
from repro.graph.io import write_edge_list


@pytest.fixture()
def karate_path(tmp_path):
    path = tmp_path / "karate.txt"
    write_edge_list(gen.karate_club(), path)
    return str(path)


class TestParsePattern:
    def test_fixed_names(self):
        assert parse_pattern("triangle").name == "triangle"
        assert parse_pattern("paw").name == "paw"
        assert parse_pattern("gem").name == "gem"

    def test_family_names(self):
        assert parse_pattern("P4").num_vertices == 4
        assert parse_pattern("C5").num_edges == 5
        assert parse_pattern("K4").num_edges == 6
        assert parse_pattern("S3").num_vertices == 4
        assert parse_pattern("M2").num_edges == 2
        assert parse_pattern("B2").name == "B2"
        assert parse_pattern("W4").name == "W4"

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            parse_pattern("Q7")
        with pytest.raises(ReproError):
            parse_pattern("Px")


class TestCliCommands:
    def test_generate_and_exact(self, tmp_path, capsys):
        out = str(tmp_path / "g.txt")
        assert main(["generate", "gnp", out, "--n", "30", "--p", "0.2", "--seed", "5"]) == 0
        captured = capsys.readouterr().out
        assert "wrote gnp graph" in captured
        assert main(["exact", out, "triangle"]) == 0
        count = int(capsys.readouterr().out.strip())
        assert count >= 0

    def test_exact_karate_triangles(self, karate_path, capsys):
        assert main(["exact", karate_path, "triangle"]) == 0
        assert capsys.readouterr().out.strip() == "45"

    def test_count_insertion(self, karate_path, capsys):
        code = main(
            ["count", karate_path, "triangle", "--trials", "3000", "--seed", "3", "--truth"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fgp-3pass-insertion" in output
        assert "passes=3" in output
        assert "exact=#45" in output

    def test_count_two_pass(self, karate_path, capsys):
        code = main(["count", karate_path, "P3", "--algorithm", "two-pass",
                     "--trials", "2000", "--seed", "4"])
        assert code == 0
        assert "passes=2" in capsys.readouterr().out

    def test_count_two_pass_rejects_triangle(self, karate_path, capsys):
        code = main(["count", karate_path, "triangle", "--algorithm", "two-pass",
                     "--trials", "10"])
        assert code == 1
        assert "star-only" in capsys.readouterr().err

    def test_count_adaptive(self, karate_path, capsys):
        code = main(["count", karate_path, "triangle", "--adaptive",
                     "--epsilon", "0.4", "--seed", "8", "--truth"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fgp-3pass-geometric" in output
        assert "exact=#45" in output

    def test_count_parallel(self, karate_path, capsys):
        code = main(
            ["count", karate_path, "triangle", "--parallel", "--workers", "2",
             "--copies", "3", "--trials", "400", "--seed", "3", "--truth"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "backend=process" in output
        assert "mode=mirror" in output
        assert "copies=3" in output
        assert "passes=3" in output
        assert "exact=#45" in output

    def test_count_backend_thread(self, karate_path, capsys):
        code = main(
            ["count", karate_path, "triangle", "--backend", "thread",
             "--workers", "2", "--copies", "3", "--trials", "400",
             "--seed", "3", "--truth"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "backend=thread" in output
        assert "exact=#45" in output

    def test_count_parallel_matches_serial_copies(self, karate_path, capsys):
        # Mirror mode: the backend must not change the estimate.
        assert main(["count", karate_path, "triangle", "--copies", "3",
                     "--trials", "400", "--seed", "3"]) == 0
        serial = capsys.readouterr().out
        for flags in (["--parallel", "--workers", "2"],
                      ["--backend", "thread", "--workers", "2"],
                      ["--backend", "process"]):
            assert main(["count", karate_path, "triangle", "--copies", "3",
                         "--trials", "400", "--seed", "3", *flags]) == 0
            parallel = capsys.readouterr().out
            assert serial.split("median=")[1].split()[0] == \
                parallel.split("median=")[1].split()[0]

    def test_count_batch_size_is_result_invariant(self, karate_path, capsys):
        assert main(["count", karate_path, "triangle", "--copies", "3",
                     "--trials", "400", "--seed", "3"]) == 0
        default = capsys.readouterr().out
        assert main(["count", karate_path, "triangle", "--copies", "3",
                     "--trials", "400", "--seed", "3",
                     "--batch-size", "7"]) == 0
        tiny_batches = capsys.readouterr().out
        assert default.split("median=")[1].split()[0] == \
            tiny_batches.split("median=")[1].split()[0]

    def test_count_batch_size_requires_fused_and_positive(self, karate_path, capsys):
        assert main(["count", karate_path, "triangle",
                     "--batch-size", "64"]) == 2
        assert "--batch-size" in capsys.readouterr().err
        assert main(["count", karate_path, "triangle", "--copies", "2",
                     "--batch-size", "0"]) == 2
        assert "--batch-size must be >= 1" in capsys.readouterr().err

    def test_count_parallel_rejects_adaptive(self, karate_path, capsys):
        code = main(["count", karate_path, "triangle", "--adaptive", "--parallel"])
        assert code == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_count_rejects_dangling_fused_flags(self, karate_path, capsys):
        # Flags that would otherwise be silently ignored must error.
        assert main(["count", karate_path, "triangle", "--mode", "shared"]) == 2
        assert "--mode" in capsys.readouterr().err
        assert main(["count", karate_path, "triangle", "--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["count", karate_path, "triangle", "--parallel",
                     "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_count_rejects_contradictory_backend_flags(self, karate_path, capsys):
        assert main(["count", karate_path, "triangle", "--parallel",
                     "--backend", "serial"]) == 2
        assert "--parallel" in capsys.readouterr().err
        assert main(["count", karate_path, "triangle", "--backend", "serial",
                     "--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_experiments_rejects_workers_without_parallel(self, capsys):
        assert main(["experiments", "--only", "e10", "--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_count_turnstile(self, karate_path, capsys):
        code = main(["count", karate_path, "triangle", "--algorithm", "turnstile",
                     "--trials", "500", "--churn", "20", "--seed", "6"])
        assert code == 0
        assert "turnstile" in capsys.readouterr().out

    def test_ers(self, karate_path, capsys):
        code = main(["ers", karate_path, "--r", "3", "--seed", "7", "--truth"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ers-" in output
        assert "exact=#45" in output

    def test_covers(self, capsys):
        assert main(["covers", "C5"]) == 0
        output = capsys.readouterr().out
        assert "rho (LP)       2.5" in output
        assert "odd cycles     [5]" in output

    def test_covers_list(self, capsys):
        assert main(["covers", "--list"]) == 0
        names = capsys.readouterr().out.split()
        assert "triangle" in names and "gem" in names

    def test_covers_requires_pattern(self, capsys):
        assert main(["covers"]) == 2

    def test_missing_file(self, capsys):
        assert main(["exact", "/nonexistent/g.txt", "triangle"]) == 1

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "exact", "count", "ers", "covers", "experiments"):
            assert command in text

    def test_experiments_subcommand(self, capsys):
        assert main(["experiments", "--only", "e10"]) == 0
        assert "E10" in capsys.readouterr().out

    def test_python_dash_m_entry_point(self, tmp_path):
        # ``python -m repro`` must work as a real subprocess.
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "covers", "triangle"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "rho (LP)       1.5" in completed.stdout

class TestConvertAndDiskStreams:
    @pytest.fixture()
    def snap_path(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# comment\n5 9\n9 5\n3 3\n% other comment\n4294967299 5 123\n5 9\n",
            encoding="utf-8",
        )
        return str(path)

    def test_convert_snap_to_binary(self, snap_path, tmp_path, capsys):
        out = str(tmp_path / "snap.reb")
        assert main(["convert", snap_path, out]) == 0
        captured = capsys.readouterr().out
        assert "wrote insertion-only stream" in captured
        assert "n=4 length=2 m=2" in captured

    def test_convert_to_npz(self, snap_path, tmp_path, capsys):
        out = str(tmp_path / "snap.npz")
        assert main(["convert", snap_path, out]) == 0
        assert "n=4 length=2 m=2" in capsys.readouterr().out

    def test_count_on_converted_stream_matches_across_caches(
        self, karate_path, tmp_path, capsys
    ):
        out = str(tmp_path / "karate.reb")
        assert main(["convert", karate_path, out]) == 0
        capsys.readouterr()
        medians = {}
        for flags in (["--cache", "all"],
                      ["--cache", "lru", "--cache-budget", "8k"],
                      ["--cache", "none"]):
            code = main(["count", out, "triangle", "--copies", "3",
                         "--trials", "200", "--seed", "4", "--truth"] + flags)
            assert code == 0
            output = capsys.readouterr().out
            assert "fgp-3pass-insertion" in output
            medians[tuple(flags)] = output.split("median=")[1].split()[0]
        assert len(set(medians.values())) == 1

    def test_count_disk_rejects_adaptive(self, karate_path, tmp_path, capsys):
        out = str(tmp_path / "karate.reb")
        assert main(["convert", karate_path, out]) == 0
        capsys.readouterr()
        assert main(["count", out, "triangle", "--adaptive"]) == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_cache_budget_requires_lru(self, karate_path, capsys):
        code = main(["count", karate_path, "triangle", "--copies", "2",
                     "--trials", "50", "--cache", "all",
                     "--cache-budget", "1M"])
        assert code == 2
        assert "--cache-budget requires --cache lru" in capsys.readouterr().err

    def test_count_disk_rejects_churn(self, karate_path, tmp_path, capsys):
        out = str(tmp_path / "karate.reb")
        assert main(["convert", karate_path, out]) == 0
        capsys.readouterr()
        code = main(["count", out, "triangle", "--algorithm", "turnstile",
                     "--churn", "10"])
        assert code == 2
        assert "--churn" in capsys.readouterr().err

    def test_cache_flag_on_in_memory_fused_run(self, karate_path, capsys):
        code = main(["count", karate_path, "triangle", "--copies", "2",
                     "--trials", "100", "--seed", "2", "--cache", "lru",
                     "--cache-budget", "4k"])
        assert code == 0
        assert "fgp-3pass-insertion" in capsys.readouterr().out


class TestCliWorlds:
    FAST = ["--families", "gnp", "--scenarios", "insertion",
            "--estimators", "insertion", "--patterns", "triangle",
            "--budgets", "30", "--copies", "2", "--seed", "5"]

    def test_list_cells(self, capsys):
        assert main(["worlds", "--list-cells", *self.FAST]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[-1] == "1 cell(s)"
        assert out[0] == "gnp(n=64,p=0.15)|insertion|insertion|triangle|t30"

    def test_tiny_sweep_writes_schema_valid_json(self, tmp_path, capsys):
        import json

        from repro.worlds import validate_sweep_document

        out = str(tmp_path / "sweep.json")
        assert main(["worlds", "--out", out, *self.FAST]) == 0
        stdout = capsys.readouterr().out
        assert "wrote 1 cell(s)" in stdout
        with open(out, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        validate_sweep_document(document)
        assert document["rows"][0]["estimator"] == "insertion"

    def test_resume_reuses_cells(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.json")
        assert main(["worlds", "--out", out, *self.FAST]) == 0
        capsys.readouterr()
        assert main(["worlds", "--out", out, "--resume", *self.FAST]) == 0
        assert "reused" in capsys.readouterr().out

    def test_grid_file_contradicts_shaping_flags(self, tmp_path, capsys):
        import json

        grid = str(tmp_path / "grid.json")
        with open(grid, "w", encoding="utf-8") as handle:
            json.dump({"families": ["gnp"], "budgets": [10]}, handle)
        assert main(["worlds", "--grid", grid, "--copies", "2"]) == 2
        assert "--grid carries the full spec" in capsys.readouterr().err

    def test_invalid_grid_values_exit_one(self, capsys):
        # Parse-time validation: WorldsError is a ReproError, so main()
        # reports it on stderr and exits 1 before any cell runs.
        assert main(["worlds", "--list-cells", "--deletion-rate", "-0.5",
                     "--scenarios", "deletion_heavy",
                     "--families", "gnp"]) == 1
        assert "deletion rate" in capsys.readouterr().err
        assert main(["worlds", "--list-cells", "--epsilon", "0",
                     "--families", "gnp"]) == 1
        assert "epsilon" in capsys.readouterr().err

    def test_cells_selector_matching_nothing_exits_one(self, capsys):
        assert main(["worlds", "--cells", "no-such-cell", *self.FAST]) == 1
        assert "match none" in capsys.readouterr().err


class TestCliLive:
    def test_live_feed_query_checkpoint_resume(self, karate_path, tmp_path, capsys):
        checkpoint = str(tmp_path / "live.ckpt")
        code = main(["live", karate_path, "triangle", "--copies", "2",
                     "--trials", "120", "--seed", "3", "--feed-chunk", "20",
                     "--query-every", "30",
                     "--checkpoint", checkpoint, "--checkpoint-every", "40"])
        assert code == 0
        output = capsys.readouterr().out
        assert "query elements=" in output
        assert "checkpoint elements=" in output
        final = [line for line in output.splitlines() if line.startswith("final")]
        assert len(final) == 1

        # Resume from the (complete) checkpoint: every update is skipped
        # and the final median is reproduced bit for bit.
        code = main(["live", karate_path, "triangle", "--copies", "2",
                     "--trials", "120", "--seed", "3", "--feed-chunk", "20",
                     "--checkpoint", checkpoint, "--resume"])
        assert code == 0
        resumed = capsys.readouterr().out
        assert "resumed from" in resumed
        resumed_final = [line for line in resumed.splitlines()
                         if line.startswith("final")]
        assert resumed_final == final

    def test_live_resume_mid_stream_matches_uninterrupted(self, karate_path,
                                                          tmp_path, capsys):
        checkpoint = str(tmp_path / "live.ckpt")
        # Uninterrupted CLI run.
        assert main(["live", karate_path, "triangle", "--copies", "2",
                     "--trials", "80", "--seed", "5"]) == 0
        uninterrupted = capsys.readouterr().out.splitlines()[-1]

        # Simulate a crash after 30 updates: build the same engine the
        # CLI builds (same spec names/seeds/stream order), feed a
        # prefix, snapshot, and let the CLI resume the remainder.
        from repro.engine import EstimatorSpec, LiveEngine
        from repro.engine.estimators import fgp_insertion_estimator
        from repro.graph.io import read_edge_list
        from repro.streams.stream import insertion_stream

        stream = insertion_stream(read_edge_list(karate_path), rng=5)
        engine = LiveEngine(n=stream.n, batch_size=4096)
        for index in range(2):
            name = f"copy-{index}"
            engine.register_spec(EstimatorSpec(
                name=name, factory=fgp_insertion_estimator,
                kwargs=dict(pattern=parse_pattern("triangle"), trials=80,
                            rng=5 + 1 + index, name=name),
            ))
        u, v, d = stream.columns()
        engine.feed((u[:30], v[:30], d[:30]))
        engine.snapshot(checkpoint)

        assert main(["live", karate_path, "triangle", "--copies", "2",
                     "--trials", "80", "--seed", "5",
                     "--checkpoint", checkpoint, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed from" in resumed
        assert resumed.splitlines()[-1] == uninterrupted

    def test_live_stdin_requires_n(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 1\n"))
        assert main(["live", "-", "triangle", "--trials", "10"]) == 1
        assert "--n" in capsys.readouterr().err

    def test_live_checkpoint_every_requires_checkpoint(self, karate_path, capsys):
        assert main(["live", karate_path, "triangle",
                     "--checkpoint-every", "10"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_live_stdin_turnstile(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("0 1\n1 2\n0 2\n# comment\n0 1 -1\n")
        )
        code = main(["live", "-", "triangle", "--algorithm", "turnstile",
                     "--n", "6", "--copies", "2", "--trials", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "final elements=4 m=2" in out


class TestLiveDegradedReport:
    """``repro live`` under full degradation: exit 2, not a traceback.

    Regression tier: the report path used to call ``statistics.median``
    on an empty estimate dict and die with a bare ``StatisticsError``.
    """

    def test_fully_degraded_report_exits_two(self, karate_path, monkeypatch,
                                             capsys):
        from repro.engine.live import LiveEngine
        from repro.errors import EngineError

        def raise_all_lost(self, names=None):
            raise EngineError(
                "every registered estimator was lost with its worker "
                "(lost: copy-0, copy-1); no estimates survive"
            )

        monkeypatch.setattr(LiveEngine, "estimate", raise_all_lost)
        code = main(["live", karate_path, "triangle", "--copies", "2",
                     "--trials", "50", "--seed", "3"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot report an estimate" in err
        assert "copy-0" in err


class TestServeCommand:
    """Flag validation for ``repro serve`` (the server itself is
    exercised end-to-end in tests/test_service.py)."""

    def test_scheduled_checkpoints_require_root(self, capsys):
        assert main(["serve", "--checkpoint-every", "10"]) == 2
        assert "--root" in capsys.readouterr().err

    def test_bad_feed_byte_budget_exits_two(self, capsys):
        assert main(["serve", "--max-feed-bytes", "lots"]) == 2
        assert "--max-feed-bytes" in capsys.readouterr().err

    def test_bad_limits_exit_two(self, capsys):
        assert main(["serve", "--max-streams", "0"]) == 2
        assert "--max-streams" in capsys.readouterr().err
        assert main(["serve", "--max-deltas", "0"]) == 2
        assert "--max-deltas" in capsys.readouterr().err
