"""Tests for the direct query-model oracles (Definitions 6 and 10)."""

from collections import Counter

import pytest

from repro.errors import OracleError
from repro.graph import generators as gen
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    QueryAccounting,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.oracle.direct import (
    DirectAugmentedOracle,
    DirectGeneralOracle,
    DirectRelaxedOracle,
)


@pytest.fixture
def graph():
    return gen.karate_club()


class TestAugmentedOracle:
    def test_degree(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        assert oracle.degree(0) == graph.degree(0)

    def test_neighbor_indexing(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        for index in range(graph.degree(0)):
            assert oracle.neighbor(0, index) == graph.neighbor_at(0, index)
        assert oracle.neighbor(0, graph.degree(0)) is None

    def test_negative_neighbor_index_rejected(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        with pytest.raises(OracleError):
            oracle.neighbor(0, -1)

    def test_adjacency(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        assert oracle.adjacent(0, 1)
        assert not oracle.adjacent(0, 9)

    def test_edge_count(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        assert oracle.edge_count() == graph.m

    def test_random_edge_uniform(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=5)
        counts = Counter(oracle.random_edge() for _ in range(8000))
        assert set(counts) <= set(graph.edges())
        expected = 8000 / graph.m
        assert all(0.4 * expected <= c <= 1.8 * expected for c in counts.values())

    def test_random_edge_empty_graph(self):
        from repro.graph.graph import Graph

        oracle = DirectAugmentedOracle(Graph(5), rng=1)
        assert oracle.random_edge() is None

    def test_random_neighbor_rejected_in_strict_model(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        with pytest.raises(OracleError):
            oracle.random_neighbor(0)

    def test_answer_batch_positional(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        batch = [
            EdgeCountQuery(),
            DegreeQuery(0),
            AdjacencyQuery(0, 1),
            NeighborQuery(0, 0),
        ]
        answers = oracle.answer_batch(batch)
        assert answers[0] == graph.m
        assert answers[1] == graph.degree(0)
        assert answers[2] is True
        assert answers[3] == graph.neighbor_at(0, 0)

    def test_accounting(self, graph):
        oracle = DirectAugmentedOracle(graph, rng=1)
        oracle.answer_batch([DegreeQuery(0), DegreeQuery(1), RandomEdgeQuery()])
        assert oracle.accounting.total == 3
        assert oracle.accounting.by_type()["DegreeQuery"] == 2


class TestGeneralOracle:
    def test_no_random_edges(self, graph):
        oracle = DirectGeneralOracle(graph, rng=1)
        with pytest.raises(OracleError):
            oracle.random_edge()

    def test_other_queries_still_work(self, graph):
        oracle = DirectGeneralOracle(graph, rng=1)
        assert oracle.degree(0) == graph.degree(0)


class TestRelaxedOracle:
    def test_random_neighbor_uniform(self, graph):
        oracle = DirectRelaxedOracle(graph, rng=3)
        counts = Counter(oracle.random_neighbor(0) for _ in range(6000))
        neighbors = set(graph.neighbors(0))
        assert set(counts) <= neighbors
        expected = 6000 / len(neighbors)
        assert all(0.5 * expected <= c <= 1.6 * expected for c in counts.values())

    def test_random_neighbor_isolated(self):
        from repro.graph.graph import Graph

        host = Graph(3, [(0, 1)])
        oracle = DirectRelaxedOracle(host, rng=1)
        assert oracle.random_neighbor(2) is None

    def test_indexed_neighbor_rejected(self, graph):
        oracle = DirectRelaxedOracle(graph, rng=1)
        with pytest.raises(OracleError):
            oracle.neighbor(0, 0)

    def test_failure_injection(self, graph):
        oracle = DirectRelaxedOracle(graph, rng=7, failure_probability=0.5)
        outcomes = [oracle.random_edge() for _ in range(2000)]
        failures = sum(1 for outcome in outcomes if outcome is None)
        assert 800 <= failures <= 1200

    def test_invalid_failure_probability(self, graph):
        with pytest.raises(OracleError):
            DirectRelaxedOracle(graph, rng=1, failure_probability=1.0)

    def test_batch_random_neighbor(self, graph):
        oracle = DirectRelaxedOracle(graph, rng=2)
        answers = oracle.answer_batch([RandomNeighborQuery(0)])
        assert answers[0] in set(graph.neighbors(0))


class TestQueryAccounting:
    def test_counts_by_type(self):
        accounting = QueryAccounting()
        accounting.record_batch([DegreeQuery(1), DegreeQuery(2), EdgeCountQuery()])
        assert accounting.total == 3
        assert accounting.by_type() == {"DegreeQuery": 2, "EdgeCountQuery": 1}
