"""Tests for pattern constructors and cached invariants."""

import pytest

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.patterns import pattern as pattern_zoo
from repro.patterns.pattern import Pattern


class TestConstruction:
    def test_isolated_vertex_rejected(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(PatternError):
            Pattern(graph)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern(Graph(0))

    def test_pattern_copies_graph(self):
        graph = Graph(2, [(0, 1)])
        pattern = Pattern(graph, name="e")
        graph.remove_edge(0, 1)
        assert pattern.num_edges == 1

    def test_default_name(self):
        pattern = Pattern(Graph(2, [(0, 1)]))
        assert "n=2" in pattern.name

    def test_equality_is_labelled(self):
        assert pattern_zoo.triangle() == pattern_zoo.cycle(3)
        assert pattern_zoo.triangle() != pattern_zoo.path(3)
        # path(3) and star(2) are isomorphic but differently labelled.
        from repro.patterns.isomorphism import is_subgraph_of

        assert is_subgraph_of(pattern_zoo.path(3).graph, pattern_zoo.star(2).graph)
        assert is_subgraph_of(pattern_zoo.star(2).graph, pattern_zoo.path(3).graph)


class TestNamedPatterns:
    def test_clique_sizes(self):
        for r in (2, 3, 4, 5):
            pattern = pattern_zoo.clique(r)
            assert pattern.num_vertices == r
            assert pattern.num_edges == r * (r - 1) // 2

    def test_invalid_sizes(self):
        with pytest.raises(PatternError):
            pattern_zoo.clique(1)
        with pytest.raises(PatternError):
            pattern_zoo.cycle(2)
        with pytest.raises(PatternError):
            pattern_zoo.star(0)
        with pytest.raises(PatternError):
            pattern_zoo.path(1)
        with pytest.raises(PatternError):
            pattern_zoo.matching(0)

    def test_star_structure(self):
        pattern = pattern_zoo.star(4)
        assert pattern.degree(0) == 4
        assert all(pattern.degree(v) == 1 for v in range(1, 5))

    def test_matching_is_disconnected(self):
        assert not pattern_zoo.matching(2).graph.is_connected()

    def test_zoo_nonempty_and_distinctly_named(self):
        zoo = pattern_zoo.standard_zoo()
        names = [p.name for p in zoo]
        assert len(names) == len(set(names))
        assert len(zoo) >= 10


class TestCachedInvariants:
    def test_rho_closed_forms(self):
        assert pattern_zoo.triangle().rho() == pytest.approx(1.5)
        assert pattern_zoo.cycle(5).rho() == pytest.approx(2.5)
        assert pattern_zoo.cycle(7).rho() == pytest.approx(3.5)
        assert pattern_zoo.cycle(4).rho() == pytest.approx(2.0)
        assert pattern_zoo.star(4).rho() == pytest.approx(4.0)
        assert pattern_zoo.clique(5).rho() == pytest.approx(2.5)
        assert pattern_zoo.clique(6).rho() == pytest.approx(3.0)

    def test_rho_matches_known_table(self):
        for pattern in pattern_zoo.standard_zoo():
            known = pattern_zoo.KNOWN_RHO.get(pattern.name)
            if known is not None:
                assert pattern.rho() == pytest.approx(known), pattern.name

    def test_family_count_known_values(self):
        assert pattern_zoo.edge().family_count() == 2
        assert pattern_zoo.triangle().family_count() == 1
        assert pattern_zoo.cycle(5).family_count() == 1
        assert pattern_zoo.path(4).family_count() == 8
        assert pattern_zoo.clique(4).family_count() == 24
        assert pattern_zoo.cycle(4).family_count() == 16

    def test_automorphism_counts(self):
        assert pattern_zoo.triangle().automorphism_count() == 6
        assert pattern_zoo.clique(4).automorphism_count() == 24
        assert pattern_zoo.cycle(5).automorphism_count() == 10
        assert pattern_zoo.star(3).automorphism_count() == 6
        assert pattern_zoo.path(4).automorphism_count() == 2
        assert pattern_zoo.matching(2).automorphism_count() == 8

    def test_beta_closed_forms(self):
        # Footnote 1: beta(K_r) = beta(C_r) = ceil(r/2).
        assert pattern_zoo.clique(4).beta() == 2
        assert pattern_zoo.clique(5).beta() == 3
        assert pattern_zoo.cycle(6).beta() == 3
        assert pattern_zoo.cycle(7).beta() == 4

    def test_invariant_caching_returns_same_object(self):
        pattern = pattern_zoo.clique(4)
        assert pattern.decomposition() is pattern.decomposition()
