"""Tests for canonical cycles and stars (Definitions 13-14).

The key property the FGP probability accounting needs: every cycle
subgraph has exactly one canonical vertex sequence, and every
(center, petal-set) star has exactly one.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.graph.order import VertexOrder
from repro.patterns.canonical import (
    canonical_cycle_sequence,
    canonical_star_sequence,
    is_canonical_cycle,
    is_canonical_star,
)


def _order_from_degrees(degrees):
    return VertexOrder(dict(enumerate(degrees)))


def _edge_fn(edges):
    edge_set = {tuple(sorted(e)) for e in edges}

    def has_edge(u, v):
        return tuple(sorted((u, v))) in edge_set

    return has_edge


class TestCanonicalCycle:
    def test_triangle_has_exactly_one_canonical_sequence(self):
        order = _order_from_degrees([1, 2, 3])
        has_edge = _edge_fn([(0, 1), (1, 2), (0, 2)])
        canonical = [
            seq
            for seq in itertools.permutations([0, 1, 2])
            if is_canonical_cycle(seq, order, has_edge)
        ]
        # Start at the minimum (0); orientation fixed by last < second.
        assert canonical == [(0, 2, 1)]

    def test_five_cycle_uniqueness(self):
        vertices = list(range(5))
        edges = [(i, (i + 1) % 5) for i in range(5)]
        order = _order_from_degrees([3, 1, 4, 2, 5])
        has_edge = _edge_fn(edges)
        canonical = [
            seq
            for seq in itertools.permutations(vertices)
            if is_canonical_cycle(seq, order, has_edge)
        ]
        assert len(canonical) == 1
        sequence = canonical[0]
        # Starts at the order-minimum and last precedes second.
        assert sequence[0] == 1
        assert order.precedes(sequence[-1], sequence[1])

    def test_canonicalize_matches_predicate(self):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        order = _order_from_degrees([9, 5, 7, 2, 4])
        has_edge = _edge_fn(edges)
        sequence = canonical_cycle_sequence([0, 1, 2, 3, 4], order)
        assert is_canonical_cycle(sequence, order, has_edge)

    def test_rejects_missing_edge(self):
        order = _order_from_degrees([1, 2, 3])
        has_edge = _edge_fn([(0, 1), (1, 2)])  # open path, no closure
        assert not is_canonical_cycle((0, 1, 2), order, has_edge)

    def test_rejects_repeats(self):
        order = _order_from_degrees([1, 2, 3])
        has_edge = _edge_fn([(0, 1), (1, 2), (0, 2)])
        assert not is_canonical_cycle((0, 1, 0), order, has_edge)

    def test_too_short_rejected(self):
        order = _order_from_degrees([1, 2])
        with pytest.raises(PatternError):
            canonical_cycle_sequence([0, 1], order)


class TestCanonicalStar:
    def test_unique_per_center(self):
        order = _order_from_degrees([5, 1, 2, 3])
        has_edge = _edge_fn([(0, 1), (0, 2), (0, 3)])
        sequences = [
            (0, *petals)
            for petals in itertools.permutations([1, 2, 3])
            if is_canonical_star((0, *petals), order, has_edge)
        ]
        assert sequences == [(0, 1, 2, 3)]

    def test_single_petal_both_orientations(self):
        order = _order_from_degrees([2, 2])
        has_edge = _edge_fn([(0, 1)])
        assert is_canonical_star((0, 1), order, has_edge)
        assert is_canonical_star((1, 0), order, has_edge)

    def test_rejects_nonedge_petal(self):
        order = _order_from_degrees([1, 2, 3])
        has_edge = _edge_fn([(0, 1)])
        assert not is_canonical_star((0, 1, 2), order, has_edge)

    def test_canonicalize(self):
        order = _order_from_degrees([9, 3, 1, 5])
        sequence = canonical_star_sequence(0, [1, 2, 3], order)
        assert sequence == (0, 2, 1, 3)

    def test_empty_petals_rejected(self):
        order = _order_from_degrees([1])
        with pytest.raises(PatternError):
            canonical_star_sequence(0, [], order)


@st.composite
def random_cycles(draw):
    length = draw(st.sampled_from([3, 5, 7]))
    degrees = draw(
        st.lists(
            st.integers(min_value=1, max_value=30),
            min_size=length,
            max_size=length,
        )
    )
    return length, degrees


class TestUniquenessProperty:
    @given(random_cycles())
    @settings(max_examples=40, deadline=None)
    def test_exactly_one_canonical_sequence_per_cycle(self, case):
        """For any degree assignment, a cycle subgraph has exactly one
        canonical sequence — the bijection the FGP analysis needs."""
        length, degrees = case
        edges = [(i, (i + 1) % length) for i in range(length)]
        order = _order_from_degrees(degrees)
        has_edge = _edge_fn(edges)
        canonical = [
            seq
            for seq in itertools.permutations(range(length))
            if is_canonical_cycle(seq, order, has_edge)
        ]
        assert len(canonical) == 1
        assert canonical[0] == canonical_cycle_sequence(list(range(length)), order)
