"""Tests for the query->streaming transformation (Theorems 9 and 11).

The emulators must answer every query *exactly* like the direct oracle
(degrees, adjacency, edge count, indexed neighbors in arrival order)
or with the right distribution (random edges / neighbors).
"""

from collections import Counter

import pytest

from repro.errors import OracleError
from repro.graph import generators as gen
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.streams.generators import turnstile_churn_stream
from repro.streams.stream import EdgeStream, Update, insertion_stream
from repro.transform.driver import parallel_rounds, run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle
from repro.transform.turnstile import _edge_from_id, _edge_id


@pytest.fixture
def graph():
    return gen.gnp(25, 0.3, rng=42)


class TestInsertionEmulation:
    def test_rejects_turnstile_streams(self, graph):
        stream = turnstile_churn_stream(graph, 5, rng=1)
        with pytest.raises(OracleError):
            InsertionStreamOracle(stream)

    def test_exact_queries_match_graph(self, graph):
        stream = insertion_stream(graph, rng=2)
        oracle = InsertionStreamOracle(stream, rng=3)
        batch = [EdgeCountQuery()] + [DegreeQuery(v) for v in range(10)] + [
            AdjacencyQuery(u, v) for u in range(5) for v in range(u + 1, 5)
        ]
        answers = oracle.answer_batch(batch)
        assert answers[0] == graph.m
        for v in range(10):
            assert answers[1 + v] == graph.degree(v)
        offset = 11
        for i, (u, v) in enumerate(
            (u, v) for u in range(5) for v in range(u + 1, 5)
        ):
            assert answers[offset + i] == graph.has_edge(u, v)

    def test_one_pass_per_batch(self, graph):
        stream = insertion_stream(graph, rng=2)
        oracle = InsertionStreamOracle(stream, rng=3)
        oracle.answer_batch([EdgeCountQuery()])
        oracle.answer_batch([DegreeQuery(0)])
        assert oracle.passes_used == 2

    def test_indexed_neighbor_follows_arrival_order(self):
        updates = [Update(0, 3), Update(1, 2), Update(0, 4), Update(0, 2)]
        stream = EdgeStream(5, updates)
        oracle = InsertionStreamOracle(stream, rng=1)
        answers = oracle.answer_batch(
            [NeighborQuery(0, 0), NeighborQuery(0, 1), NeighborQuery(0, 2), NeighborQuery(0, 3)]
        )
        assert answers == [3, 4, 2, None]

    def test_random_edge_uniform_over_stream(self, graph):
        stream = insertion_stream(graph, rng=4)
        oracle = InsertionStreamOracle(stream, rng=5)
        answers = oracle.answer_batch([RandomEdgeQuery() for _ in range(3000)])
        counts = Counter(answers)
        assert set(counts) <= set(graph.edges())
        expected = 3000 / graph.m
        assert all(c <= 3 * expected for c in counts.values())

    def test_random_neighbor_supported(self, graph):
        stream = insertion_stream(graph, rng=6)
        oracle = InsertionStreamOracle(stream, rng=7)
        vertex = max(graph.vertices(), key=graph.degree)
        answers = oracle.answer_batch([RandomNeighborQuery(vertex) for _ in range(500)])
        assert set(answers) <= set(graph.neighbors(vertex))

    def test_space_charged_and_released(self, graph):
        stream = insertion_stream(graph, rng=8)
        oracle = InsertionStreamOracle(stream, rng=9)
        oracle.answer_batch([DegreeQuery(0), RandomEdgeQuery()])
        assert oracle.space.peak_words >= 3
        assert oracle.space.current_words == 0


class TestTurnstileEmulation:
    def test_edge_id_roundtrip(self):
        n = 12
        seen = set()
        for u in range(n):
            for v in range(u + 1, n):
                identifier = _edge_id(u, v, n)
                assert _edge_from_id(identifier, n) == (u, v)
                seen.add(identifier)
        assert seen == set(range(n * (n - 1) // 2))

    def test_exact_queries_respect_deletions(self, graph):
        stream = turnstile_churn_stream(graph, 20, rng=10)
        oracle = TurnstileStreamOracle(stream, rng=11, sampler_repetitions=3)
        batch = [EdgeCountQuery()] + [DegreeQuery(v) for v in range(8)]
        answers = oracle.answer_batch(batch)
        assert answers[0] == graph.m
        for v in range(8):
            assert answers[1 + v] == graph.degree(v)

    def test_adjacency_of_deleted_edge_is_false(self, graph):
        stream = turnstile_churn_stream(graph, 20, rng=12)
        # Find an edge that was churned (inserted then deleted).
        churned = None
        for update in stream.updates():
            if update.delta < 0:
                churned = update.edge
                break
        stream.reset_pass_count()
        assert churned is not None
        oracle = TurnstileStreamOracle(stream, rng=13, sampler_repetitions=3)
        answers = oracle.answer_batch(
            [AdjacencyQuery(*churned)] + [AdjacencyQuery(u, v) for u, v in list(graph.edges())[:5]]
        )
        assert answers[0] is False
        assert all(answers[1:])

    def test_random_edge_sampler_hits_live_edges(self, graph):
        stream = turnstile_churn_stream(graph, 15, rng=14)
        oracle = TurnstileStreamOracle(stream, rng=15, sampler_repetitions=5)
        answers = oracle.answer_batch([RandomEdgeQuery() for _ in range(30)])
        live = set(graph.edges())
        for answer in answers:
            if answer is not None:
                assert tuple(answer) in live

    def test_random_neighbor_sampler(self, graph):
        stream = turnstile_churn_stream(graph, 15, rng=16)
        oracle = TurnstileStreamOracle(stream, rng=17, sampler_repetitions=5)
        vertex = max(graph.vertices(), key=graph.degree)
        answers = oracle.answer_batch([RandomNeighborQuery(vertex) for _ in range(20)])
        neighbors = set(graph.neighbors(vertex))
        for answer in answers:
            if answer is not None:
                assert answer in neighbors

    def test_indexed_neighbor_rejected(self, graph):
        stream = turnstile_churn_stream(graph, 5, rng=18)
        oracle = TurnstileStreamOracle(stream, rng=19)
        with pytest.raises(OracleError):
            oracle.answer_batch([NeighborQuery(0, 0)])


class TestDriver:
    def test_rounds_equal_longest_algorithm(self, graph):
        def two_rounds():
            answers = yield [EdgeCountQuery()]
            answers = yield [DegreeQuery(0)]
            return answers[0]

        def one_round():
            answers = yield [EdgeCountQuery()]
            return answers[0]

        stream = insertion_stream(graph, rng=20)
        oracle = InsertionStreamOracle(stream, rng=21)
        result = run_round_adaptive([two_rounds(), one_round()], oracle)
        assert result.rounds == 2
        assert oracle.passes_used == 2
        assert result.outputs == [graph.degree(0), graph.m]

    def test_immediate_return_consumes_no_pass(self, graph):
        def immediate():
            return 7
            yield  # pragma: no cover

        stream = insertion_stream(graph, rng=22)
        oracle = InsertionStreamOracle(stream, rng=23)
        result = run_round_adaptive([immediate()], oracle)
        assert result.rounds == 0
        assert oracle.passes_used == 0
        assert result.outputs == [7]

    def test_parallel_rounds_composition(self, graph):
        def child(v):
            answers = yield [DegreeQuery(v)]
            return answers[0]

        def parent():
            degrees = yield from parallel_rounds([child(0), child(1), child(2)])
            answers = yield [EdgeCountQuery()]
            return (degrees, answers[0])

        stream = insertion_stream(graph, rng=24)
        oracle = InsertionStreamOracle(stream, rng=25)
        result = run_round_adaptive([parent()], oracle)
        degrees, m = result.outputs[0]
        assert degrees == [graph.degree(0), graph.degree(1), graph.degree(2)]
        assert m == graph.m
        assert result.rounds == 2

    def test_query_accounting_totals(self, graph):
        def asker():
            yield [DegreeQuery(0), DegreeQuery(1)]
            return None

        stream = insertion_stream(graph, rng=26)
        oracle = InsertionStreamOracle(stream, rng=27)
        result = run_round_adaptive([asker(), asker()], oracle)
        assert result.total_queries == 4
