"""Tests for the round-adaptivity profiler (:mod:`repro.transform.profile`)."""

import pytest

from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.graph import generators as gen
from repro.oracle.base import DegreeQuery, EdgeCountQuery, RandomEdgeQuery
from repro.oracle.direct import DirectAugmentedOracle
from repro.patterns import pattern as zoo
from repro.transform.profile import profile_rounds
from repro.transform.insertion import InsertionStreamOracle
from repro.streams.stream import insertion_stream


def two_round_toy():
    """A hand-written 2-round algorithm: edge count, then one degree."""
    answers = yield [EdgeCountQuery(), RandomEdgeQuery()]
    m, edge = answers
    answers = yield [DegreeQuery(edge[0])]
    return (m, answers[0])


class TestProfileRounds:
    def test_toy_round_structure(self):
        oracle = DirectAugmentedOracle(gen.karate_club(), rng=1)
        report = profile_rounds(two_round_toy, oracle)
        assert report.rounds == 2
        assert report.round_profiles[0].query_counts == {
            "EdgeCount": 1,
            "RandomEdge": 1,
        }
        assert report.round_profiles[1].query_counts == {"Degree": 1}
        assert report.total_queries == 3
        m, degree = report.output
        assert m == 78
        assert degree >= 1

    def test_fgp_sampler_is_three_round(self):
        oracle = DirectAugmentedOracle(gen.karate_club(), rng=2)
        report = profile_rounds(
            lambda: subgraph_sampler_rounds(zoo.triangle(), rng=3), oracle
        )
        assert report.rounds == 3
        # Round 1 carries the edge samples + edge count; round 2 one
        # neighbor query per odd cycle; round 3 adjacency + degrees.
        assert "RandomEdge" in report.round_profiles[0].query_counts
        assert "Neighbor" in report.round_profiles[1].query_counts
        assert "Adjacency" in report.round_profiles[2].query_counts

    def test_star_sampler_is_two_round_with_skip(self):
        oracle = DirectAugmentedOracle(gen.karate_club(), rng=4)
        report = profile_rounds(
            lambda: subgraph_sampler_rounds(
                zoo.path(3), rng=5, skip_empty_wedge_round=True
            ),
            oracle,
        )
        assert report.rounds == 2

    def test_profile_against_stream_oracle(self):
        stream = insertion_stream(gen.karate_club(), rng=6)
        oracle = InsertionStreamOracle(stream, rng=7)
        report = profile_rounds(
            lambda: subgraph_sampler_rounds(zoo.triangle(), rng=8), oracle
        )
        assert report.rounds == 3
        assert stream.passes_used == 3  # rounds really are passes

    def test_describe_mentions_theorem(self):
        oracle = DirectAugmentedOracle(gen.karate_club(), rng=9)
        report = profile_rounds(two_round_toy, oracle)
        text = report.describe()
        assert "2-round adaptive" in text
        assert "2-pass streaming" in text
        assert "round 1:" in text and "round 2:" in text
