"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.exact.triangles import count_triangles


class TestDeterministicGraphs:
    def test_complete_graph(self):
        graph = gen.complete_graph(6)
        assert graph.m == 15
        assert all(graph.degree(v) == 5 for v in graph.vertices())

    def test_cycle_graph(self):
        graph = gen.cycle_graph(7)
        assert graph.m == 7
        assert all(graph.degree(v) == 2 for v in graph.vertices())
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_path_graph(self):
        graph = gen.path_graph(5)
        assert graph.m == 4
        assert graph.degree(0) == graph.degree(4) == 1

    def test_star_graph(self):
        graph = gen.star_graph(6)
        assert graph.degree(0) == 6
        assert graph.m == 6

    def test_grid_graph(self):
        graph = gen.grid_graph(3, 4)
        assert graph.n == 12
        assert graph.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_complete_bipartite(self):
        graph = gen.complete_bipartite_graph(3, 4)
        assert graph.m == 12
        assert count_triangles(graph) == 0

    def test_lollipop(self):
        graph = gen.lollipop_graph(4, 3)
        assert graph.n == 7
        assert graph.m == 6 + 3

    def test_karate_club(self):
        graph = gen.karate_club()
        assert graph.n == 34
        assert graph.m == 78
        assert count_triangles(graph) == 45


class TestRandomGraphs:
    def test_gnp_determinism(self):
        a = gen.gnp(40, 0.3, rng=11)
        b = gen.gnp(40, 0.3, rng=11)
        assert a == b

    def test_gnp_extremes(self):
        assert gen.gnp(10, 0.0, rng=1).m == 0
        assert gen.gnp(10, 1.0, rng=1).m == 45

    def test_gnp_expected_density(self):
        graph = gen.gnp(80, 0.25, rng=3)
        expected = 0.25 * 80 * 79 / 2
        assert 0.7 * expected <= graph.m <= 1.3 * expected

    def test_gnp_invalid_probability(self):
        with pytest.raises(GraphError):
            gen.gnp(5, 1.5)

    def test_gnm_exact_edge_count(self):
        for m in (0, 10, 44, 45):
            assert gen.gnm(10, m, rng=5).m == m

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gen.gnm(5, 11)

    def test_barabasi_albert_structure(self):
        graph = gen.barabasi_albert(60, 3, rng=7)
        assert graph.n == 60
        # Every non-seed vertex attaches to exactly `attach` targets.
        assert graph.m == 3 + (60 - 4) * 3
        assert all(graph.degree(v) >= 1 for v in graph.vertices())

    def test_barabasi_albert_validation(self):
        with pytest.raises(GraphError):
            gen.barabasi_albert(3, 3)

    def test_random_regular_is_regular(self):
        for n, d in ((20, 3), (30, 4), (50, 6)):
            graph = gen.random_regular(n, d, rng=13)
            assert all(graph.degree(v) == d for v in graph.vertices()), (n, d)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            gen.random_regular(5, 3)

    def test_random_regular_degree_too_big(self):
        with pytest.raises(GraphError):
            gen.random_regular(4, 4)

    def test_power_law_cluster_runs(self):
        graph = gen.power_law_cluster(100, 3, 0.5, rng=17)
        assert graph.n == 100
        assert graph.m >= 3
        assert count_triangles(graph) > 0


class TestPlantedStructures:
    def test_planted_cliques_exact_count(self):
        graph = gen.planted_cliques(40, 4, 5, noise_edges=0, rng=1)
        from repro.exact.cliques import count_cliques

        assert count_cliques(graph, 4) == 5

    def test_planted_cliques_capacity_check(self):
        with pytest.raises(GraphError):
            gen.planted_cliques(10, 4, 5)

    def test_disjoint_union(self):
        union = gen.disjoint_union([gen.complete_graph(3), gen.path_graph(4)])
        assert union.n == 7
        assert union.m == 3 + 3

    def test_planted_copies_helper(self):
        from repro.patterns.pattern import cycle
        from repro.exact.subgraphs import count_subgraphs

        host = gen.erdos_renyi_with_planted_copies(
            cycle(5).graph, copies=4, noise_n=20, noise_p=0.05, rng=3
        )
        assert count_subgraphs(host, cycle(5)) >= 4
