"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.exact.triangles import count_triangles


class TestDeterministicGraphs:
    def test_complete_graph(self):
        graph = gen.complete_graph(6)
        assert graph.m == 15
        assert all(graph.degree(v) == 5 for v in graph.vertices())

    def test_cycle_graph(self):
        graph = gen.cycle_graph(7)
        assert graph.m == 7
        assert all(graph.degree(v) == 2 for v in graph.vertices())
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_path_graph(self):
        graph = gen.path_graph(5)
        assert graph.m == 4
        assert graph.degree(0) == graph.degree(4) == 1

    def test_star_graph(self):
        graph = gen.star_graph(6)
        assert graph.degree(0) == 6
        assert graph.m == 6

    def test_grid_graph(self):
        graph = gen.grid_graph(3, 4)
        assert graph.n == 12
        assert graph.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_complete_bipartite(self):
        graph = gen.complete_bipartite_graph(3, 4)
        assert graph.m == 12
        assert count_triangles(graph) == 0

    def test_lollipop(self):
        graph = gen.lollipop_graph(4, 3)
        assert graph.n == 7
        assert graph.m == 6 + 3

    def test_karate_club(self):
        graph = gen.karate_club()
        assert graph.n == 34
        assert graph.m == 78
        assert count_triangles(graph) == 45


class TestRandomGraphs:
    def test_gnp_determinism(self):
        a = gen.gnp(40, 0.3, rng=11)
        b = gen.gnp(40, 0.3, rng=11)
        assert a == b

    def test_gnp_extremes(self):
        assert gen.gnp(10, 0.0, rng=1).m == 0
        assert gen.gnp(10, 1.0, rng=1).m == 45

    def test_gnp_expected_density(self):
        graph = gen.gnp(80, 0.25, rng=3)
        expected = 0.25 * 80 * 79 / 2
        assert 0.7 * expected <= graph.m <= 1.3 * expected

    def test_gnp_invalid_probability(self):
        with pytest.raises(GraphError):
            gen.gnp(5, 1.5)

    def test_gnm_exact_edge_count(self):
        for m in (0, 10, 44, 45):
            assert gen.gnm(10, m, rng=5).m == m

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gen.gnm(5, 11)

    def test_barabasi_albert_structure(self):
        graph = gen.barabasi_albert(60, 3, rng=7)
        assert graph.n == 60
        # Every non-seed vertex attaches to exactly `attach` targets.
        assert graph.m == 3 + (60 - 4) * 3
        assert all(graph.degree(v) >= 1 for v in graph.vertices())

    def test_barabasi_albert_validation(self):
        with pytest.raises(GraphError):
            gen.barabasi_albert(3, 3)

    def test_random_regular_is_regular(self):
        for n, d in ((20, 3), (30, 4), (50, 6)):
            graph = gen.random_regular(n, d, rng=13)
            assert all(graph.degree(v) == d for v in graph.vertices()), (n, d)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            gen.random_regular(5, 3)

    def test_random_regular_degree_too_big(self):
        with pytest.raises(GraphError):
            gen.random_regular(4, 4)

    def test_power_law_cluster_runs(self):
        graph = gen.power_law_cluster(100, 3, 0.5, rng=17)
        assert graph.n == 100
        assert graph.m >= 3
        assert count_triangles(graph) > 0


class TestSeedDeterminism:
    """Same seed, same graph — for every random generator in the module.

    The worlds sweeps re-derive workloads from (family, seed) alone, so
    any generator drifting under a fixed seed silently invalidates
    resumed and filtered sweeps.  ``Graph.__eq__`` compares the full
    edge set.
    """

    BUILDERS = {
        "gnp": lambda rng: gen.gnp(40, 0.3, rng=rng),
        "gnm": lambda rng: gen.gnm(30, 60, rng=rng),
        "barabasi_albert": lambda rng: gen.barabasi_albert(40, 3, rng=rng),
        "random_regular": lambda rng: gen.random_regular(24, 4, rng=rng),
        "power_law_cluster": lambda rng: gen.power_law_cluster(40, 3, 0.5, rng=rng),
        "watts_strogatz": lambda rng: gen.watts_strogatz(30, 4, 0.3, rng=rng),
        "random_geometric": lambda rng: gen.random_geometric(40, 0.3, rng=rng),
        "planted_partition": lambda rng: gen.planted_partition(
            4, 10, 0.6, 0.05, rng=rng),
        "planted_cliques": lambda rng: gen.planted_cliques(
            40, 4, 3, noise_edges=30, rng=rng),
        "stochastic_kronecker": lambda rng: gen.stochastic_kronecker(
            6, 150, seed=rng),
        "configuration_model": lambda rng: gen.configuration_model(
            gen.powerlaw_degree_sequence(60, 2.5, min_degree=2, seed=rng),
            seed=rng),
    }

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_same_seed_same_graph(self, name):
        build = self.BUILDERS[name]
        assert build(11) == build(11), name

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_different_seed_different_graph(self, name):
        build = self.BUILDERS[name]
        assert any(build(11) != build(11 + shift) for shift in (1, 2, 3)), name


class TestStreamingKronecker:
    def _concat(self, chunks):
        chunks = list(chunks)
        assert chunks, "generator yielded nothing"
        u = np.concatenate([c[0] for c in chunks])
        v = np.concatenate([c[1] for c in chunks])
        return u, v, chunks

    def test_exact_edge_count_simple_and_in_range(self):
        u, v, _ = self._concat(list(gen.stochastic_kronecker_chunks(6, 200, seed=3)))
        assert len(u) == 200
        assert (u < v).all()  # canonical order, no self-loops
        assert u.min() >= 0 and v.max() < 64
        assert len(set(zip(u.tolist(), v.tolist()))) == 200  # no duplicates

    def test_two_pass_replay_is_bit_identical(self):
        # DiskEdgeStream materialization re-reads the generator; both
        # passes must see the identical chunk sequence.
        first = list(gen.stochastic_kronecker_chunks(7, 300, seed=9,
                                                     chunk_size=64))
        second = list(gen.stochastic_kronecker_chunks(7, 300, seed=9,
                                                      chunk_size=64))
        assert len(first) == len(second)
        for (u1, v1), (u2, v2) in zip(first, second):
            assert np.array_equal(u1, u2) and np.array_equal(v1, v2)

    def test_graph_builder_matches_chunks(self):
        u, v, _ = self._concat(list(gen.stochastic_kronecker_chunks(6, 150, seed=4)))
        graph = gen.stochastic_kronecker(6, 150, seed=4)
        assert sorted(graph.edges()) == sorted(zip(u.tolist(), v.tolist()))

    def test_skewed_initiator_saturates_gracefully(self):
        # A near-degenerate initiator concentrates mass in one corner;
        # the attempt cap must stop the loop and yield what was found.
        u, _, _ = self._concat(gen.stochastic_kronecker_chunks(
            3, 20, initiator=(0.97, 0.01, 0.01, 0.01), seed=1,
            max_attempt_factor=2,
        ))
        assert 1 <= len(u) <= 20

    def test_validation(self):
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(0, 10))
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(gen.MAX_KRONECKER_POWER + 1, 10))
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(5, 0))
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(2, 7))  # > C(4, 2) edges
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(5, 10, initiator=(0.5, 0.5, 0.5)))
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(5, 10, initiator=(1, 1, 1, 0)))
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(5, 10, seed=1.5))
        with pytest.raises(GraphError):
            list(gen.stochastic_kronecker_chunks(5, 10, chunk_size=0))


class TestConfigurationModel:
    def test_degree_sequence_properties(self):
        degrees = gen.powerlaw_degree_sequence(200, 2.5, min_degree=2, seed=5)
        assert degrees.shape == (200,)
        assert int(degrees.sum()) % 2 == 0
        assert degrees.min() >= 2 and degrees.max() <= 199
        replay = gen.powerlaw_degree_sequence(200, 2.5, min_degree=2, seed=5)
        assert np.array_equal(degrees, replay)

    def test_degree_sequence_validation(self):
        with pytest.raises(GraphError):
            gen.powerlaw_degree_sequence(50, 1.0)  # exponent must be > 1
        with pytest.raises(GraphError):
            gen.powerlaw_degree_sequence(50, 2.5, min_degree=0)
        with pytest.raises(GraphError):
            gen.powerlaw_degree_sequence(50, 2.5, max_degree=50)  # > n - 1
        with pytest.raises(GraphError):
            gen.powerlaw_degree_sequence(1, 2.5)

    def test_erased_model_simple_and_degree_bounded(self):
        degrees = gen.powerlaw_degree_sequence(80, 2.3, min_degree=1, seed=2)
        graph = gen.configuration_model(degrees, seed=2)
        assert graph.n == 80
        assert graph.m > 0
        # Erasure only removes stubs: realized degree <= requested.
        for vertex in graph.vertices():
            assert graph.degree(vertex) <= int(degrees[vertex])

    def test_two_pass_replay_is_bit_identical(self):
        degrees = gen.powerlaw_degree_sequence(100, 2.2, min_degree=2, seed=6)
        first = list(gen.configuration_model_chunks(degrees, seed=6,
                                                    chunk_size=32))
        second = list(gen.configuration_model_chunks(degrees, seed=6,
                                                     chunk_size=32))
        assert len(first) == len(second) > 1
        for (u1, v1), (u2, v2) in zip(first, second):
            assert np.array_equal(u1, u2) and np.array_equal(v1, v2)

    def test_all_zero_degrees_yield_empty_stream(self):
        assert list(gen.configuration_model_chunks([0, 0, 0], seed=1)) == []

    def test_validation(self):
        with pytest.raises(GraphError):
            list(gen.configuration_model_chunks([2, 1], seed=1))  # odd stub sum
        with pytest.raises(GraphError):
            list(gen.configuration_model_chunks([-1, 1], seed=1))
        with pytest.raises(GraphError):
            list(gen.configuration_model_chunks([3, 1], seed=1))  # degree > n - 1
        with pytest.raises(GraphError):
            list(gen.configuration_model_chunks([2], seed=1))
        with pytest.raises(GraphError):
            list(gen.configuration_model_chunks([[1, 1], [1, 1]], seed=1))
        with pytest.raises(GraphError):
            list(gen.configuration_model_chunks([1, 1], seed="abc"))


class TestPlantedStructures:
    def test_planted_cliques_exact_count(self):
        graph = gen.planted_cliques(40, 4, 5, noise_edges=0, rng=1)
        from repro.exact.cliques import count_cliques

        assert count_cliques(graph, 4) == 5

    def test_planted_cliques_capacity_check(self):
        with pytest.raises(GraphError):
            gen.planted_cliques(10, 4, 5)

    def test_disjoint_union(self):
        union = gen.disjoint_union([gen.complete_graph(3), gen.path_graph(4)])
        assert union.n == 7
        assert union.m == 3 + 3

    def test_planted_copies_helper(self):
        from repro.patterns.pattern import cycle
        from repro.exact.subgraphs import count_subgraphs

        host = gen.erdos_renyi_with_planted_copies(
            cycle(5).graph, copies=4, noise_n=20, noise_p=0.05, rng=3
        )
        assert count_subgraphs(host, cycle(5)) >= 4
