"""Out-of-core ingestion: readers, binary format, scenarios, big ids.

Covers the dataset layer end to end — SNAP text parsing and
conversion, the ``.reb``/``.npz`` round-trips, :class:`DiskEdgeStream`
equivalence with the in-memory stream, the turnstile scenario
generators, and the uint64 dtype audit for vertex ids above 2^32
(raw SNAP ids routinely exceed 2^31).
"""

import io

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph import generators
from repro.sketch.hashing import PolynomialHash
from repro.streams.batch import EDGE_ID_MAX_N, EdgeBatch, VertexMembership, edge_id
from repro.streams.datasets import (
    BinaryUpdateWriter,
    DiskEdgeStream,
    compact_ids,
    convert_edge_list,
    degree_adversarial_order,
    deletion_heavy_updates,
    is_stream_path,
    open_disk_stream,
    read_snap_chunks,
    save_npz_updates,
    sliding_window_updates,
    write_binary_updates,
)
from repro.streams.stream import EdgeStream, Update, insertion_stream


SNAP_TEXT = """\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
0\t1
1\t0
7\t7
% another comment style
2\t7 1383399394
4294967299\t2
0\t2
"""


class TestSnapReader:
    def test_chunks_skip_comments_and_extra_columns(self):
        chunks = list(read_snap_chunks(io.StringIO(SNAP_TEXT), chunk_lines=2))
        u = np.concatenate([c[0] for c in chunks])
        v = np.concatenate([c[1] for c in chunks])
        assert u.tolist() == [0, 1, 7, 2, 4294967299, 0]
        assert v.tolist() == [1, 0, 7, 7, 2, 2]
        assert all(len(c[0]) <= 2 for c in chunks)

    def test_malformed_lines_raise(self):
        with pytest.raises(StreamError):
            list(read_snap_chunks(io.StringIO("1\n")))
        with pytest.raises(StreamError):
            list(read_snap_chunks(io.StringIO("a b\n")))
        with pytest.raises(StreamError):
            list(read_snap_chunks(io.StringIO("-1 2\n")))

    def test_compact_ids_preserves_pairing(self):
        u = np.array([10, 99, 4294967299], dtype=np.int64)
        v = np.array([99, 10, 10], dtype=np.int64)
        cu, cv, raw = compact_ids(u, v)
        assert raw.tolist() == [10, 99, 4294967299]
        assert cu.tolist() == [0, 1, 2]
        assert cv.tolist() == [1, 0, 0]


class TestConversion:
    def test_convert_dedupes_and_compacts(self, tmp_path):
        path = tmp_path / "snap.reb"
        stream = convert_edge_list(io.StringIO(SNAP_TEXT), path)
        # Unique undirected edges: {0,1}, {2,7}, {4294967299→id, 2}, {0,2};
        # the self-loop 7-7 and the reversed 1-0 are dropped.
        assert stream.length == 4
        assert stream.net_edge_count == 4
        assert stream.n == 5  # ids 0,1,2,7,4294967299 compacted
        assert not stream.allows_deletions
        graph = stream.final_graph()
        assert graph.m == 4

    def test_convert_to_npz(self, tmp_path):
        path = tmp_path / "snap.npz"
        stream = convert_edge_list(io.StringIO(SNAP_TEXT), path)
        assert stream.length == 4
        assert is_stream_path(path) and is_stream_path("x.reb")
        assert not is_stream_path("x.txt")

    def test_convert_rejects_unrecognized_suffix(self, tmp_path):
        # A destination `repro count` would not recognize as a stream
        # must fail at convert time, not with a confusing parse error
        # later.
        with pytest.raises(StreamError):
            convert_edge_list(io.StringIO(SNAP_TEXT), tmp_path / "snap.bin")

    def test_convert_no_dedupe_rejects_self_loops(self, tmp_path):
        with pytest.raises(StreamError):
            convert_edge_list(
                io.StringIO("1 1\n"), tmp_path / "x.reb", dedupe=False
            )

    def test_round_trip_matches_in_memory_stream(self, tmp_path):
        graph = generators.gnp(25, 0.3, rng=1)
        stream = insertion_stream(graph, rng=2)
        u, v, _ = stream.columns()
        path = write_binary_updates(tmp_path / "g.reb", graph.n, u, v)
        disk = DiskEdgeStream(path)
        assert (disk.n, disk.length, disk.net_edge_count) == (
            stream.n,
            stream.length,
            stream.net_edge_count,
        )
        assert list(disk.updates()) == list(stream.updates())
        memory_batches = [b.tuples() for b in stream.batches(7)]
        disk_batches = [b.tuples() for b in disk.batches(7)]
        assert memory_batches == disk_batches
        assert disk.passes_used == 2
        assert sorted(disk.final_graph().edges()) == sorted(graph.edges())

    def test_npz_round_trip_with_deletions(self, tmp_path):
        u = np.array([0, 1, 0], dtype=np.int64)
        v = np.array([1, 2, 1], dtype=np.int64)
        delta = np.array([1, 1, -1], dtype=np.int8)
        path = save_npz_updates(tmp_path / "t.npz", 3, u, v, delta)
        disk = open_disk_stream(path)
        assert disk.allows_deletions
        assert disk.net_edge_count == 1
        (batch,) = list(disk.batches(10))
        assert [t[:3] for t in batch.tuples()] == [(0, 1, 1), (1, 2, 1), (0, 1, -1)]

    def test_binary_writer_validates(self, tmp_path):
        with pytest.raises(StreamError):
            with BinaryUpdateWriter(tmp_path / "bad.reb", 5) as writer:
                writer.append(np.array([1]), np.array([1]))  # self-loop
        with pytest.raises(StreamError):
            with BinaryUpdateWriter(tmp_path / "bad2.reb", 5) as writer:
                writer.append(np.array([0]), np.array([7]))  # out of range
        with pytest.raises(StreamError):
            with BinaryUpdateWriter(tmp_path / "bad3.reb", 5) as writer:
                writer.append(
                    np.array([0]), np.array([1]), np.array([-1])
                )  # deletion in insertion-only
        # Aborted writers leave no partial files behind.
        assert not list(tmp_path.glob("*.tmp"))

    def test_bad_magic_and_truncation_raise(self, tmp_path):
        bad = tmp_path / "bad.reb"
        bad.write_bytes(b"NOTAREPRO FILE")
        with pytest.raises(StreamError):
            DiskEdgeStream(bad)
        good = write_binary_updates(
            tmp_path / "good.reb", 4, np.array([0, 1]), np.array([1, 2])
        )
        data = open(good, "rb").read()
        truncated = tmp_path / "trunc.reb"
        truncated.write_bytes(data[:-4])
        with pytest.raises(StreamError):
            DiskEdgeStream(truncated)
        # A corrupt header (negative length) must also fail with the
        # library's StreamError, not a raw numpy error.
        import struct

        from repro.streams.datasets import BINARY_MAGIC

        corrupt = tmp_path / "corrupt.reb"
        corrupt.write_bytes(BINARY_MAGIC + struct.pack("<4q", 4, -1, 0, 0))
        with pytest.raises(StreamError):
            DiskEdgeStream(corrupt)


class TestScenarios:
    def _edges(self, seed=4, n=30, p=0.25):
        graph = generators.gnp(n, p, rng=seed)
        edges = np.array(sorted(graph.edges()), dtype=np.int64)
        return graph, edges[:, 0], edges[:, 1]

    def test_deletion_heavy_final_graph_is_input(self):
        graph, u, v = self._edges()
        out_u, out_v, delta = deletion_heavy_updates(
            u, v, churn_rounds=2, churn_fraction=0.7, seed=1
        )
        assert (delta == -1).sum() > 0
        stream = EdgeStream(
            graph.n,
            [Update(int(a), int(b), int(d)) for a, b, d in zip(out_u, out_v, delta)],
            allow_deletions=True,
        )
        assert sorted(stream.final_graph().edges()) == sorted(graph.edges())
        assert stream.length == len(out_u)

    def test_deletion_heavy_empty_input(self):
        out_u, out_v, delta = deletion_heavy_updates(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(out_u) == len(out_v) == len(delta) == 0

    def test_deletion_heavy_zero_rounds_is_identity(self):
        _, u, v = self._edges()
        out_u, out_v, delta = deletion_heavy_updates(u, v, churn_rounds=0)
        assert out_u.tolist() == u.tolist()
        assert (delta == 1).all()

    def test_sliding_window_keeps_last_window(self):
        graph, u, v = self._edges()
        window = 10
        out_u, out_v, delta = sliding_window_updates(u, v, window)
        stream = EdgeStream(
            graph.n,
            [Update(int(a), int(b), int(d)) for a, b, d in zip(out_u, out_v, delta)],
            allow_deletions=True,
        )
        expected = sorted(
            (int(a), int(b)) for a, b in zip(u[-window:], v[-window:])
        )
        assert sorted(stream.final_graph().edges()) == expected
        assert len(out_u) == len(u) + max(0, len(u) - window)

    def test_sliding_window_wider_than_stream(self):
        _, u, v = self._edges()
        out_u, out_v, delta = sliding_window_updates(u, v, window=10 ** 6)
        assert (delta == 1).all()
        assert len(out_u) == len(u)

    def test_degree_adversarial_order_is_permutation(self):
        _, u, v = self._edges()
        au, av = degree_adversarial_order(u, v)
        assert sorted(zip(au.tolist(), av.tolist())) == sorted(
            zip(u.tolist(), v.tolist())
        )
        # High-degree incidences arrive last.
        n = int(max(u.max(), v.max())) + 1
        degrees = np.bincount(np.concatenate((u, v)), minlength=n)
        weights = np.maximum(degrees[au], degrees[av])
        assert (np.diff(weights) >= 0).all()

    def test_scenarios_reject_self_loops_and_bad_params(self):
        with pytest.raises(StreamError):
            deletion_heavy_updates([1], [1])
        with pytest.raises(StreamError):
            deletion_heavy_updates([0], [1], churn_rounds=-1)
        with pytest.raises(StreamError):
            sliding_window_updates([0], [1], window=0)


class TestScenarioInvariants:
    """Structural invariants of the turnstile scenario generators.

    The worlds sweeps trust these unconditionally: any prefix of the
    update stream keeps every multiplicity in {0, 1} (the stream model
    forbids negative multiplicities and the generators never duplicate
    a live edge), and the final support is exactly what the scenario
    advertises.  Checked by replaying the columns through a Counter —
    no ``Graph(n)`` allocation, so the same check runs on vertex ids
    above 2^32.
    """

    def _edges(self, seed=9, n=40, p=0.2):
        graph = generators.gnp(n, p, rng=seed)
        edges = np.array(sorted(graph.edges()), dtype=np.int64)
        return edges[:, 0], edges[:, 1]

    @staticmethod
    def _replay(out_u, out_v, delta):
        """Multiplicity map after replaying all updates, asserting every
        prefix stays within {0, 1}."""
        from collections import Counter

        counts: Counter = Counter()
        for a, b, d in zip(out_u.tolist(), out_v.tolist(), delta.tolist()):
            key = (min(a, b), max(a, b))
            counts[key] += int(d)
            assert 0 <= counts[key] <= 1, (
                f"multiplicity {counts[key]} for {key} mid-stream"
            )
        return {key for key, count in counts.items() if count == 1}

    @pytest.mark.parametrize("churn_rounds,churn_fraction",
                             [(1, 0.5), (3, 0.9), (2, 0.25)])
    def test_deletion_heavy_prefixes_never_negative(self, churn_rounds,
                                                    churn_fraction):
        u, v = self._edges()
        out_u, out_v, delta = deletion_heavy_updates(
            u, v, churn_rounds=churn_rounds, churn_fraction=churn_fraction,
            seed=3,
        )
        support = self._replay(out_u, out_v, delta)
        assert support == set(zip(u.tolist(), v.tolist()))

    @pytest.mark.parametrize("window", [1, 7, 25, 10 ** 6])
    def test_sliding_window_final_support_is_the_window(self, window):
        u, v = self._edges()
        out_u, out_v, delta = sliding_window_updates(u, v, window)
        support = self._replay(out_u, out_v, delta)
        kept = min(window, len(u))
        assert support == set(zip(u[-kept:].tolist(), v[-kept:].tolist()))

    def test_big_ids_survive_the_columnar_path(self):
        # Vertex ids above 2^32 through scenario generation AND the
        # columnar EdgeBatch path: every batch tuple must carry the
        # exact id (no float round-trip, no int32 truncation).
        big = 2 ** 32 + 11
        u = np.array([big, big + 1, 3, big + 4], dtype=np.int64)
        v = np.array([3, big + 2, big + 4, big + 7], dtype=np.int64)
        for out_u, out_v, delta in (
            deletion_heavy_updates(u, v, churn_rounds=2, churn_fraction=0.8,
                                   seed=5),
            sliding_window_updates(u, v, window=2),
        ):
            support = self._replay(out_u, out_v, delta)
            assert all(isinstance(a, int) for pair in support for a in pair)
            stream = EdgeStream(
                2 ** 33,
                [Update(int(a), int(b), int(d))
                 for a, b, d in zip(out_u, out_v, delta)],
                allow_deletions=True,
            )
            seen = []
            for batch in stream.batches(3):
                assert batch.lo.dtype == np.int64
                assert batch.hi.dtype == np.int64
                seen.extend(batch.tuples())
            assert len(seen) == len(out_u)
            assert {(min(t[0], t[1]), max(t[0], t[1])) for t in seen} >= support
        # The reorder scenario builds a dense degree table, so it is
        # bound to compacted ids — it must reorder, not corrupt, right
        # up to the table limit.
        small_u, small_v = self._edges(n=25)
        au, av = degree_adversarial_order(small_u, small_v)
        assert sorted(zip(au.tolist(), av.tolist())) == sorted(
            zip(small_u.tolist(), small_v.tolist())
        )


class TestBigVertexIds:
    """Satellite audit: exactness for vertex ids >= 2^31 (and > 2^32)."""

    BIG = 2 ** 32 + 5

    def test_edge_stream_accepts_big_ids(self):
        n = 2 ** 33
        stream = EdgeStream(
            n, [Update(self.BIG, 3), Update(self.BIG + 1, self.BIG + 7)]
        )
        batch = next(iter(stream.batches()))
        tuples = batch.tuples()
        assert tuples[0][:2] == (self.BIG, 3)
        assert tuples[1][:2] == (self.BIG + 1, self.BIG + 7)
        assert batch.hi.dtype == np.int64
        assert int(batch.hi[1]) == self.BIG + 7

    def test_values_many_exact_above_2_32(self):
        hasher = PolynomialHash(4, rng=11)
        items = np.array(
            [self.BIG, 2 ** 40 + 123, 2 ** 62 - 1, 7, 2 ** 31 + 1], dtype=np.uint64
        )
        vectorized = hasher.values_many(items)
        scalar = [hasher.value(int(item)) for item in items.tolist()]
        assert vectorized.tolist() == scalar

    def test_levels_many_exact_above_2_32(self):
        hasher = PolynomialHash(2, rng=13)
        items = np.array([self.BIG + k for k in range(64)], dtype=np.uint64)
        vectorized = hasher.levels_many(items, 20)
        scalar = [hasher.level(int(item), 20) for item in items.tolist()]
        assert vectorized.tolist() == scalar

    def test_edge_ids_exact_near_uint32_boundary(self):
        # int64 intermediates wrap past n ≈ 3.0e9; the uint64 path must
        # agree with exact Python-int edge_id right up to n = 2^32.
        n = EDGE_ID_MAX_N
        pairs = [
            (0, 1),
            (n - 2, n - 1),
            (n // 2, n - 1),
            (2 ** 31 - 1, 2 ** 31),
            (123, n - 7),
        ]
        batch = EdgeBatch(
            np.array([a for a, _ in pairs], dtype=np.int64),
            np.array([b for _, b in pairs], dtype=np.int64),
            np.ones(len(pairs), dtype=np.int64),
        )
        expected = [edge_id(a, b, n) for a, b in pairs]
        assert batch.edge_ids(n).tolist() == expected

    def test_edge_ids_overflow_guard(self):
        batch = EdgeBatch.from_updates([Update(0, 1)])
        with pytest.raises(StreamError):
            batch.edge_ids(EDGE_ID_MAX_N + 1)

    def test_vertex_membership_sparse_path_above_dense_limit(self):
        n = 2 ** 33
        watched = [self.BIG, 5, 2 ** 32 + 999]
        members = VertexMembership(watched, n)
        values = np.array(
            [5, 6, self.BIG, 2 ** 32 + 999, 2 ** 33 - 1], dtype=np.int64
        )
        assert members.mask(values).tolist() == [True, False, True, True, False]
        hits = values[members.mask(values)]
        assert members.slots(hits).tolist() == [0, 1, 2]

    def test_vertex_membership_dense_and_sparse_agree(self):
        rng = np.random.default_rng(3)
        watched = rng.choice(5000, size=40, replace=False)
        values = rng.integers(0, 5000, size=1000)
        dense = VertexMembership(watched, 5000)
        sparse = VertexMembership(watched, 2 ** 33)
        mask_d = dense.mask(values)
        # Sparse path only accepts int64 arrays of any range.
        assert sparse.mask(values.astype(np.int64)).tolist() == mask_d.tolist()

    def test_big_id_oracle_pass_end_to_end(self):
        # A columnar oracle pass over a stream whose ids exceed 2^32:
        # degree counters and f1 edge reservoirs must behave exactly as
        # the scalar path (which uses Python ints throughout).
        from repro.oracle.base import DegreeQuery, EdgeCountQuery, RandomEdgeQuery
        from repro.transform.insertion import InsertionStreamOracle

        n = 2 ** 33
        updates = [
            Update(self.BIG, 3),
            Update(self.BIG, self.BIG + 1),
            Update(3, self.BIG + 1),
            Update(self.BIG + 2, 3),
        ]
        queries = [DegreeQuery(self.BIG), DegreeQuery(3), EdgeCountQuery(),
                   RandomEdgeQuery()]
        answers = {}
        for columnar, batch_size in ((False, 2), (True, 2), (True, 3)):
            stream = EdgeStream(n, updates)
            oracle = InsertionStreamOracle(stream, rng=17)
            state = oracle.begin_batch(list(queries))
            if columnar:
                for batch in stream.batches(batch_size):
                    state.ingest_batch(batch)
            else:
                from repro.streams.stream import decoded_chunks

                for chunk in decoded_chunks(stream.updates(), batch_size):
                    state.ingest_batch(chunk)
            answers[(columnar, batch_size)] = state.finish()
        baseline = answers[(False, 2)]
        assert baseline[0] == 2 and baseline[1] == 3 and baseline[2] == 4
        assert all(result == baseline for result in answers.values())
