"""Tests for core decomposition and degeneracy (Definition 5)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.graph import generators as gen
from repro.graph.degeneracy import (
    core_decomposition,
    degeneracy,
    degeneracy_ordering,
    verify_degeneracy_ordering,
)
from repro.graph.graph import Graph


class TestKnownDegeneracies:
    def test_empty_graph(self):
        assert degeneracy(Graph(5)) == 0

    def test_single_edge(self):
        assert degeneracy(Graph(2, [(0, 1)])) == 1

    def test_tree(self):
        assert degeneracy(gen.path_graph(10)) == 1
        assert degeneracy(gen.star_graph(7)) == 1

    def test_cycle(self):
        assert degeneracy(gen.cycle_graph(9)) == 2

    def test_complete_graph(self):
        assert degeneracy(gen.complete_graph(6)) == 5

    def test_grid_is_at_most_two(self):
        assert degeneracy(gen.grid_graph(6, 7)) == 2

    def test_complete_bipartite(self):
        assert degeneracy(gen.complete_bipartite_graph(3, 8)) == 3

    def test_barabasi_albert_bounded_by_attachment(self):
        graph = gen.barabasi_albert(150, 4, rng=3)
        assert degeneracy(graph) <= 4

    def test_lollipop(self):
        # The K_6 head dominates: degeneracy 5.
        assert degeneracy(gen.lollipop_graph(6, 10)) == 5


class TestCoreDecomposition:
    def test_core_numbers_monotone_under_k_core_definition(self):
        graph = gen.karate_club()
        _, cores, lam = core_decomposition(graph)
        assert lam == max(cores)
        # Every vertex of core number >= k keeps >= k neighbors within
        # the set of vertices with core number >= k.
        for k in range(1, lam + 1):
            members = {v for v in graph.vertices() if cores[v] >= k}
            for v in members:
                inside = sum(1 for w in graph.neighbors(v) if w in members)
                assert inside >= k

    def test_ordering_witnesses_degeneracy(self):
        graph = gen.karate_club()
        ordering = degeneracy_ordering(graph)
        assert sorted(ordering) == list(graph.vertices())
        assert verify_degeneracy_ordering(graph, ordering) == degeneracy(graph)

    def test_any_ordering_upper_bounds_degeneracy(self):
        graph = gen.gnp(30, 0.2, rng=5)
        arbitrary = list(graph.vertices())
        assert verify_degeneracy_ordering(graph, arbitrary) >= degeneracy(graph)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=30)) if possible else []
    return Graph(n, edges)


class TestDegeneracyProperties:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degeneracy_bounds(self, graph):
        lam = degeneracy(graph)
        assert lam <= graph.max_degree()
        if graph.m:
            # lambda >= m/n is the average-degree/2 bound.
            assert lam >= graph.m / graph.n / 2 - 1e-9

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_ordering_forward_degree_equals_lambda(self, graph):
        ordering = degeneracy_ordering(graph)
        assert sorted(ordering) == list(graph.vertices())
        assert verify_degeneracy_ordering(graph, ordering) == degeneracy(graph)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_monotonicity(self, graph):
        """Removing an edge never increases degeneracy."""
        if graph.m == 0:
            return
        lam = degeneracy(graph)
        u, v = graph.edge_at(0)
        smaller = graph.copy()
        smaller.remove_edge(u, v)
        assert degeneracy(smaller) <= lam
