"""Tests for hashing, 1-sparse recovery, ℓ0-sampling, reservoirs."""

import random
from collections import Counter

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import SketchError
from repro.sketch.hashing import MERSENNE_PRIME, PolynomialHash
from repro.sketch.l0 import L0Sampler
from repro.sketch.onesparse import OneSparseRecovery
from repro.sketch.reservoir import (
    ReservoirSampler,
    SingleReservoir,
    SkipAheadReservoirBank,
)


class TestPolynomialHash:
    def test_deterministic(self):
        a = PolynomialHash(4, rng=7)
        b = PolynomialHash(4, rng=7)
        assert all(a.value(x) == b.value(x) for x in range(100))

    def test_range_reduction(self):
        h = PolynomialHash(4, rng=1)
        assert all(0 <= h.to_range(x, 10) < 10 for x in range(200))

    def test_unit_interval(self):
        h = PolynomialHash(4, rng=2)
        assert all(0.0 <= h.to_unit(x) < 1.0 for x in range(200))

    def test_level_distribution_roughly_geometric(self):
        h = PolynomialHash(8, rng=3)
        levels = Counter(h.level(x, 20) for x in range(20000))
        # About half the items at level 0, quarter at level 1, ...
        assert 0.4 <= levels[0] / 20000 <= 0.6
        assert 0.15 <= levels[1] / 20000 <= 0.35

    def test_invalid_independence(self):
        with pytest.raises(ValueError):
            PolynomialHash(0)

    def test_pairwise_collision_rate(self):
        h = PolynomialHash(2, rng=5)
        values = [h.to_range(x, 1000) for x in range(1000)]
        collisions = len(values) - len(set(values))
        assert collisions < 1000 * 0.6  # birthday-ish, loose sanity bound


class TestOneSparseRecovery:
    def test_empty(self):
        sketch = OneSparseRecovery(100, rng=1)
        assert sketch.is_empty
        assert sketch.recover() is None

    def test_single_item(self):
        sketch = OneSparseRecovery(100, rng=2)
        sketch.update(42, 3)
        assert sketch.recover() == (42, 3)

    def test_two_items_rejected(self):
        sketch = OneSparseRecovery(100, rng=3)
        sketch.update(10, 1)
        sketch.update(20, 1)
        assert sketch.recover() is None

    def test_delete_back_to_single(self):
        sketch = OneSparseRecovery(100, rng=4)
        sketch.update(10, 1)
        sketch.update(20, 1)
        sketch.update(10, -1)
        assert sketch.recover() == (20, 1)

    def test_delete_to_empty(self):
        sketch = OneSparseRecovery(100, rng=5)
        sketch.update(7, 1)
        sketch.update(7, -1)
        assert sketch.is_empty
        assert sketch.recover() is None

    def test_out_of_universe_rejected(self):
        sketch = OneSparseRecovery(10, rng=6)
        with pytest.raises(ValueError):
            sketch.update(10, 1)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.sampled_from([1, -1])),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_never_reports_wrong_singleton(self, updates):
        """If recovery succeeds, the reported item is the true support."""
        sketch = OneSparseRecovery(31, rng=9)
        truth = Counter()
        for item, delta in updates:
            sketch.update(item, delta)
            truth[item] += delta
        support = {i: c for i, c in truth.items() if c != 0}
        recovered = sketch.recover()
        if len(support) == 1:
            ((item, count),) = support.items()
            assert recovered == (item, count)
        elif recovered is not None:
            # A false positive needs a fingerprint collision (prob ~2^-61).
            assert dict([recovered]) == support


class TestL0Sampler:
    def _fill(self, sampler, items):
        for item in items:
            sampler.update(item, 1)

    def test_single_item(self):
        sampler = L0Sampler(1000, rng=1, repetitions=4)
        sampler.update(77, 1)
        assert sampler.sample() == 77

    def test_empty_returns_none(self):
        sampler = L0Sampler(1000, rng=2)
        assert sampler.sample() is None
        assert sampler.is_empty()

    def test_sample_in_support(self):
        items = list(range(0, 500, 7))
        sampler = L0Sampler(512, rng=3, repetitions=6)
        self._fill(sampler, items)
        result = sampler.sample()
        assert result in set(items)

    def test_deleted_items_never_returned(self):
        sampler = L0Sampler(256, rng=4, repetitions=6)
        for item in range(40):
            sampler.update(item, 1)
        for item in range(20):
            sampler.update(item, -1)
        for _ in range(5):
            result = sampler.sample()
            assert result is None or 20 <= result < 40

    def test_rough_uniformity(self):
        support = [3, 50, 99, 140, 200, 255]
        counts = Counter()
        for seed in range(800):
            sampler = L0Sampler(256, rng=seed, repetitions=6)
            self._fill(sampler, support)
            result = sampler.sample()
            if result is not None:
                counts[result] += 1
        assert set(counts) <= set(support)
        total = sum(counts.values())
        assert total > 700  # high success rate
        for item in support:
            assert counts[item] / total > 0.5 / len(support)

    def test_space_words_positive_and_monotone_in_repetitions(self):
        small = L0Sampler(1024, rng=1, repetitions=2)
        big = L0Sampler(1024, rng=1, repetitions=8)
        assert 0 < small.space_words < big.space_words

    def test_invalid_args(self):
        with pytest.raises(SketchError):
            L0Sampler(0)
        with pytest.raises(SketchError):
            L0Sampler(10, repetitions=0)
        sampler = L0Sampler(10, rng=1)
        with pytest.raises(SketchError):
            sampler.update(10, 1)


class TestReservoirs:
    def test_single_reservoir_uniform(self):
        counts = Counter()
        for seed in range(4000):
            reservoir = SingleReservoir(rng=seed)
            for item in range(10):
                reservoir.offer(item)
            counts[reservoir.item] += 1
        for item in range(10):
            assert 0.06 <= counts[item] / 4000 <= 0.145

    def test_single_reservoir_empty(self):
        assert SingleReservoir(rng=1).item is None

    def test_reservoir_sampler_capacity(self):
        sampler = ReservoirSampler(5, rng=2)
        for item in range(100):
            sampler.offer(item)
        assert len(sampler.items) == 5
        assert sampler.count == 100

    def test_reservoir_keeps_everything_under_capacity(self):
        sampler = ReservoirSampler(10, rng=3)
        for item in range(6):
            sampler.offer(item)
        assert sorted(sampler.items) == list(range(6))
        assert sampler.contains_all_offered()

    def test_reservoir_inclusion_probability(self):
        hits = Counter()
        for seed in range(3000):
            sampler = ReservoirSampler(3, rng=seed)
            for item in range(12):
                sampler.offer(item)
            for item in sampler.items:
                hits[item] += 1
        # Every item should be included with probability ~3/12 = 0.25.
        for item in range(12):
            assert 0.18 <= hits[item] / 3000 <= 0.32

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestSkipAheadReservoirBank:
    def test_empty_bank_accepts_offers(self):
        bank = SkipAheadReservoirBank(0, rng=1)
        bank.offer("x")
        assert bank.size == 0
        assert bank.count == 1
        assert bank.items() == []

    def test_no_elements_yields_none(self):
        bank = SkipAheadReservoirBank(3, rng=2)
        assert [bank.item(slot) for slot in range(3)] == [None, None, None]

    def test_single_element_fills_every_slot(self):
        bank = SkipAheadReservoirBank(5, rng=3)
        bank.offer("only")
        assert bank.items() == ["only"] * 5

    def test_deterministic_under_seed(self):
        def run(seed):
            bank = SkipAheadReservoirBank(8, rng=seed)
            for item in range(200):
                bank.offer(item)
            return list(bank.items())

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SkipAheadReservoirBank(-1)

    def test_marginal_uniformity(self):
        # Each slot must hold a uniform sample of the stream; pool
        # slots across seeds and check the empirical marginal.
        stream_length = 12
        slots = 4
        counts = Counter()
        runs = 1500
        for seed in range(runs):
            bank = SkipAheadReservoirBank(slots, rng=seed)
            for item in range(stream_length):
                bank.offer(item)
            for slot in range(slots):
                counts[bank.item(slot)] += 1
        total = runs * slots
        expected = 1.0 / stream_length
        for item in range(stream_length):
            assert counts[item] / total == pytest.approx(expected, rel=0.25)

    def test_slots_are_independent(self):
        # P(slot0 == slot1) should be ~1/len(stream) for independent
        # uniform samples, not ~1 (which a shared-sample bug gives).
        stream_length = 10
        matches = 0
        runs = 3000
        for seed in range(runs):
            bank = SkipAheadReservoirBank(2, rng=seed)
            for item in range(stream_length):
                bank.offer(item)
            if bank.item(0) == bank.item(1):
                matches += 1
        assert matches / runs == pytest.approx(1.0 / stream_length, rel=0.35)

    def test_matches_naive_reservoir_distribution(self):
        # Kolmogorov-style comparison: the bank's marginal acceptance
        # behaviour must match K independent SingleReservoirs.
        stream_length = 30
        naive = Counter()
        banked = Counter()
        runs = 2000
        for seed in range(runs):
            single = SingleReservoir(rng=seed)
            for item in range(stream_length):
                single.offer(item)
            naive[single.item] += 1
            bank = SkipAheadReservoirBank(1, rng=seed + runs)
            for item in range(stream_length):
                bank.offer(item)
            banked[bank.item(0)] += 1
        # Compare coarse thirds of the stream to keep the test stable.
        def thirds(counts):
            return [
                sum(counts[i] for i in range(0, 10)),
                sum(counts[i] for i in range(10, 20)),
                sum(counts[i] for i in range(20, 30)),
            ]

        for a, b in zip(thirds(naive), thirds(banked)):
            assert a == pytest.approx(b, rel=0.15)

    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sample_is_from_stream(self, slots, length, seed):
        bank = SkipAheadReservoirBank(slots, rng=seed)
        for item in range(length):
            bank.offer(item)
        assert bank.count == length
        for slot in range(slots):
            sample = bank.item(slot)
            if length == 0:
                assert sample is None
            else:
                assert sample in range(length)
