"""Tests for update-log persistence and the experiments CLI runner."""

import io

import pytest

from repro.errors import StreamError
from repro.graph import generators as gen
from repro.streams.generators import turnstile_churn_stream
from repro.streams.io import read_update_log, write_update_log
from repro.streams.stream import insertion_stream


class TestUpdateLogIO:
    def test_round_trip_insertion_only(self, tmp_path):
        graph = gen.gnp(15, 0.3, rng=1)
        stream = insertion_stream(graph, rng=2)
        path = tmp_path / "log.txt"
        write_update_log(stream, path)
        loaded = read_update_log(path)
        assert loaded.n == stream.n
        assert loaded.final_graph() == graph
        assert not loaded.allows_deletions

    def test_round_trip_turnstile(self, tmp_path):
        graph = gen.gnp(12, 0.3, rng=3)
        stream = turnstile_churn_stream(graph, 10, rng=4)
        path = tmp_path / "log.txt"
        write_update_log(stream, path)
        loaded = read_update_log(path)
        assert loaded.allows_deletions
        assert loaded.final_graph() == graph
        assert loaded.length == stream.length

    def test_order_preserved(self, tmp_path):
        stream = insertion_stream(gen.path_graph(6), rng=5)
        original = [u.edge for u in stream.updates()]
        stream.reset_pass_count()
        path = tmp_path / "log.txt"
        write_update_log(stream, path)
        loaded = read_update_log(path)
        assert [u.edge for u in loaded.updates()] == original

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("* 0 1\n")
        with pytest.raises(StreamError):
            read_update_log(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("+ a b\n")
        with pytest.raises(StreamError):
            read_update_log(path)

    def test_infer_n_without_header(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("+ 0 9\n")
        assert read_update_log(path).n == 10


class TestExperimentRunner:
    def test_registry_complete(self):
        from repro.experiments.runner import EXPERIMENTS

        names = [name for name, _ in EXPERIMENTS]
        assert names == [
            "e01", "e02", "e03", "e04", "e05", "e06", "e07",
            "e08", "e09", "e10", "e11", "e12", "e13", "e14", "e15", "e16",
            "e17", "a01",
        ]

    def test_workers_forwarded_to_backend_aware_experiments(self):
        from repro.experiments.runner import run_all

        buffer = io.StringIO()
        tables = run_all(fast=True, seed=3, only=["e14"], stream=buffer, workers=2)
        assert len(tables) == 1
        text = buffer.getvalue()
        assert "E14" in text and "thread" in text and "process" in text
        # Every row of the mirror-mode comparison reports serial equality.
        assert "False" not in text

    def test_run_single_experiment_to_buffer(self):
        from repro.experiments.runner import run_all

        buffer = io.StringIO()
        tables = run_all(fast=True, seed=3, only=["e10"], stream=buffer)
        assert len(tables) == 1
        text = buffer.getvalue()
        assert "E10" in text
        assert "[e10:" in text

    def test_markdown_mode(self):
        from repro.experiments.runner import run_all

        buffer = io.StringIO()
        run_all(fast=True, seed=3, only=["e10"], stream=buffer, markdown=True)
        assert "| H |" in buffer.getvalue()

    def test_cli_rejects_unknown_id(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["--only", "nope"])
