"""Cross-module integration tests: the full pipelines end-to-end."""

import pytest

import repro
from repro.estimate.search import geometric_search
from repro.exact.cliques import count_cliques
from repro.exact.subgraphs import count_subgraphs
from repro.graph import generators as gen
from repro.graph.degeneracy import degeneracy
from repro.patterns import pattern as pattern_zoo


class TestPublicApiPipelines:
    def test_quickstart_flow(self):
        """The README quickstart, executed."""
        graph = repro.generators.barabasi_albert(200, 4, rng=1)
        stream = repro.insertion_stream(graph, rng=2)
        triangle = repro.patterns.triangle()
        truth = repro.count_subgraphs_exact(graph, triangle)
        result = repro.count_subgraphs_insertion_only(
            stream, triangle, trials=15000, rng=3
        )
        assert result.passes == 3
        assert result.within(truth, 0.3)

    def test_turnstile_flow_with_split_substreams(self):
        """The paper's privacy motivation: split substreams, count one."""
        graph = gen.gnp(30, 0.25, rng=4)
        stream = repro.turnstile_churn_stream(graph, 25, rng=5)
        parts = repro.split_substreams(stream, 2, rng=6)
        # Each substream is a valid turnstile stream of a subgraph.
        sub_graph = parts[0].final_graph()
        truth = count_subgraphs(sub_graph, pattern_zoo.triangle())
        result = repro.count_subgraphs_turnstile(
            parts[0], pattern_zoo.triangle(), trials=2500, rng=7,
            sampler_repetitions=4,
        )
        if truth == 0:
            assert result.estimate <= 2.0
        else:
            assert result.estimate == pytest.approx(truth, rel=0.6)

    def test_all_three_counters_agree_on_one_graph(self):
        graph = gen.power_law_cluster(150, 4, 0.5, rng=8)
        truth = float(repro.count_triangles(graph))
        lam = degeneracy(graph)
        triangle = pattern_zoo.triangle()

        insertion = repro.count_subgraphs_insertion_only(
            repro.insertion_stream(graph, rng=9), triangle, trials=20000, rng=10
        )
        turnstile = repro.count_subgraphs_turnstile(
            repro.turnstile_churn_stream(graph, 40, rng=11),
            triangle,
            trials=3000,
            rng=12,
            sampler_repetitions=4,
        )
        ers = repro.count_cliques_stream(
            repro.insertion_stream(graph, rng=13),
            r=3,
            degeneracy_bound=lam,
            lower_bound=truth,
            rng=14,
        )
        assert insertion.within(truth, 0.3)
        assert turnstile.within(truth, 0.45)
        assert ers.within(truth, 0.5)

    def test_geometric_search_without_lower_bound(self):
        """Counting with no prior L: wrap the 3-pass counter in the
        Lemma 21 geometric search."""
        graph = gen.karate_club()
        triangle = pattern_zoo.triangle()
        truth = count_subgraphs(graph, triangle)

        def estimator(guess):
            stream = repro.insertion_stream(graph, rng=int(guess) % 97 + 1)
            result = repro.count_subgraphs_insertion_only(
                stream, triangle, epsilon=0.3, lower_bound=guess, rng=15
            )
            return result.estimate

        upper = float(graph.m) ** triangle.rho()
        estimate, accepted, evaluations = geometric_search(estimator, upper)
        assert estimate == pytest.approx(truth, rel=0.4)
        assert evaluations >= 2

    def test_uniform_copy_sampling_via_stream(self):
        """Conditioned on success, sampled copies are ~uniform."""
        from collections import Counter

        graph = gen.planted_cliques(18, 3, 6, noise_edges=0, rng=16)
        stream = repro.insertion_stream(graph, rng=17)
        outputs = repro.sample_copies_stream(
            stream, pattern_zoo.triangle(), instances=30000, rng=18
        )
        counts = Counter(copy for copy in outputs if copy is not None)
        assert len(counts) == 6  # all six planted triangles appear
        frequencies = list(counts.values())
        assert max(frequencies) / min(frequencies) < 1.5


class TestScaleSanity:
    def test_medium_stream_throughput(self):
        """A ~10k-edge stream through the 3-pass counter stays tractable
        and accurate; guards against accidental quadratic behavior."""
        graph = gen.barabasi_albert(2000, 5, rng=19)
        assert graph.m == pytest.approx(10000, rel=0.05)
        truth = repro.count_triangles(graph)
        stream = repro.insertion_stream(graph, rng=20)
        result = repro.count_subgraphs_insertion_only(
            stream, pattern_zoo.triangle(), trials=30000, rng=21
        )
        # BA graphs at this density have #T in the low thousands; the
        # budget gives a coarse but bounded estimate.
        assert result.within(truth, 0.5)

    def test_exact_counters_scale(self):
        graph = gen.barabasi_albert(3000, 5, rng=22)
        assert count_cliques(graph, 4) >= 0
        assert repro.count_triangles(graph) > 0
