# Demonstrates: turnstile counting over privacy-split substreams via mergeable linear sketches.
"""Turnstile counting over substreams that cannot be consolidated.

The paper motivates the turnstile model with streams "split into
multiple substreams that cannot be joined for privacy reasons".  This
example simulates that: an edge-update log (with insertions *and*
deletions — e.g. friendships formed and dissolved) is sharded across
three data holders.  No holder may ship raw edges to another, but each
can run the same 3-pass turnstile algorithm on its own shard; because
every query the algorithm asks (ℓ0 samples, degree counters, adjacency
flags — all linear sketches) is mergeable, a coordinator could combine
shard sketches without seeing edges.  Here we demonstrate the per-
shard counting plus the whole-log turnstile run as the reference.

Run:  python examples/privacy_split_turnstile.py
"""

import repro
from repro.exact.subgraphs import count_subgraphs


def main() -> None:
    # The "final" friendship graph after churn.
    graph = repro.generators.gnp(45, 0.15, rng=5)
    triangle = repro.patterns.triangle()
    truth = count_subgraphs(graph, triangle)
    print(f"final graph: n={graph.n}, m={graph.m}, exact #T={truth}")

    # The full update log: friendships form and dissolve over time.
    log = repro.turnstile_churn_stream(graph, churn_edges=80, rng=6)
    print(f"update log: {log.length} updates ({log.length - graph.m} churn)")

    # Whole-log turnstile counting (Theorem 1): the estimate must track
    # the final graph, not the churn.
    whole = repro.count_subgraphs_turnstile(
        log, triangle, trials=1500, rng=7, sampler_repetitions=4
    )
    print(
        f"whole-log 3-pass turnstile estimate: {whole.estimate:.0f} "
        f"(error {whole.error_vs(truth):.1%})"
    )

    # Shard the log by edge across three holders; each shard is a valid
    # turnstile stream (an edge's insertions/deletions stay together).
    shards = repro.split_substreams(log, 3, rng=8)
    print()
    total = 0.0
    for index, shard in enumerate(shards):
        shard_graph = shard.final_graph()
        shard_truth = count_subgraphs(shard_graph, triangle)
        estimate = repro.count_subgraphs_turnstile(
            shard, triangle, trials=1500, rng=100 + index, sampler_repetitions=4
        )
        total += estimate.estimate
        print(
            f"shard {index}: {shard.length:4d} updates, "
            f"local #T={shard_truth:4d}, estimate={estimate.estimate:8.1f} "
            f"(3 passes, {estimate.space_words} words)"
        )
    print()
    print(
        "note: triangles crossing shards are invisible to per-shard counts "
        f"(sum of locals = {total:.0f} <= whole-log estimate {whole.estimate:.0f}); "
        "counting them requires the mergeable-sketch coordinator, which the "
        "linearity of every turnstile query enables."
    )


if __name__ == "__main__":
    main()
