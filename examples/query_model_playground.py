# Demonstrates: writing a custom round-adaptive algorithm and running it on three oracle substrates (Theorems 9/11).
"""The transformation, hands on: one algorithm, three substrates.

Writes a tiny custom round-adaptive algorithm (estimate the average
degree from f1 edge samples and f2 degree queries — 2 rounds) and runs
it, unchanged, against (a) the direct query model, (b) an insertion-
only stream, and (c) a turnstile stream with deletions.  This is
Theorems 9/11 as a library feature rather than a theorem.

Run:  python examples/query_model_playground.py
"""

import statistics

import repro
from repro.oracle.base import DegreeQuery, EdgeCountQuery, RandomEdgeQuery
from repro.oracle.direct import DirectAugmentedOracle
from repro.transform.driver import run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle


def average_degree_algorithm(samples: int, rng_seed: int):
    """2-round algorithm: sample edges, then query endpoint degrees.

    The degree of a random endpoint of a random edge estimates the
    *size-biased* degree; combined with m it yields sum(d^2)/2m, a
    classic stream statistic — but the point here is the round
    structure, not the statistic.
    """
    import random

    rng = random.Random(rng_seed)

    def algorithm():
        answers = yield [EdgeCountQuery()] + [RandomEdgeQuery() for _ in range(samples)]
        m = answers[0]
        edges = [edge for edge in answers[1:] if edge is not None]
        endpoints = [edge[rng.randrange(2)] for edge in edges]
        answers = yield [DegreeQuery(v) for v in endpoints]
        degrees = list(answers)
        if not degrees or not m:
            return None
        return {
            "m": m,
            "size_biased_mean_degree": statistics.mean(degrees),
        }

    return algorithm()


def main() -> None:
    graph = repro.generators.barabasi_albert(500, 4, rng=3)
    exact = sum(d * d for d in graph.degrees()) / (2 * graph.m)
    print(f"graph: n={graph.n}, m={graph.m}; exact size-biased mean degree={exact:.2f}")
    samples = 600

    oracle = DirectAugmentedOracle(graph, rng=10)
    result = run_round_adaptive([average_degree_algorithm(samples, 1)], oracle)
    print(
        f"direct query model : {result.outputs[0]['size_biased_mean_degree']:8.2f} "
        f"(rounds={result.rounds}, queries={result.total_queries})"
    )

    stream = repro.insertion_stream(graph, rng=11)
    insertion_oracle = InsertionStreamOracle(stream, rng=12)
    result = run_round_adaptive([average_degree_algorithm(samples, 2)], insertion_oracle)
    print(
        f"insertion-only     : {result.outputs[0]['size_biased_mean_degree']:8.2f} "
        f"(passes={insertion_oracle.passes_used}, "
        f"space={insertion_oracle.space.peak_words} words)  [Theorem 9]"
    )

    churn = repro.turnstile_churn_stream(graph, 150, rng=13)
    turnstile_oracle = TurnstileStreamOracle(churn, rng=14, sampler_repetitions=4)
    result = run_round_adaptive([average_degree_algorithm(samples, 3)], turnstile_oracle)
    print(
        f"turnstile (+churn) : {result.outputs[0]['size_biased_mean_degree']:8.2f} "
        f"(passes={turnstile_oracle.passes_used}, "
        f"space={turnstile_oracle.space.peak_words} words)  [Theorem 11]"
    )


if __name__ == "__main__":
    main()
