# Demonstrates: the checkpointable live engine — incremental feeding, mid-stream queries, crash-safe snapshot/restore.
"""A miniature "production" counting service on the live engine.

A traffic simulator replays a social-style graph as an open-ended
update feed.  A :class:`~repro.engine.live.LiveEngine` ingests it
incrementally with three mirror copies of the 3-pass FGP triangle
counter plus the exact baseline, answers queries *mid-stream* (the
live state is never disturbed), checkpoints periodically — and then
the "process" crashes: we throw the engine away, restore the latest
checkpoint, replay the unfed tail, and verify the final estimate is
bit-identical to a service that never went down.

Run:  python examples/live_service.py
"""

import os
import statistics
import tempfile

from repro.engine import EstimatorSpec, LiveEngine, fgp_insertion_estimator
from repro.engine.parallel import build_exact_stream
from repro.graph import generators
from repro.patterns import pattern as zoo
from repro.streams.stream import insertion_stream

COPIES = 3
TRIALS = 800


def build_service(n: int) -> LiveEngine:
    engine = LiveEngine(n=n)
    for index in range(COPIES):
        name = f"copy-{index}"
        engine.register_spec(EstimatorSpec(
            name=name,
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=zoo.triangle(), trials=TRIALS, rng=40 + index,
                        name=name),
        ))
    engine.register_spec(EstimatorSpec(
        name="exact", factory=build_exact_stream,
        kwargs=dict(pattern=zoo.triangle()),
    ))
    return engine


def median_of(results) -> float:
    return statistics.median(
        results[f"copy-{index}"].estimate for index in range(COPIES)
    )


def main() -> None:
    graph = generators.power_law_cluster(150, 4, 0.6, 7)
    stream = insertion_stream(graph, rng=8)
    u, v, d = stream.columns()
    checkpoint = os.path.join(tempfile.mkdtemp(prefix="repro-live-"), "svc.ckpt")

    # A service that never goes down, for reference.
    always_up = build_service(graph.n)
    always_up.feed((u, v, d))
    reference = always_up.estimate()
    print(f"reference (never interrupted): median={median_of(reference):.1f} "
          f"exact={reference['exact'].estimate:.0f}")

    # The "real" service: feed in chunks, query mid-stream, checkpoint.
    service = build_service(graph.n)
    chunk = len(u) // 5
    crash_at = None
    for start in range(0, len(u), chunk):
        stop = min(start + chunk, len(u))
        service.feed((u[start:stop], v[start:stop], d[start:stop]))
        mid = service.estimate(["copy-0", "exact"])
        print(f"  t={service.elements:5d} live query: copy-0="
              f"{mid['copy-0'].estimate:9.1f} exact={mid['exact'].estimate:7.0f}")
        service.snapshot(checkpoint)
        if stop >= 3 * len(u) // 5 and crash_at is None:
            crash_at = service.elements
            break  # simulated crash: the engine object is simply dropped

    print(f"-- crash after {crash_at} updates; restoring {checkpoint}")
    restored = LiveEngine.restore(checkpoint)
    restored.feed((u[crash_at:], v[crash_at:], d[crash_at:]))
    final = restored.estimate()
    print(f"restored service final: median={median_of(final):.1f} "
          f"exact={final['exact'].estimate:.0f}")

    agreement = all(
        final[name].estimate == reference[name].estimate for name in final
    )
    print("bit-identical to the never-interrupted service:",
          "yes" if agreement else "NO")
    assert agreement


if __name__ == "__main__":
    main()
