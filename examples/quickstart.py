# Demonstrates: the 3-pass insertion-only counter (Theorem 17) end to end on one graph.
"""Quickstart: approximate triangle counting in 3 passes.

Generates a preferential-attachment graph, streams its edges in random
order, and (1±ε)-approximates the triangle count with the paper's
3-pass insertion-only algorithm (Theorem 17), comparing against the
exact count.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # A "social network": preferential attachment, 600 users.
    graph = repro.generators.barabasi_albert(600, 5, rng=42)
    print(f"graph: n={graph.n}, m={graph.m}, degeneracy={repro.degeneracy(graph)}")

    truth = repro.count_triangles(graph)
    print(f"exact triangle count: {truth}")

    # Stream the edges in random (adversary-chosen would also work) order.
    stream = repro.insertion_stream(graph, rng=7)
    triangle = repro.patterns.triangle()

    # Theorem 17: 3 passes, trials ~ (2m)^1.5 / (eps^2 #T).
    result = repro.count_subgraphs_insertion_only(
        stream,
        triangle,
        epsilon=0.25,
        lower_bound=truth,  # the usual convention: a lower bound on #H
        rng=123,
    )
    print(
        f"3-pass estimate: {result.estimate:.0f} "
        f"(error {result.error_vs(truth):.1%}, passes={result.passes}, "
        f"trials={result.trials}, space={result.space_words} words)"
    )

    # The same algorithm tolerates deletions in the turnstile model
    # (Theorem 1).  ℓ0-sampler updates dominate the runtime, so the
    # demo uses a smaller graph; scale it up if you have the minutes.
    small = repro.generators.power_law_cluster(220, 4, 0.5, rng=44)
    small_truth = repro.count_triangles(small)
    churn_stream = repro.turnstile_churn_stream(small, 120, rng=11)
    turnstile = repro.count_subgraphs_turnstile(
        churn_stream, triangle, trials=1200, rng=13, sampler_repetitions=4
    )
    print(
        f"3-pass turnstile estimate on n={small.n} over {churn_stream.length} "
        f"updates (120 inserted+deleted): {turnstile.estimate:.0f} "
        f"(exact {small_truth}, error {turnstile.error_vs(small_truth):.1%})"
    )


if __name__ == "__main__":
    main()
