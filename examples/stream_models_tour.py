# Demonstrates: the §1.3 stream models (arbitrary, random, degeneracy orders) and what each buys.
"""Tour of the §1.3 stream models: what extra structure buys.

The paper's algorithms work in the *arbitrary-order* model — the
adversary picks the edge order.  §1.3 points at two relaxations
studied in the literature, both implemented in this library:

* **random order**: the stream is a uniformly random permutation.
  A 1-pass estimator becomes possible (prefix wedges + suffix
  closures) where arbitrary order provably needs more passes at the
  same space.
* **adjacency list**: each edge appears twice, grouped by endpoint.
  Contiguous lists make uniform *wedge* sampling streamable, giving an
  accurate 2-pass estimator.

This example runs all of them on one social-network-like graph, then
breaks the random-order promise with an adversarial order to show the
model assumption is load-bearing.

Run:  python examples/stream_models_tour.py
"""

import repro
from repro.baselines.order_models import (
    adjacency_list_triangle_count,
    random_order_triangle_count,
)
from repro.streams.generators import adversarial_order_stream
from repro.streams.models import adjacency_list_stream, random_order_stream


def main() -> None:
    graph = repro.generators.power_law_cluster(500, 5, 0.5, rng=11)
    truth = repro.count_triangles(graph)
    print(f"graph: n={graph.n}, m={graph.m}, exact #T={truth}\n")

    # Arbitrary order: the paper's 3-pass algorithm (Theorem 17).
    result = repro.count_subgraphs_insertion_only(
        repro.insertion_stream(graph, rng=1),
        repro.patterns.triangle(),
        trials=6000,
        rng=2,
    )
    print(f"arbitrary order / 3 passes : {result.summary(truth)}")

    # Random order: one pass suffices.
    result = random_order_triangle_count(
        random_order_stream(graph, rng=3),
        prefix_fraction=0.5,
        sample_probability=0.5,
        rng=4,
    )
    print(f"random order    / 1 pass   : {result.summary(truth)}")

    # Adjacency list: streamable wedge sampling, two passes.
    result = adjacency_list_triangle_count(
        adjacency_list_stream(graph, rng=5), wedge_samples=600, rng=6
    )
    print(f"adjacency list  / 2 passes : {result.summary(truth)}")

    # Break the promise: the same 1-pass estimator on an adversarial
    # order (high-degree edges last) collapses.
    result = random_order_triangle_count(
        adversarial_order_stream(graph),
        prefix_fraction=0.5,
        sample_probability=0.5,
        rng=7,
    )
    print(f"ADVERSARIAL     / 1 pass   : {result.summary(truth)}  <- promise broken")


if __name__ == "__main__":
    main()
