# Demonstrates: the ERS 5r-pass clique counter (Theorem 2) and the geometric lower-bound search.
"""Clique counting in low-degeneracy graphs with the ERS 5r-pass
algorithm (Theorem 2), including the unknown-#K_r geometric search.

Preferential-attachment and planted-community graphs have small
degeneracy λ, so Theorem 2's m·λ^{r-2}/#K_r space beats the general
m^{r/2}/#K_r bound.  This example counts K3 and K4 on such a graph,
then shows the Lemma 21-style geometric search for when no lower
bound on #K_r is known.

Run:  python examples/clique_counting_degeneracy.py
"""

import repro
from repro.estimate.search import geometric_search


def main() -> None:
    graph = repro.generators.planted_cliques(
        300, 5, 40, noise_edges=500, rng=21
    )
    lam = repro.degeneracy(graph)
    print(f"graph: n={graph.n}, m={graph.m}, degeneracy={lam}")

    for r in (3, 4):
        truth = repro.count_cliques(graph, r)
        stream = repro.insertion_stream(graph, rng=30 + r)
        result = repro.count_cliques_stream(
            stream,
            r=r,
            degeneracy_bound=lam,
            lower_bound=truth,
            rng=40 + r,
        )
        print(
            f"K{r}: exact={truth}, ERS estimate={result.estimate:.0f} "
            f"(error {result.error_vs(truth):.1%}, passes={result.passes} <= {5*r}, "
            f"queries={result.details['queries']:.0f})"
        )

    # Unknown #K3: geometric search over the lower bound L, starting
    # from the AGM upper bound m^{rho(K3)} = m^{1.5}.
    print()
    print("geometric search for #K3 without a known lower bound:")
    evaluation_log = []

    def estimator(guess: float) -> float:
        stream = repro.insertion_stream(graph, rng=int(guess) % 1009)
        result = repro.count_cliques_stream(
            stream, r=3, degeneracy_bound=lam, lower_bound=guess, rng=77
        )
        evaluation_log.append((guess, result.estimate))
        return result.estimate

    upper = float(graph.m) ** 1.5
    estimate, accepted_level, evaluations = geometric_search(
        estimator, upper_bound=upper, shrink=4.0
    )
    for guess, value in evaluation_log:
        print(f"  guess L={guess:12.1f}  ->  estimate {value:10.1f}")
    print(
        f"accepted at L={accepted_level:.1f} after {evaluations} evaluations: "
        f"#K3 ~= {estimate:.0f} (exact {repro.count_cliques(graph, 3)})"
    )


if __name__ == "__main__":
    main()
