# Demonstrates: the 2-pass star-decomposable counter answering the paper's open question for a subclass.
"""The conclusion's open question, answered for a subclass.

The paper closes asking: "Can we obtain a 2-pass algorithm for #H with
space ~O(m^ρ(H)/(ε²#H))?"  For every H whose Lemma 4 decomposition is
star-only — paths, even cycles, matchings, stars, K4, diamonds, ... —
the answer is yes: round 2 of Algorithm 1 exists only to complete odd
cycles, so dropping it leaves a 2-round-adaptive sampler and Theorem 9
turns that into 2 passes at unchanged space.

This example sweeps the zoo, showing which patterns qualify and that
the 2-pass counter matches the 3-pass counter's accuracy.

Run:  python examples/two_pass_open_question.py
"""

import repro
from repro.errors import EstimationError
from repro.exact.subgraphs import count_subgraphs
from repro.streaming.two_pass import count_subgraphs_two_pass, is_star_decomposable


def main() -> None:
    graph = repro.generators.gnp(34, 0.3, rng=21)
    print(f"host: gnp n={graph.n}, m={graph.m}\n")
    print(f"{'H':10} {'decomposable?':14} {'#H':>8} {'2-pass estimate':>16} {'passes':>7}")

    zoo = repro.patterns
    for pattern in (
        zoo.path(3),
        zoo.star(3),
        zoo.matching(2),
        zoo.cycle(4),
        zoo.clique(4),
        zoo.diamond(),
        zoo.triangle(),
        zoo.cycle(5),
    ):
        decomposable = is_star_decomposable(pattern)
        truth = count_subgraphs(graph, pattern)
        if not decomposable:
            print(f"{pattern.name:10} {'no (odd cycle)':14} {truth:>8} {'—':>16} {'—':>7}")
            continue
        try:
            result = count_subgraphs_two_pass(
                repro.insertion_stream(graph, rng=22),
                pattern,
                trials=12000,
                rng=23,
            )
        except EstimationError as error:  # pragma: no cover - defensive
            print(f"{pattern.name:10} rejected: {error}")
            continue
        cell = f"{result.estimate:.0f} ({result.error_vs(truth):.0%})"
        print(f"{pattern.name:10} {'yes':14} {truth:>8} {cell:>16} {result.passes:>7}")


if __name__ == "__main__":
    main()
