# Demonstrates: a multi-pattern motif census driven from shared stream passes.
"""Motif census of a social network from an edge stream.

The paper's introduction motivates subgraph counting with transitivity
and clustering coefficients of social networks and motif detection.
This example runs a *motif census*: it estimates the counts of several
small patterns (wedges, triangles, 4-cycles, 4-cliques) over one
simulated social network using the 3-pass algorithm — the same three
passes are shared by all trial instances of one pattern — and derives
the network's transitivity from the streaming estimates alone.

Run:  python examples/social_network_motifs.py
"""

import repro
from repro.exact.subgraphs import count_subgraphs
from repro.experiments.tables import Table


def main() -> None:
    # Power-law-cluster graph: heavy-tailed degrees + real clustering,
    # the standard stand-in for a friendship network.
    graph = repro.generators.power_law_cluster(600, 5, 0.45, rng=99)
    print(f"network: n={graph.n}, m={graph.m}, degeneracy={repro.degeneracy(graph)}")

    motifs = [
        ("wedge (P3)", repro.patterns.path(3), 25000),
        ("triangle", repro.patterns.triangle(), 25000),
        ("square (C4)", repro.patterns.cycle(4), 60000),
        ("clique K4", repro.patterns.clique(4), 60000),
    ]

    table = Table(
        "streaming motif census (3 passes per motif)",
        ["motif", "rho(H)", "exact", "estimate", "rel_err", "trials"],
    )
    estimates = {}
    for name, pattern, trials in motifs:
        truth = count_subgraphs(graph, pattern)
        stream = repro.insertion_stream(graph, rng=hash(name) % 10000)
        result = repro.count_subgraphs_insertion_only(
            stream, pattern, trials=trials, rng=hash(name) % 7919
        )
        estimates[name] = result.estimate
        table.add_row(
            name,
            pattern.rho(),
            truth,
            result.estimate,
            result.error_vs(truth) if truth else float("nan"),
            trials,
        )
    print()
    print(table.render())

    # Transitivity = 3 * #triangles / #wedges, from streaming data only.
    if estimates["wedge (P3)"] > 0:
        transitivity = 3.0 * estimates["triangle"] / estimates["wedge (P3)"]
        from repro.exact.triangles import global_clustering_coefficient

        print()
        print(f"streaming transitivity estimate: {transitivity:.4f}")
        print(f"exact transitivity:              {global_clustering_coefficient(graph):.4f}")


if __name__ == "__main__":
    main()
