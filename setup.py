"""Setup shim.

The environment this repository targets can be fully offline; PEP 660
editable installs then fail because pip cannot fetch the ``wheel``
build dependency.  This classic setup.py enables

    python setup.py develop

as an offline-safe equivalent of ``pip install -e .``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Approximately Counting Subgraphs in Data Streams' "
        "(Fichtenberger & Peng, PODS 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
