"""Pytest path bootstrap: make ``src/`` importable without installation.

Allows ``pytest`` to run in a fresh clone (or a fully offline
environment where editable installs are unavailable).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
