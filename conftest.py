"""Pytest bootstrap: path setup and marker registration.

* makes ``src/`` importable without installation, so ``pytest`` runs in
  a fresh clone (or a fully offline environment where editable installs
  are unavailable);
* registers the ``slow`` and ``statistical`` markers;
* deselects ``statistical`` tests by default so the tier-1 suite stays
  fast — run them explicitly with ``pytest -m statistical``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (kept in tier-1, but a candidate to filter)"
    )
    config.addinivalue_line(
        "markers",
        "statistical: multi-trial statistical-guarantee suite; skipped unless "
        "selected with -m statistical",
    )
    config.addinivalue_line(
        "markers",
        "fuzz: randomized differential equivalence suite "
        "(tests/test_differential_fuzz.py); runs in tier-1 with the fixed "
        "default seed, and in the CI fuzz job with a rotating REPRO_FUZZ_SEED",
    )


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("-m", default="") or ""
    if "statistical" in markexpr:
        return
    skip_statistical = pytest.mark.skip(
        reason="statistical suite is opt-in: run with -m statistical"
    )
    for item in items:
        if "statistical" in item.keywords:
            item.add_marker(skip_statistical)
