"""Shared plumbing of the ``state_dict`` / ``load_state_dict`` protocol.

Every stateful streaming object (sketches, reservoir banks, pass
states, oracles, estimators) exposes the same two methods:

* ``state_dict()`` — the object's mutable runtime state as a plain
  dict of picklable values (ints, tuples, lists, dicts, rng state
  tuples).  Configuration that determines *structure* (sizes,
  universes, trial budgets) is echoed into the dict so a restore into
  a mismatched object fails loudly instead of corrupting silently.
* ``load_state_dict(state)`` — overwrite the runtime state from a
  previously captured dict.  The receiving object must have been
  built with the same configuration (same constructor arguments /
  spec); violations raise :class:`~repro.errors.CheckpointError`.

The helpers here keep validation and ``random.Random`` state packing
in one place so the per-class implementations stay small and cannot
drift on error wording.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.errors import CheckpointError, MergeError


def state_field(kind: str, state: Dict[str, Any], field: str) -> Any:
    """Read a required *field* of a state dict, with a clear error."""
    if not isinstance(state, dict):
        raise CheckpointError(
            f"{kind} state must be a dict, got {type(state).__name__}"
        )
    if field not in state:
        raise CheckpointError(f"{kind} state is missing field {field!r}")
    return state[field]


def check_state_config(kind: str, state: Dict[str, Any], **expected: Any) -> None:
    """Validate the configuration echo of a state dict.

    Each keyword is a configuration field the captured state must
    agree on with the receiving object (e.g. ``universe=...``,
    ``capacity=...``); a mismatch means the state was captured from a
    differently built object and loading it would corrupt silently.
    """
    for field, value in expected.items():
        captured = state_field(kind, state, field)
        if captured != value:
            raise CheckpointError(
                f"{kind} state was captured with {field}={captured!r} but is "
                f"being loaded into an object with {field}={value!r}; rebuild "
                "from the same configuration (spec/seeds) before loading"
            )


def check_merge_config(kind: str, **fields: Any) -> None:
    """Validate the config echo of a ``merge(other)`` call.

    The merge counterpart of :func:`check_state_config`: each keyword
    maps a configuration field to a ``(mine, theirs)`` pair that must
    agree before per-shard aggregates may be added.  A mismatch means
    the two objects were built from different configurations (seeds,
    sizes, pass indices) and merging would corrupt silently; the raised
    :class:`~repro.errors.MergeError` names the first mismatched field.
    """
    for field, (mine, theirs) in fields.items():
        if mine != theirs:
            raise MergeError(
                f"cannot merge {kind}: {field} differs (self has {mine!r}, "
                f"other has {theirs!r}); shards must be built from the same "
                "configuration (spec/seeds/pass index) before merging"
            )


def rng_state(rng: random.Random) -> tuple:
    """A picklable snapshot of a generator's position."""
    return rng.getstate()


def set_rng_state(rng: random.Random, state) -> None:
    """Restore a generator position captured by :func:`rng_state`.

    Tolerates the inner state arriving as a list (e.g. after a round
    trip through a format without tuples).
    """
    try:
        version, internal, gauss_next = state
        rng.setstate((version, tuple(internal), gauss_next))
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"invalid random.Random state: {error}") from error
