"""Small argument-validation helpers used across the library.

These raise built-in exception types (``TypeError`` / ``ValueError``)
because they guard *caller* mistakes, not library state; library-state
errors use the :mod:`repro.errors` hierarchy.
"""

from __future__ import annotations

from typing import Any, Type, TypeVar

T = TypeVar("T")


def check_type(value: Any, expected: Type[T], name: str) -> T:
    """Raise ``TypeError`` unless *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        raise TypeError(f"{name} must be {expected.__name__}, got {type(value).__name__}")
    return value


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 < value < 1``.

    Used for accuracy parameters such as ε where both endpoints are
    degenerate (ε = 0 needs exact counting; ε ≥ 1 is vacuous).
    """
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie strictly between 0 and 1, got {value!r}")
    return value


def check_vertex_count(value: int, name: str = "n") -> int:
    """Raise unless *value* is a non-negative int usable as a vertex count."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value
