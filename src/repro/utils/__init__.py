"""Shared low-level utilities: seeded RNG helpers and validation."""

from repro.utils.rng import RandomSource, derive_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomSource",
    "derive_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
