"""Shared low-level utilities: seeded RNG helpers, validation, retry."""

from repro.utils.retry import RetryPolicy, retry_call
from repro.utils.rng import RandomSource, derive_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomSource",
    "RetryPolicy",
    "retry_call",
    "derive_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
