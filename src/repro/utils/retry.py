"""Jittered-exponential-backoff retry for transient faults.

The parallel and checkpoint layers treat a narrow class of failures as
*transient*: a shared-memory attach racing a slow mount, a disk write
hitting a momentary ``EIO``/``ENOSPC``, a worker respawn losing the
fork race under process pressure.  Those sites wrap the flaky call in
:func:`retry_call` with a :class:`RetryPolicy` — bounded attempts,
exponential delays, and *deterministic* jitter (the jitter fraction is
drawn from a seeded :class:`random.Random`, so a drill that injects a
fault on the Nth call sees the same retry schedule every run; see
:mod:`repro.faults`).

Everything else — logic errors, checkpoint corruption, worker
tracebacks — is deliberately **not** retried: retrying a deterministic
failure only delays the diagnosis.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.errors import ReproError

__all__ = ["RetryPolicy", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and with what delays, a transient call is retried.

    ``attempts`` counts *total* calls (1 = no retries).  Delay before
    retry ``k`` (1-based) is ``base_delay * multiplier**(k-1)`` capped
    at ``max_delay``, then jittered by a multiplicative factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]``.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"retry attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"retry multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"retry jitter must be in [0, 1), got {self.jitter}")

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The jittered delay schedule, one value per retry.

        With a seeded *rng* the schedule is deterministic — the
        property the fault drills assert (same seed, same drill
        outcome, same retry timing decisions).
        """
        if rng is None:
            rng = random.Random()
        delay = self.base_delay
        for _ in range(max(0, self.attempts - 1)):
            capped = min(delay, self.max_delay)
            if self.jitter:
                capped *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, capped)
            delay *= self.multiplier


def retry_call(
    fn: Callable[[], object],
    policy: RetryPolicy = RetryPolicy(),
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    seed: Optional[int] = None,
    label: str = "call",
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn()`` with retries on *retry_on* per *policy*.

    Returns the first successful result.  After the final attempt the
    last exception propagates unchanged (so callers keep their typed
    error surface).  *seed* pins the jitter schedule; *on_retry* is
    invoked as ``on_retry(attempt_number, exception)`` before each
    sleep — the engines use it to log what is being retried.

    :class:`~repro.errors.ReproError` subclasses are never retried
    even when they inherit from a *retry_on* class: library-raised
    errors are deterministic diagnoses, not transient weather.
    """
    rng = random.Random(seed)
    delays = policy.delays(rng)
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as error:
            if isinstance(error, ReproError):
                raise
            try:
                delay = next(delays)
            except StopIteration:
                raise error
            if on_retry is not None:
                on_retry(attempt, error)
            if delay:
                sleep(delay)
