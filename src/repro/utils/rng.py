"""Deterministic randomness plumbing.

Every randomized component in the library accepts either an integer
seed or a :class:`random.Random` instance.  Components that need
several independent randomness consumers (e.g. parallel estimator
instances) derive child generators with :func:`derive_rng` /
:func:`spawn_rngs` so experiments are reproducible and sub-components
never share a stream of random bits by accident.

We use the standard library :class:`random.Random` (Mersenne twister)
rather than ``numpy`` generators for the core algorithms because the
algorithms draw one value at a time and carry Python ints; numpy is
used only in vectorized experiment code.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Optional, Union

#: Anything accepted as a source of randomness by library entry points.
RandomSource = Union[int, random.Random, None]

_DEFAULT_SEED = 0x5EED
_MIX_CONST = 0x9E3779B97F4A7C15  # golden-ratio odd constant (splitmix64)
_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One round of the splitmix64 mixer; decorrelates nearby seeds."""
    value = (value + _MIX_CONST) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def ensure_rng(source: RandomSource = None) -> random.Random:
    """Return a :class:`random.Random` for *source*.

    ``None`` yields a generator with a fixed default seed (the library
    is reproducible by default), an ``int`` seeds a fresh generator,
    and an existing generator is returned unchanged.
    """
    if source is None:
        return random.Random(_DEFAULT_SEED)
    if isinstance(source, random.Random):
        return source
    if isinstance(source, bool) or not isinstance(source, int):
        raise TypeError(f"expected int seed or random.Random, got {type(source).__name__}")
    return random.Random(source)


def derive_seed(parent: random.Random, label: Union[int, str]) -> int:
    """Derive the 64-bit seed :func:`derive_rng` would build a child from.

    Separated from :func:`derive_rng` so a *seed* (a plain int) can be
    shipped across a process boundary instead of a full generator:
    ``random.Random(derive_seed(parent, label))`` in a worker process
    equals ``derive_rng(parent, label)`` in the parent, bit for bit.
    Note both draw 64 fresh bits from *parent*, so calls advance the
    parent identically.
    """
    if isinstance(label, str):
        digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
        label_bits = int.from_bytes(digest, "big")
    else:
        label_bits = label & _MASK64
    base = parent.getrandbits(64)
    return _splitmix64(base ^ label_bits)


def derive_rng(parent: random.Random, label: Union[int, str]) -> random.Random:
    """Derive an independent child generator from *parent*.

    The child's seed mixes fresh bits drawn from *parent* with a
    *label* so distinct labels give decorrelated children even when
    called in a different order across runs.  String labels are hashed
    with blake2b (never the built-in ``hash``, which is randomized per
    process and would silently break run-to-run reproducibility).
    """
    return random.Random(derive_seed(parent, label))


def spawn_rngs(source: RandomSource, count: int) -> Iterator[random.Random]:
    """Yield *count* independent child generators derived from *source*."""
    parent = ensure_rng(source)
    for index in range(count):
        yield derive_rng(parent, index)


def random_unit(rng: random.Random) -> float:
    """Uniform float in ``[0, 1)``; trivial wrapper kept for symmetry."""
    return rng.random()


def random_index(rng: random.Random, upper: int) -> int:
    """Uniform integer in ``[0, upper)``; raises on empty range."""
    if upper <= 0:
        raise ValueError(f"cannot draw from empty range [0, {upper})")
    return rng.randrange(upper)


def coin(rng: random.Random, probability: float) -> bool:
    """Bernoulli draw: ``True`` with the given *probability*."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return rng.random() < probability


def seed_fingerprint(rng: Optional[random.Random]) -> int:
    """A stable 64-bit fingerprint of a generator's current state.

    Used in tests to assert that two runs consumed randomness
    identically (state equality implies identical future draws).
    """
    if rng is None:
        return 0
    state = rng.getstate()
    return _splitmix64(hash(state) & _MASK64)
