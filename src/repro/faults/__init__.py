"""repro.faults — deterministic fault injection and corruption drills.

The robustness layer's test harness *and* the vocabulary its recovery
paths are specified in.  A seeded :class:`FaultPlan` schedules process
faults (kill/wedge a worker at its Nth batch, fail the Nth disk write
or shm attach transiently) at named sites threaded through
:mod:`repro.engine.parallel`, :mod:`repro.engine.live`, and
:mod:`repro.streams.datasets`; :mod:`repro.faults.corrupt` tears,
truncates, and bit-flips checkpoint bytes at chosen offsets.

Quick drill::

    from repro.faults import FaultPlan, activate

    plan = FaultPlan(seed=7).kill_worker(1, nth_batch=3)
    engine = LiveEngine(n=100, backend="process", workers=4,
                        fault_plan=plan)
    ...feed...                      # worker 1 takes a SIGKILL mid-batch
    engine.degraded                 # True once the respawn budget is spent
    engine.estimate()               # median of the surviving copies

Same seed, same rules → same kills, same recovery, same estimates:
determinism is the contract (``tests/test_faults.py`` asserts it, and
the CI ``chaos-smoke`` job prints the seed of any failing drill).
"""

from repro.faults.corrupt import (
    append_garbage,
    flip_bit,
    overwrite_bytes,
    truncate_file,
)
from repro.faults.plan import (
    ACTIONS,
    FaultPlan,
    FaultRule,
    WorkerKilled,
    activate,
    active_plan,
    fire,
)

__all__ = [
    "ACTIONS",
    "FaultPlan",
    "FaultRule",
    "WorkerKilled",
    "activate",
    "active_plan",
    "fire",
    "truncate_file",
    "flip_bit",
    "overwrite_bytes",
    "append_garbage",
]
