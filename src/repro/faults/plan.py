"""Deterministic, seedable fault injection for the engines.

A :class:`FaultPlan` is a picklable list of :class:`FaultRule` entries,
each naming a **site** — a choke point the production code funnels its
risky operations through — and the call ordinal at which the fault
fires.  The plan travels two ways:

* **driver side**: :func:`activate` installs it as the process-global
  active plan; the disk-write and snapshot paths consult
  :func:`active_plan` on every call;
* **worker side**: the pools ship the plan to every worker as part of
  the (picklable) worker arguments, so a rule can SIGKILL or wedge a
  specific worker at its Nth ingested batch even under the ``spawn``
  start method, where module globals do not cross the boundary.

Counters are plain per-rule call counts inside each process, so a
drill's outcome is a pure function of the plan and the call sequence —
no wall clock, no entropy.  The *seed* names the drill (printed on
failure by the chaos smoke suite) and seeds any derived randomness a
drill wants (:meth:`FaultPlan.rng`), e.g. choosing corruption offsets.

Fault sites wired into the library
----------------------------------
``"worker.batch"``
    Fired by the pool worker loop once per ingested batch (before the
    estimators see it).  Supports ``action="kill"`` (process workers:
    real ``SIGKILL``; thread workers: the loop exits silently, which
    is the closest a thread can come to dying without a traceback)
    and ``action="wedge"`` (sleep ``wedge_seconds`` mid-batch).
``"disk.write"``
    Fired per checkpoint/``.reb`` write call.  ``action="io_error"``
    raises a transient ``OSError(EIO)`` — exactly what the retry
    layer treats as weather — for ``count`` consecutive calls.
``"shm.attach"``
    Fired per worker-side shared-memory segment attach;
    ``action="io_error"`` models the attach racing segment creation.

Sites are strings on purpose: drills may introduce new ones without
touching this module, and an inactive plan costs one ``None`` check
at each site.
"""

from __future__ import annotations

import contextlib
import errno
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjected

__all__ = [
    "FaultRule",
    "FaultPlan",
    "WorkerKilled",
    "activate",
    "active_plan",
    "fire",
]

#: Actions a rule may take when it triggers.
ACTIONS = ("kill", "wedge", "io_error", "raise")


class WorkerKilled(BaseException):
    """Silent-death signal for thread workers under an injected kill.

    Derives from ``BaseException`` so the worker loop's error reporter
    does not catch it: the thread unwinds without posting an
    ``("error", ...)`` reply, exactly like a process that took a
    ``SIGKILL`` — which is what the driver's silent-death probes must
    detect.
    """


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: at the *nth* call of *site*, act.

    ``nth`` is 1-based over the calls matching this rule inside one
    process; ``count`` widens the window to ``[nth, nth + count)`` so
    transient errors can fail several consecutive calls (the retry
    drills use ``count=2`` against a 3-attempt policy).  ``worker``
    restricts the rule to one worker id (``None``: any site caller).
    """

    site: str
    action: str
    nth: int = 1
    count: int = 1
    worker: Optional[int] = None
    wedge_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultInjected(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.nth < 1:
            raise FaultInjected(f"fault rule nth must be >= 1, got {self.nth}")
        if self.count < 1:
            raise FaultInjected(f"fault rule count must be >= 1, got {self.count}")


@dataclass
class FaultPlan:
    """A seeded, picklable schedule of deterministic faults.

    Equality-of-outcome is the contract: running the same drill twice
    with plans built from the same seed and rules produces the same
    kills, the same injected errors, and therefore the same final
    estimates (asserted in ``tests/test_faults.py``).
    """

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)
    #: per-rule-index call counters (process-local; reset on unpickle
    #: so each worker process counts its own calls from zero).
    _counts: Dict[int, int] = field(default_factory=dict, repr=False, compare=False)

    def __getstate__(self):
        return {"seed": self.seed, "rules": list(self.rules)}

    def __setstate__(self, state):
        self.seed = state["seed"]
        self.rules = list(state["rules"])
        self._counts = {}

    # -- authoring helpers -------------------------------------------------

    def kill_worker(self, worker: int, nth_batch: int = 1) -> "FaultPlan":
        """Add a SIGKILL-at-the-Nth-batch rule; returns self for chaining."""
        self.rules.append(
            FaultRule(site="worker.batch", action="kill", nth=nth_batch, worker=worker)
        )
        return self

    def wedge_worker(
        self, worker: int, nth_batch: int = 1, seconds: float = 3600.0
    ) -> "FaultPlan":
        """Add a wedge-at-the-Nth-batch rule (the worker stops draining)."""
        self.rules.append(
            FaultRule(
                site="worker.batch",
                action="wedge",
                nth=nth_batch,
                worker=worker,
                wedge_seconds=seconds,
            )
        )
        return self

    def fail_disk_write(self, nth: int = 1, count: int = 1) -> "FaultPlan":
        """Fail the Nth (and ``count-1`` following) disk write transiently."""
        self.rules.append(
            FaultRule(site="disk.write", action="io_error", nth=nth, count=count)
        )
        return self

    def fail_shm_attach(self, nth: int = 1, count: int = 1) -> "FaultPlan":
        """Fail the Nth (and ``count-1`` following) shm attach transiently."""
        self.rules.append(
            FaultRule(site="shm.attach", action="io_error", nth=nth, count=count)
        )
        return self

    def rng(self, label: str = "") -> random.Random:
        """A deterministic RNG derived from the plan seed and *label*.

        Drills use it to pick corruption offsets/victims so the whole
        drill remains a function of one printed seed.  The label is
        folded in via CRC32, not ``hash()`` — string hashing is
        per-process randomized and would break cross-run determinism.
        """
        import zlib

        return random.Random(self.seed * 0x1_0000_0000 + zlib.crc32(label.encode()))

    # -- firing ------------------------------------------------------------

    def fire(self, site: str, worker: Optional[int] = None) -> None:
        """Count this call against every matching rule; act if one trips.

        Triggered actions: ``io_error`` raises ``OSError(EIO)``;
        ``raise`` raises :class:`~repro.errors.FaultInjected`;
        ``kill`` SIGKILLs the current process (or raises
        :class:`WorkerKilled` in a thread worker, identified by
        ``worker.thread`` site suffixing — see :func:`fire`);
        ``wedge`` sleeps ``wedge_seconds``.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.worker is not None and rule.worker != worker:
                continue
            calls = self._counts.get(index, 0) + 1
            self._counts[index] = calls
            if not (rule.nth <= calls < rule.nth + rule.count):
                continue
            if rule.action == "io_error":
                raise OSError(
                    errno.EIO,
                    f"injected transient I/O error at {site!r} call #{calls}"
                    f" (fault plan seed {self.seed})",
                )
            if rule.action == "raise":
                raise FaultInjected(
                    f"injected fault at {site!r} call #{calls}"
                    f" (fault plan seed {self.seed})"
                )
            if rule.action == "wedge":
                time.sleep(rule.wedge_seconds)
                continue
            if rule.action == "kill":
                if worker is not None and site.startswith("worker") and _in_thread():
                    raise WorkerKilled(
                        f"injected thread-worker death at {site!r} call #{calls}"
                    )
                os.kill(os.getpid(), signal.SIGKILL)


def _in_thread() -> bool:
    """Whether the caller runs on a non-main thread (a thread worker)."""
    import threading

    return threading.current_thread() is not threading.main_thread()


#: The driver-side active plan (None: injection disabled, the
#: production default; every site then costs a single global read).
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The process-global plan installed by :func:`activate`, if any."""
    return _ACTIVE


@contextlib.contextmanager
def activate(plan: Optional[FaultPlan]):
    """Install *plan* as the process-global active plan for a scope."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fire(site: str, worker: Optional[int] = None, plan: Optional[FaultPlan] = None) -> None:
    """Fire *site* against *plan* (explicit or the active global).

    The one-line hook production code plants at each site; with no
    plan anywhere it returns immediately.
    """
    target = plan if plan is not None else _ACTIVE
    if target is not None:
        target.fire(site, worker=worker)
