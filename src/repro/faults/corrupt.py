"""Deterministic on-disk corruption for checkpoint drills.

Byte-level helpers that tear, truncate, and bit-flip files at chosen
offsets — the write-side counterpart of :class:`~repro.faults.FaultPlan`
(which injects *process* faults).  Every helper is a pure function of
its arguments, so a corruption-matrix test case is reproducible from
its parameters alone.

The matrix in ``tests/test_checkpoint_corruption.py`` sweeps these
helpers over every section boundary of a live-engine checkpoint
(:func:`repro.engine.live.checkpoint_manifest` exposes the byte
layout) and asserts the typed-error contract: a corrupted checkpoint
either raises :class:`~repro.errors.CheckpointError` naming the bad
section or — for a torn delta tip — restores the longest valid prefix
with a logged warning.  Never a silently-wrong engine.
"""

from __future__ import annotations

import os
import random
from typing import Union

__all__ = [
    "truncate_file",
    "flip_bit",
    "overwrite_bytes",
    "append_garbage",
]

PathLike = Union[str, "os.PathLike[str]"]


def truncate_file(path: PathLike, size: int) -> int:
    """Truncate *path* to *size* bytes (a torn write); returns new size.

    Negative *size* counts back from the end, so ``truncate_file(p, -1)``
    models losing the final byte.
    """
    path = os.fspath(path)
    total = os.path.getsize(path)
    if size < 0:
        size = max(0, total + size)
    size = min(size, total)
    with open(path, "r+b") as handle:
        handle.truncate(size)
    return size


def flip_bit(path: PathLike, offset: int, bit: int = 0) -> None:
    """Flip one bit of the byte at *offset* (negative: from the end)."""
    path = os.fspath(path)
    total = os.path.getsize(path)
    if offset < 0:
        offset += total
    if not 0 <= offset < total:
        raise ValueError(f"offset {offset} outside file of {total} bytes")
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be in [0, 8), got {bit}")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        value = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([value ^ (1 << bit)]))


def overwrite_bytes(path: PathLike, offset: int, data: bytes) -> None:
    """Overwrite bytes at *offset* in place (magic/version mutations)."""
    path = os.fspath(path)
    total = os.path.getsize(path)
    if offset < 0:
        offset += total
    if not 0 <= offset <= total:
        raise ValueError(f"offset {offset} outside file of {total} bytes")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(data)


def append_garbage(path: PathLike, nbytes: int, seed: int = 0) -> bytes:
    """Append *nbytes* of seed-deterministic garbage; returns the bytes."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    rng = random.Random(seed)
    garbage = bytes(rng.getrandbits(8) for _ in range(nbytes))
    with open(os.fspath(path), "ab") as handle:
        handle.write(garbage)
    return garbage
