"""Theorem 9: emulating the augmented general graph model over an
insertion-only stream.

One call to :meth:`InsertionStreamOracle.answer_batch` makes exactly
one pass over the stream and answers every query of the batch:

* f1 (random edge) — one single-item reservoir per query: O(log n) bits;
* f2 (degree) — a counter per queried vertex;
* f3 (i-th neighbor) — a per-vertex arrival counter that captures the
  i-th incident edge;
* f4 (adjacency) — a boolean per queried pair;
* edge count — one counter.

The relaxed-model random-neighbor query is also supported (a
reservoir over arrivals incident to v serves an exactly uniform
neighbor), so relaxed-mode algorithms can run on insertion-only
streams too.

Total space is O(q log n) words for q queries plus the algorithm's own
state — the bound of Theorem 9.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import CheckpointError, MergeError, OracleError
from repro.graph.graph import normalize_edge
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.reservoir import SkipAheadReservoirBank
from repro.streams.batch import (
    EdgeBatch,
    VertexMembership,
    edge_id,
    sorted_member_mask,
)
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream, pass_batches
from repro.utils.checkpoint import (
    check_state_config,
    rng_state,
    set_rng_state,
    state_field,
)
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


class InsertionPassState:
    """One in-flight oracle pass: built from a batch, fed updates, finished.

    Created by :meth:`InsertionStreamOracle.begin_batch`.  The caller —
    either :meth:`InsertionStreamOracle.answer_batch` (which iterates
    the stream itself) or the fused engine (which shares one stream
    iteration among many estimators) — feeds decoded updates through
    :meth:`ingest_batch` and then collects the answers with
    :meth:`finish`.  Randomness is drawn only at construction (the
    skip-ahead banks) and during ingestion (bank offers), in the same
    order as the historical monolithic pass loop, so both drivers
    produce bit-identical answers for the same oracle seed.
    """

    __slots__ = (
        "_oracle",
        "_size",
        "_component",
        "_n",
        "_edge_positions",
        "_neighbor_positions",
        "_degree_positions",
        "_neighbor_query_positions",
        "_adjacency_positions",
        "_edge_count_positions",
        "_degree_counts",
        "_arrival_counts",
        "_neighbor_watch",
        "_captured",
        "_adjacency_pairs",
        "_present_pairs",
        "_edge_count",
        "_edge_bank",
        "_neighbor_banks",
        "_columnar_ready",
        "_degree_members",
        "_degree_accumulator",
        "_arrival_members",
        "_neighbor_members",
        "_adjacency_ids",
        "_adjacency_seen",
    )

    def __init__(self, oracle: "InsertionStreamOracle", batch: QueryBatch, pass_index: int) -> None:
        self._oracle = oracle
        self._size = len(batch)

        edge_positions: List[int] = []
        neighbor_positions: Dict[int, List[int]] = {}
        degree_positions: List[Tuple[int, int]] = []
        neighbor_query_positions: List[int] = []
        adjacency_positions: List[Tuple[int, Tuple[int, int]]] = []
        edge_count_positions: List[int] = []
        degree_vertices: Set[int] = set()
        neighbor_watch: Dict[int, Dict[int, List[int]]] = {}
        adjacency_pairs: Set[Tuple[int, int]] = set()

        for position, query in enumerate(batch):
            kind = type(query)
            if kind is RandomEdgeQuery:
                edge_positions.append(position)
            elif kind is RandomNeighborQuery:
                neighbor_positions.setdefault(query.vertex, []).append(position)
            elif kind is DegreeQuery:
                degree_vertices.add(query.vertex)
                degree_positions.append((position, query.vertex))
            elif kind is NeighborQuery:
                if query.index < 0:
                    raise OracleError(f"neighbor index must be >= 0, got {query.index}")
                neighbor_watch.setdefault(query.vertex, {}).setdefault(
                    query.index, []
                ).append(position)
                neighbor_query_positions.append(position)
            elif kind is AdjacencyQuery:
                edge = normalize_edge(query.u, query.v)
                adjacency_pairs.add(edge)
                adjacency_positions.append((position, edge))
            elif kind is EdgeCountQuery:
                edge_count_positions.append(position)
            else:
                raise OracleError(f"unsupported query type {kind.__name__}")

        self._edge_positions = edge_positions
        self._neighbor_positions = neighbor_positions
        self._degree_positions = degree_positions
        self._neighbor_query_positions = neighbor_query_positions
        self._adjacency_positions = adjacency_positions
        self._edge_count_positions = edge_count_positions
        self._degree_counts: Dict[int, int] = {v: 0 for v in degree_vertices}
        self._arrival_counts: Dict[int, int] = {v: 0 for v in neighbor_watch}
        self._neighbor_watch = neighbor_watch
        self._captured: Dict[int, Optional[int]] = {}
        self._adjacency_pairs = adjacency_pairs
        self._present_pairs: Set[Tuple[int, int]] = set()
        self._edge_count = 0

        self._n = oracle._stream.n
        # Columnar-path lookup structures (vertex-membership filters,
        # sorted pair ids, flat accumulators) are built lazily by the
        # first columnar batch — a scalar-fed pass never pays for
        # them.  See _build_columnar_structures.
        self._columnar_ready = False
        self._degree_members = None
        self._degree_accumulator = None
        self._arrival_members = None
        self._neighbor_members = None
        self._adjacency_ids = None
        self._adjacency_seen = None

        # Skip-ahead banks: O(1) amortized per stream element however
        # many f1/f3 queries the batch carries (see repro.sketch.reservoir).
        self._edge_bank: SkipAheadReservoirBank = SkipAheadReservoirBank(
            len(edge_positions),
            derive_rng(oracle._rng, f"edges-{pass_index}"),
        )
        self._neighbor_banks: Dict[int, SkipAheadReservoirBank] = {
            vertex: SkipAheadReservoirBank(
                len(positions),
                derive_rng(oracle._rng, f"nbrs-{pass_index}-{vertex}"),
            )
            for vertex, positions in neighbor_positions.items()
        }

        # Charge the space meter: O(1) words per query of this batch.
        self._component = f"insertion-pass-{pass_index}"
        words = (
            2 * len(edge_positions)
            + 2 * sum(len(p) for p in neighbor_positions.values())
            + len(degree_vertices)
            + sum(len(ix) for ix in neighbor_watch.values())
            + len(neighbor_watch)
            + len(adjacency_pairs)
            + (1 if edge_count_positions else 0)
        )
        oracle.space.set_usage(self._component, words)

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        """Consume decoded ``(u, v, delta, edge)`` stream elements, in order.

        Structures are independent consumers of the same ordered
        element sequence (each bank draws from its own rng), so the
        edge bank is fed through the batched
        :meth:`~repro.sketch.reservoir.SkipAheadReservoirBank.offer_many`
        and the remaining trackers share one loop that is skipped
        entirely when no query of the pass needs it — the common
        FGP-pass shapes (f1-only, wedge-only, adjacency-only) each hit
        their cheap path.

        Columnar :class:`~repro.streams.batch.EdgeBatch` input takes
        the vectorized route (:meth:`_ingest_columnar`); plain decoded
        tuple lists take the scalar reference loop below.  Both routes
        draw randomness per reservoir bank in identical order, so they
        produce bit-identical answers.
        """
        if isinstance(updates, EdgeBatch):
            self._ingest_columnar(updates)
            return
        self._edge_count += len(updates)
        if self._edge_bank.size:
            self._edge_bank.offer_many([edge for _, _, _, edge in updates])

        neighbor_banks = self._neighbor_banks
        degree_counts = self._degree_counts
        arrival_counts = self._arrival_counts
        adjacency_pairs = self._adjacency_pairs

        if adjacency_pairs and not (neighbor_banks or degree_counts or arrival_counts):
            self._present_pairs.update(
                edge for _, _, _, edge in updates if edge in adjacency_pairs
            )
            return
        if not (neighbor_banks or degree_counts or arrival_counts):
            return

        neighbor_watch = self._neighbor_watch
        captured = self._captured
        present_pairs = self._present_pairs
        for u, v, _, edge in updates:
            if neighbor_banks:
                bank = neighbor_banks.get(u)
                if bank is not None:
                    bank.offer(v)
                bank = neighbor_banks.get(v)
                if bank is not None:
                    bank.offer(u)
            if degree_counts:
                if u in degree_counts:
                    degree_counts[u] += 1
                if v in degree_counts:
                    degree_counts[v] += 1
            if arrival_counts:
                for endpoint, other in ((u, v), (v, u)):
                    if endpoint in arrival_counts:
                        seen = arrival_counts[endpoint]
                        watchers = neighbor_watch[endpoint]
                        if seen in watchers:
                            for position in watchers[seen]:
                                captured[position] = other
                        arrival_counts[endpoint] = seen + 1
            if adjacency_pairs and edge in adjacency_pairs:
                present_pairs.add(edge)

    def _ingest_columnar(self, batch: EdgeBatch) -> None:
        """Vectorized ingestion of one columnar batch.

        Every tracker becomes array work over the batch columns:

        * the f1 edge bank skips ahead over a lazy edge view, touching
          only accepted elements;
        * degree counters are a membership filter plus a grouped count
          into a flat accumulator (folded into the dicts at finish);
        * f3 arrival watchers and random-neighbor reservoirs filter the
          interleaved endpoint events down to watched-incident ones and
          walk only those, grouped by vertex with stream order
          preserved (stable sort) — the reservoir draws therefore
          happen in exactly the scalar order per bank;
        * adjacency flags are one membership test on the batch's dense
          edge ids.
        """
        self._edge_count += len(batch)
        if self._edge_bank.size:
            self._edge_bank.offer_many(batch.edges_view())
        if not self._columnar_ready:
            self._build_columnar_structures()

        degree_members = self._degree_members
        arrival_members = self._arrival_members
        neighbor_members = self._neighbor_members
        if (
            degree_members is not None
            or arrival_members is not None
            or neighbor_members is not None
        ):
            endpoint, other, _ = batch.events()

            if degree_members is not None:
                hits = endpoint[degree_members.mask(endpoint)]
                if len(hits):
                    np.add.at(
                        self._degree_accumulator, degree_members.slots(hits), 1
                    )

            if neighbor_members is not None:
                mask = neighbor_members.mask(endpoint)
                if mask.any():
                    self._offer_grouped(endpoint[mask], other[mask], self._offer_bank)

            if arrival_members is not None:
                mask = arrival_members.mask(endpoint)
                if mask.any():
                    self._offer_grouped(endpoint[mask], other[mask], self._watch_arrivals)

        adjacency_ids = self._adjacency_ids
        if adjacency_ids is not None:
            ids = batch.edge_ids(self._n)
            mask = sorted_member_mask(adjacency_ids, ids)
            if mask.any():
                self._adjacency_seen[np.searchsorted(adjacency_ids, ids[mask])] = True

    def _build_columnar_structures(self) -> None:
        """Lazily build the vectorized-path lookup structures.

        Per-vertex membership filters
        (:class:`~repro.streams.batch.VertexMembership`: dense boolean
        gather tables for ordinary ``n``, sorted binary search on
        huge-universe disk graphs), the sorted adjacency-pair ids, and
        a compact per-watched-vertex degree accumulator that finish()
        folds back into the scalar dicts.  Transient engineering
        scratch of the columnar executor, outside the paper's space
        accounting (which meters the *algorithmic* state only),
        allocated exactly once by the first columnar batch — and never
        proportional to ``n`` beyond the dense-table regime.
        """
        n = self._n
        if self._degree_counts:
            self._degree_members = VertexMembership(self._degree_counts, n)
            self._degree_accumulator = np.zeros(
                len(self._degree_members), dtype=np.int64
            )
        if self._neighbor_watch:
            self._arrival_members = VertexMembership(self._neighbor_watch, n)
        if self._neighbor_banks:
            self._neighbor_members = VertexMembership(self._neighbor_banks, n)
        if self._adjacency_pairs:
            ids = sorted(edge_id(a, b, n) for a, b in self._adjacency_pairs)
            self._adjacency_ids = np.array(ids, dtype=np.int64)
            self._adjacency_seen = np.zeros(len(ids), dtype=bool)
        self._columnar_ready = True

    @staticmethod
    def _offer_grouped(endpoints: np.ndarray, others: np.ndarray, consume) -> None:
        """Group watched-incident events by endpoint, preserving order.

        The stable sort keeps each vertex's incident arrivals in stream
        order; *consume(vertex, arrivals)* receives them as a plain int
        list, exactly the sequence the scalar loop would have fed it.
        """
        order = np.argsort(endpoints, kind="stable")
        endpoints = endpoints[order]
        others = others[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], endpoints[1:] != endpoints[:-1]))
        )
        stops = np.concatenate((boundaries[1:], [len(endpoints)]))
        for start, stop in zip(boundaries.tolist(), stops.tolist()):
            consume(int(endpoints[start]), others[start:stop].tolist())

    def _offer_bank(self, vertex: int, arrivals: List[int]) -> None:
        self._neighbor_banks[vertex].offer_many(arrivals)

    def _watch_arrivals(self, vertex: int, arrivals: List[int]) -> None:
        seen = self._arrival_counts[vertex]
        watchers = self._neighbor_watch[vertex]
        stop = seen + len(arrivals)
        for index, positions in watchers.items():
            if seen <= index < stop:
                captured = arrivals[index - seen]
                for position in positions:
                    self._captured[position] = captured
        self._arrival_counts[vertex] = stop

    def _fold_columnar_state(self) -> None:
        """Fold columnar accumulators back into the scalar dicts (idempotent).

        Called by :meth:`finish` before answering and by
        :meth:`state_dict` before capturing, so the serialized state is
        always the backend-agnostic scalar form however the pass was
        fed.
        """
        if self._degree_accumulator is not None:
            accumulator = self._degree_accumulator
            degree_counts = self._degree_counts
            for slot, vertex in enumerate(self._degree_members.vertices.tolist()):
                count = int(accumulator[slot])
                if count:
                    degree_counts[vertex] += count
                    accumulator[slot] = 0
        if self._adjacency_seen is not None and self._adjacency_seen.any():
            n = self._n
            adjacency_by_id = {
                edge_id(a, b, n): (a, b) for a, b in self._adjacency_pairs
            }
            for identifier in self._adjacency_ids[self._adjacency_seen].tolist():
                self._present_pairs.add(adjacency_by_id[identifier])
            self._adjacency_seen[:] = False

    def merge(self, other: "InsertionPassState") -> None:
        """Always raises :class:`~repro.errors.MergeError`.

        The insertion-path emulation samples f1/f3 with reservoirs
        (:class:`~repro.sketch.reservoir.SkipAheadReservoirBank`), whose
        acceptance probabilities depend on the global stream position —
        per-shard reservoirs are not distributed like one reservoir
        over the combined stream, so there is no correct merge (see
        ``repro.sketch.reservoir._reservoir_merge_error``).  Even the
        deterministic counters (f2/f4/edge count) are not folded:
        returning a partially merged pass would silently bias the f1/f3
        answers.  Partitioned ingestion must run the turnstile path,
        whose sketches are linear.
        """
        raise MergeError(
            "InsertionPassState cannot be merged: its f1/f3 answers come from "
            "reservoir samplers whose draws depend on the global stream order "
            "and element count, so per-shard passes do not compose; use the "
            "turnstile (L0-sketch) path for partitioned ingestion"
        )

    def state_dict(self) -> dict:
        """Mutable runtime state of the in-flight pass.

        Structure (query positions, watch maps, bank sizes) is *not*
        captured: a restore rebuilds it deterministically via
        ``oracle.begin_batch`` on the replayed merged batch and then
        overlays this runtime state (see
        :meth:`~repro.engine.estimators.RoundAdaptiveEstimator.load_state_dict`).
        """
        self._fold_columnar_state()
        return {
            "size": self._size,
            "edge_count": self._edge_count,
            "degree_counts": dict(self._degree_counts),
            "arrival_counts": dict(self._arrival_counts),
            "captured": dict(self._captured),
            "present_pairs": sorted(self._present_pairs),
            "edge_bank": self._edge_bank.state_dict(),
            "neighbor_banks": {
                vertex: bank.state_dict()
                for vertex, bank in self._neighbor_banks.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore runtime state into a structurally identical pass."""
        check_state_config("InsertionPassState", state, size=self._size)
        for field, current in (
            ("degree_counts", self._degree_counts),
            ("arrival_counts", self._arrival_counts),
            ("neighbor_banks", self._neighbor_banks),
        ):
            captured = state_field("InsertionPassState", state, field)
            if set(captured) != set(current):
                raise CheckpointError(
                    f"InsertionPassState state field {field!r} tracks vertices "
                    f"{sorted(captured)} but this pass tracks {sorted(current)}; "
                    "the pass was rebuilt from a different query batch"
                )
        self._fold_columnar_state()
        self._edge_count = int(state_field("InsertionPassState", state, "edge_count"))
        self._degree_counts = {
            vertex: int(count) for vertex, count in state["degree_counts"].items()
        }
        self._arrival_counts = {
            vertex: int(count) for vertex, count in state["arrival_counts"].items()
        }
        self._captured = dict(state_field("InsertionPassState", state, "captured"))
        self._present_pairs = {
            tuple(pair) for pair in state_field("InsertionPassState", state, "present_pairs")
        }
        self._edge_bank.load_state_dict(state["edge_bank"])
        for vertex, bank in self._neighbor_banks.items():
            bank.load_state_dict(state["neighbor_banks"][vertex])

    def finish(self) -> List[Any]:
        """Collect the batch's answers and release the pass's space."""
        self._fold_columnar_state()
        answers: List[Any] = [None] * self._size
        edge_bank = self._edge_bank
        for slot, position in enumerate(self._edge_positions):
            answers[position] = edge_bank.item(slot)
        for vertex, positions in self._neighbor_positions.items():
            bank = self._neighbor_banks[vertex]
            for slot, position in enumerate(positions):
                answers[position] = bank.item(slot)
        degree_counts = self._degree_counts
        for position, vertex in self._degree_positions:
            answers[position] = degree_counts[vertex]
        captured_get = self._captured.get
        for position in self._neighbor_query_positions:
            answers[position] = captured_get(position)
        present_pairs = self._present_pairs
        for position, edge in self._adjacency_positions:
            answers[position] = edge in present_pairs
        edge_count = self._edge_count
        for position in self._edge_count_positions:
            answers[position] = edge_count

        self._oracle.space.release(self._component)
        return answers


class InsertionStreamOracle:
    """Answers query batches with one stream pass per batch.

    *stream* may also be a :class:`~repro.engine.parallel.StreamHandle`
    — the oracle reads only stream *metadata* (``allows_deletions``,
    ``passes_used``); iteration happens in :meth:`answer_batch`, which
    a handle-backed oracle must never reach (the fused engine and the
    parallel driver own the iteration and feed pass-states directly).
    That is what lets worker processes rebuild oracles from picklable
    specs without shipping the stream contents (serialization audit:
    the oracle's own state — rng, accounting, space meter — pickles;
    in-flight :class:`InsertionPassState` objects are transient and
    never cross a process boundary).
    """

    def __init__(
        self,
        stream: EdgeStream,
        rng: RandomSource = None,
        space_meter: Optional[SpaceMeter] = None,
    ) -> None:
        if stream.allows_deletions:
            raise OracleError(
                "InsertionStreamOracle requires an insertion-only stream; "
                "use TurnstileStreamOracle for streams with deletions"
            )
        self._stream = stream
        self._rng = ensure_rng(rng)
        self._pass_index = 0
        self.accounting = QueryAccounting()
        self.space = space_meter if space_meter is not None else SpaceMeter()

    @property
    def passes_used(self) -> int:
        """Stream passes consumed so far."""
        return self._stream.passes_used

    def begin_batch(self, batch: QueryBatch) -> InsertionPassState:
        """Open a pass for *batch* without touching the stream.

        The returned :class:`InsertionPassState` must be fed exactly one
        full pass worth of decoded updates and then finished.  Used by
        the fused engine, which iterates the stream once on behalf of
        every registered estimator.
        """
        self.accounting.record_batch(batch)
        self._pass_index += 1
        return InsertionPassState(self, batch, self._pass_index)

    def answer_batch(self, batch: QueryBatch) -> List[Any]:
        """Answer one round's batch in a single pass over the stream.

        The pass runs over the stream's cached columnar batches
        (:func:`~repro.streams.stream.pass_batches`), which is
        bit-identical to the scalar decode it replaces.
        """
        state = self.begin_batch(batch)
        for chunk in pass_batches(self._stream):
            state.ingest_batch(chunk)
        return state.finish()

    def merge(self, other: "InsertionStreamOracle") -> None:
        """Always raises: insertion passes are reservoir-backed.

        See :meth:`InsertionPassState.merge` for the documented reason;
        raising here (before any pass state is touched) is what makes a
        sharded run over an insertion-only estimator fail loudly at the
        first merge barrier instead of returning silently wrong
        estimates.
        """
        raise MergeError(
            "InsertionStreamOracle cannot be merged: the insertion-only "
            "emulation answers f1/f3 with reservoir samplers, whose draws "
            "depend on the global stream order; use TurnstileStreamOracle "
            "(linear L0 sketches) for partitioned ingestion"
        )

    def state_dict(self) -> dict:
        """Oracle-level runtime state (rng position, accounting, space)."""
        return {
            "rng": rng_state(self._rng),
            "pass_index": self._pass_index,
            "accounting": self.accounting.state_dict(),
            "space": self.space.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture; future passes derive identical randomness."""
        set_rng_state(self._rng, state_field("InsertionStreamOracle", state, "rng"))
        self._pass_index = int(
            state_field("InsertionStreamOracle", state, "pass_index")
        )
        self.accounting.load_state_dict(
            state_field("InsertionStreamOracle", state, "accounting")
        )
        self.space.load_state_dict(state_field("InsertionStreamOracle", state, "space"))
