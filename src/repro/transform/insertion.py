"""Theorem 9: emulating the augmented general graph model over an
insertion-only stream.

One call to :meth:`InsertionStreamOracle.answer_batch` makes exactly
one pass over the stream and answers every query of the batch:

* f1 (random edge) — one single-item reservoir per query: O(log n) bits;
* f2 (degree) — a counter per queried vertex;
* f3 (i-th neighbor) — a per-vertex arrival counter that captures the
  i-th incident edge;
* f4 (adjacency) — a boolean per queried pair;
* edge count — one counter.

The relaxed-model random-neighbor query is also supported (a
reservoir over arrivals incident to v serves an exactly uniform
neighbor), so relaxed-mode algorithms can run on insertion-only
streams too.

Total space is O(q log n) words for q queries plus the algorithm's own
state — the bound of Theorem 9.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import OracleError
from repro.graph.graph import normalize_edge
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.reservoir import SkipAheadReservoirBank
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


class InsertionStreamOracle:
    """Answers query batches with one stream pass per batch."""

    def __init__(
        self,
        stream: EdgeStream,
        rng: RandomSource = None,
        space_meter: Optional[SpaceMeter] = None,
    ) -> None:
        if stream.allows_deletions:
            raise OracleError(
                "InsertionStreamOracle requires an insertion-only stream; "
                "use TurnstileStreamOracle for streams with deletions"
            )
        self._stream = stream
        self._rng = ensure_rng(rng)
        self._pass_index = 0
        self.accounting = QueryAccounting()
        self.space = space_meter if space_meter is not None else SpaceMeter()

    @property
    def passes_used(self) -> int:
        """Stream passes consumed so far."""
        return self._stream.passes_used

    def answer_batch(self, batch: QueryBatch) -> List[Any]:
        """Answer one round's batch in a single pass over the stream."""
        self.accounting.record_batch(batch)
        self._pass_index += 1

        # --- set up per-query state -----------------------------------
        edge_positions: List[int] = []
        neighbor_positions: Dict[int, List[int]] = {}
        degree_vertices: Set[int] = set()
        neighbor_watch: Dict[int, Dict[int, List[int]]] = {}
        adjacency_pairs: Set[Tuple[int, int]] = set()
        wants_edge_count = False

        for position, query in enumerate(batch):
            if isinstance(query, RandomEdgeQuery):
                edge_positions.append(position)
            elif isinstance(query, RandomNeighborQuery):
                neighbor_positions.setdefault(query.vertex, []).append(position)
            elif isinstance(query, DegreeQuery):
                degree_vertices.add(query.vertex)
            elif isinstance(query, NeighborQuery):
                if query.index < 0:
                    raise OracleError(f"neighbor index must be >= 0, got {query.index}")
                neighbor_watch.setdefault(query.vertex, {}).setdefault(
                    query.index, []
                ).append(position)
            elif isinstance(query, AdjacencyQuery):
                adjacency_pairs.add(normalize_edge(query.u, query.v))
            elif isinstance(query, EdgeCountQuery):
                wants_edge_count = True
            else:
                raise OracleError(f"unsupported query type {type(query).__name__}")

        degree_counts: Dict[int, int] = {v: 0 for v in degree_vertices}
        arrival_counts: Dict[int, int] = {v: 0 for v in neighbor_watch}
        captured: Dict[int, Optional[int]] = {}
        present_pairs: Set[Tuple[int, int]] = set()
        edge_count = 0

        # Skip-ahead banks: O(1) amortized per stream element however
        # many f1/f3 queries the batch carries (see repro.sketch.reservoir).
        edge_bank: SkipAheadReservoirBank = SkipAheadReservoirBank(
            len(edge_positions),
            derive_rng(self._rng, f"edges-{self._pass_index}"),
        )
        neighbor_banks: Dict[int, SkipAheadReservoirBank] = {
            vertex: SkipAheadReservoirBank(
                len(positions),
                derive_rng(self._rng, f"nbrs-{self._pass_index}-{vertex}"),
            )
            for vertex, positions in neighbor_positions.items()
        }

        # Charge the space meter: O(1) words per query of this batch.
        component = f"insertion-pass-{self._pass_index}"
        words = (
            2 * len(edge_positions)
            + 2 * sum(len(p) for p in neighbor_positions.values())
            + len(degree_vertices)
            + sum(len(ix) for ix in neighbor_watch.values())
            + len(neighbor_watch)
            + len(adjacency_pairs)
            + (1 if wants_edge_count else 0)
        )
        self.space.set_usage(component, words)

        # --- the pass ---------------------------------------------------
        for update in self._stream.updates():
            u, v = update.u, update.v
            edge_count += 1
            edge_bank.offer(update.edge)
            if neighbor_banks:
                bank = neighbor_banks.get(u)
                if bank is not None:
                    bank.offer(v)
                bank = neighbor_banks.get(v)
                if bank is not None:
                    bank.offer(u)
            if degree_counts:
                if u in degree_counts:
                    degree_counts[u] += 1
                if v in degree_counts:
                    degree_counts[v] += 1
            if arrival_counts:
                for endpoint, other in ((u, v), (v, u)):
                    if endpoint in arrival_counts:
                        seen = arrival_counts[endpoint]
                        watchers = neighbor_watch[endpoint]
                        if seen in watchers:
                            for position in watchers[seen]:
                                captured[position] = other
                        arrival_counts[endpoint] = seen + 1
            if adjacency_pairs and update.edge in adjacency_pairs:
                present_pairs.add(update.edge)

        # --- collect answers ---------------------------------------------
        answers: List[Any] = [None] * len(batch)
        for slot, position in enumerate(edge_positions):
            answers[position] = edge_bank.item(slot)
        for vertex, positions in neighbor_positions.items():
            bank = neighbor_banks[vertex]
            for slot, position in enumerate(positions):
                answers[position] = bank.item(slot)
        for position, query in enumerate(batch):
            if isinstance(query, DegreeQuery):
                answers[position] = degree_counts[query.vertex]
            elif isinstance(query, NeighborQuery):
                answers[position] = captured.get(position)
            elif isinstance(query, AdjacencyQuery):
                answers[position] = normalize_edge(query.u, query.v) in present_pairs
            elif isinstance(query, EdgeCountQuery):
                answers[position] = edge_count

        self.space.release(component)
        return answers
