"""Theorem 9: emulating the augmented general graph model over an
insertion-only stream.

One call to :meth:`InsertionStreamOracle.answer_batch` makes exactly
one pass over the stream and answers every query of the batch:

* f1 (random edge) — one single-item reservoir per query: O(log n) bits;
* f2 (degree) — a counter per queried vertex;
* f3 (i-th neighbor) — a per-vertex arrival counter that captures the
  i-th incident edge;
* f4 (adjacency) — a boolean per queried pair;
* edge count — one counter.

The relaxed-model random-neighbor query is also supported (a
reservoir over arrivals incident to v serves an exactly uniform
neighbor), so relaxed-mode algorithms can run on insertion-only
streams too.

Total space is O(q log n) words for q queries plus the algorithm's own
state — the bound of Theorem 9.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import OracleError
from repro.graph.graph import normalize_edge
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.reservoir import SkipAheadReservoirBank
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream, decoded_chunks
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


class InsertionPassState:
    """One in-flight oracle pass: built from a batch, fed updates, finished.

    Created by :meth:`InsertionStreamOracle.begin_batch`.  The caller —
    either :meth:`InsertionStreamOracle.answer_batch` (which iterates
    the stream itself) or the fused engine (which shares one stream
    iteration among many estimators) — feeds decoded updates through
    :meth:`ingest_batch` and then collects the answers with
    :meth:`finish`.  Randomness is drawn only at construction (the
    skip-ahead banks) and during ingestion (bank offers), in the same
    order as the historical monolithic pass loop, so both drivers
    produce bit-identical answers for the same oracle seed.
    """

    __slots__ = (
        "_oracle",
        "_size",
        "_component",
        "_edge_positions",
        "_neighbor_positions",
        "_degree_positions",
        "_neighbor_query_positions",
        "_adjacency_positions",
        "_edge_count_positions",
        "_degree_counts",
        "_arrival_counts",
        "_neighbor_watch",
        "_captured",
        "_adjacency_pairs",
        "_present_pairs",
        "_edge_count",
        "_edge_bank",
        "_neighbor_banks",
    )

    def __init__(self, oracle: "InsertionStreamOracle", batch: QueryBatch, pass_index: int) -> None:
        self._oracle = oracle
        self._size = len(batch)

        edge_positions: List[int] = []
        neighbor_positions: Dict[int, List[int]] = {}
        degree_positions: List[Tuple[int, int]] = []
        neighbor_query_positions: List[int] = []
        adjacency_positions: List[Tuple[int, Tuple[int, int]]] = []
        edge_count_positions: List[int] = []
        degree_vertices: Set[int] = set()
        neighbor_watch: Dict[int, Dict[int, List[int]]] = {}
        adjacency_pairs: Set[Tuple[int, int]] = set()

        for position, query in enumerate(batch):
            kind = type(query)
            if kind is RandomEdgeQuery:
                edge_positions.append(position)
            elif kind is RandomNeighborQuery:
                neighbor_positions.setdefault(query.vertex, []).append(position)
            elif kind is DegreeQuery:
                degree_vertices.add(query.vertex)
                degree_positions.append((position, query.vertex))
            elif kind is NeighborQuery:
                if query.index < 0:
                    raise OracleError(f"neighbor index must be >= 0, got {query.index}")
                neighbor_watch.setdefault(query.vertex, {}).setdefault(
                    query.index, []
                ).append(position)
                neighbor_query_positions.append(position)
            elif kind is AdjacencyQuery:
                edge = normalize_edge(query.u, query.v)
                adjacency_pairs.add(edge)
                adjacency_positions.append((position, edge))
            elif kind is EdgeCountQuery:
                edge_count_positions.append(position)
            else:
                raise OracleError(f"unsupported query type {kind.__name__}")

        self._edge_positions = edge_positions
        self._neighbor_positions = neighbor_positions
        self._degree_positions = degree_positions
        self._neighbor_query_positions = neighbor_query_positions
        self._adjacency_positions = adjacency_positions
        self._edge_count_positions = edge_count_positions
        self._degree_counts: Dict[int, int] = {v: 0 for v in degree_vertices}
        self._arrival_counts: Dict[int, int] = {v: 0 for v in neighbor_watch}
        self._neighbor_watch = neighbor_watch
        self._captured: Dict[int, Optional[int]] = {}
        self._adjacency_pairs = adjacency_pairs
        self._present_pairs: Set[Tuple[int, int]] = set()
        self._edge_count = 0

        # Skip-ahead banks: O(1) amortized per stream element however
        # many f1/f3 queries the batch carries (see repro.sketch.reservoir).
        self._edge_bank: SkipAheadReservoirBank = SkipAheadReservoirBank(
            len(edge_positions),
            derive_rng(oracle._rng, f"edges-{pass_index}"),
        )
        self._neighbor_banks: Dict[int, SkipAheadReservoirBank] = {
            vertex: SkipAheadReservoirBank(
                len(positions),
                derive_rng(oracle._rng, f"nbrs-{pass_index}-{vertex}"),
            )
            for vertex, positions in neighbor_positions.items()
        }

        # Charge the space meter: O(1) words per query of this batch.
        self._component = f"insertion-pass-{pass_index}"
        words = (
            2 * len(edge_positions)
            + 2 * sum(len(p) for p in neighbor_positions.values())
            + len(degree_vertices)
            + sum(len(ix) for ix in neighbor_watch.values())
            + len(neighbor_watch)
            + len(adjacency_pairs)
            + (1 if edge_count_positions else 0)
        )
        oracle.space.set_usage(self._component, words)

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        """Consume decoded ``(u, v, delta, edge)`` stream elements, in order.

        Structures are independent consumers of the same ordered
        element sequence (each bank draws from its own rng), so the
        edge bank is fed through the batched
        :meth:`~repro.sketch.reservoir.SkipAheadReservoirBank.offer_many`
        and the remaining trackers share one loop that is skipped
        entirely when no query of the pass needs it — the common
        FGP-pass shapes (f1-only, wedge-only, adjacency-only) each hit
        their cheap path.
        """
        self._edge_count += len(updates)
        if self._edge_bank.size:
            self._edge_bank.offer_many([edge for _, _, _, edge in updates])

        neighbor_banks = self._neighbor_banks
        degree_counts = self._degree_counts
        arrival_counts = self._arrival_counts
        adjacency_pairs = self._adjacency_pairs

        if adjacency_pairs and not (neighbor_banks or degree_counts or arrival_counts):
            self._present_pairs.update(
                edge for _, _, _, edge in updates if edge in adjacency_pairs
            )
            return
        if not (neighbor_banks or degree_counts or arrival_counts):
            return

        neighbor_watch = self._neighbor_watch
        captured = self._captured
        present_pairs = self._present_pairs
        for u, v, _, edge in updates:
            if neighbor_banks:
                bank = neighbor_banks.get(u)
                if bank is not None:
                    bank.offer(v)
                bank = neighbor_banks.get(v)
                if bank is not None:
                    bank.offer(u)
            if degree_counts:
                if u in degree_counts:
                    degree_counts[u] += 1
                if v in degree_counts:
                    degree_counts[v] += 1
            if arrival_counts:
                for endpoint, other in ((u, v), (v, u)):
                    if endpoint in arrival_counts:
                        seen = arrival_counts[endpoint]
                        watchers = neighbor_watch[endpoint]
                        if seen in watchers:
                            for position in watchers[seen]:
                                captured[position] = other
                        arrival_counts[endpoint] = seen + 1
            if adjacency_pairs and edge in adjacency_pairs:
                present_pairs.add(edge)

    def finish(self) -> List[Any]:
        """Collect the batch's answers and release the pass's space."""
        answers: List[Any] = [None] * self._size
        edge_bank = self._edge_bank
        for slot, position in enumerate(self._edge_positions):
            answers[position] = edge_bank.item(slot)
        for vertex, positions in self._neighbor_positions.items():
            bank = self._neighbor_banks[vertex]
            for slot, position in enumerate(positions):
                answers[position] = bank.item(slot)
        degree_counts = self._degree_counts
        for position, vertex in self._degree_positions:
            answers[position] = degree_counts[vertex]
        captured_get = self._captured.get
        for position in self._neighbor_query_positions:
            answers[position] = captured_get(position)
        present_pairs = self._present_pairs
        for position, edge in self._adjacency_positions:
            answers[position] = edge in present_pairs
        edge_count = self._edge_count
        for position in self._edge_count_positions:
            answers[position] = edge_count

        self._oracle.space.release(self._component)
        return answers


class InsertionStreamOracle:
    """Answers query batches with one stream pass per batch.

    *stream* may also be a :class:`~repro.engine.parallel.StreamHandle`
    — the oracle reads only stream *metadata* (``allows_deletions``,
    ``passes_used``); iteration happens in :meth:`answer_batch`, which
    a handle-backed oracle must never reach (the fused engine and the
    parallel driver own the iteration and feed pass-states directly).
    That is what lets worker processes rebuild oracles from picklable
    specs without shipping the stream contents (serialization audit:
    the oracle's own state — rng, accounting, space meter — pickles;
    in-flight :class:`InsertionPassState` objects are transient and
    never cross a process boundary).
    """

    def __init__(
        self,
        stream: EdgeStream,
        rng: RandomSource = None,
        space_meter: Optional[SpaceMeter] = None,
    ) -> None:
        if stream.allows_deletions:
            raise OracleError(
                "InsertionStreamOracle requires an insertion-only stream; "
                "use TurnstileStreamOracle for streams with deletions"
            )
        self._stream = stream
        self._rng = ensure_rng(rng)
        self._pass_index = 0
        self.accounting = QueryAccounting()
        self.space = space_meter if space_meter is not None else SpaceMeter()

    @property
    def passes_used(self) -> int:
        """Stream passes consumed so far."""
        return self._stream.passes_used

    def begin_batch(self, batch: QueryBatch) -> InsertionPassState:
        """Open a pass for *batch* without touching the stream.

        The returned :class:`InsertionPassState` must be fed exactly one
        full pass worth of decoded updates and then finished.  Used by
        the fused engine, which iterates the stream once on behalf of
        every registered estimator.
        """
        self.accounting.record_batch(batch)
        self._pass_index += 1
        return InsertionPassState(self, batch, self._pass_index)

    def answer_batch(self, batch: QueryBatch) -> List[Any]:
        """Answer one round's batch in a single pass over the stream."""
        state = self.begin_batch(batch)
        for chunk in decoded_chunks(self._stream.updates()):
            state.ingest_batch(chunk)
        return state.finish()
