"""The query-to-streaming transformation (Theorems 9 and 11).

A *round-adaptive* algorithm (Definition 8) is written once as a
Python generator that yields batches of query objects and receives
their answers.  Running it against:

* a :class:`repro.oracle.DirectAugmentedOracle` reproduces the
  sublinear-time query-model execution;
* an :class:`InsertionStreamOracle` executes it as a k-pass
  insertion-only streaming algorithm (Theorem 9);
* a :class:`TurnstileStreamOracle` executes it as a k-pass turnstile
  streaming algorithm backed by ℓ0-samplers (Theorem 11).

One pass of the stream answers one round's batch; the pass count of a
run therefore equals the algorithm's round-adaptivity, which is the
content of both theorems.
"""

from repro.transform.driver import RoundRunResult, parallel_rounds, run_round_adaptive
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.profile import AdaptivityReport, RoundProfile, profile_rounds
from repro.transform.turnstile import TurnstileStreamOracle

__all__ = [
    "RoundRunResult",
    "parallel_rounds",
    "run_round_adaptive",
    "InsertionStreamOracle",
    "TurnstileStreamOracle",
    "AdaptivityReport",
    "RoundProfile",
    "profile_rounds",
]
