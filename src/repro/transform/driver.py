"""Driver for round-adaptive algorithms (Definition 8).

An algorithm instance is a generator: it yields a batch (sequence) of
query objects for round ℓ and is sent the positionally matching list
of answers; its ``return`` value is the algorithm's output.

The driver runs *many* instances in lockstep — the paper's "parallel
for" — merging all round-ℓ batches into a single oracle call, so a
streaming oracle spends exactly one pass per round regardless of how
many instances run concurrently.  This is how Theorem 17 runs
k = Θ((2m)^ρ / (ε² #H)) samplers in the same three passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Sequence

from repro.errors import OracleError
from repro.oracle.base import Query, QueryAccounting

#: A round-adaptive algorithm instance.
RoundAdaptive = Generator[Sequence[Query], List[Any], Any]


@dataclass
class RoundRunResult:
    """Outcome of driving a set of round-adaptive instances."""

    outputs: List[Any]
    rounds: int
    accounting: QueryAccounting = field(default_factory=QueryAccounting)

    @property
    def total_queries(self) -> int:
        return self.accounting.total


def parallel_rounds(algorithms: Sequence[RoundAdaptive]):
    """Compose round-adaptive sub-algorithms into one round-adaptive step.

    A generator-based mini-driver: merges the sub-algorithms' round-ℓ
    batches into a single yielded batch and dispatches the answers
    back, so a parent generator can run children in lockstep with

        outputs = yield from parallel_rounds(children)

    Children finishing early simply drop out; the composite runs for
    ``max_i rounds(child_i)`` rounds.  This is the "parallel for" of
    the paper's pseudo code (e.g. the per-ordering activity cascades
    of StrIsAssigned all share the same passes).
    """
    outputs: List[Any] = [None] * len(algorithms)
    pending: Dict[int, Sequence[Query]] = {}
    live: Dict[int, RoundAdaptive] = {}
    for index, generator in enumerate(algorithms):
        try:
            pending[index] = next(generator)
            live[index] = generator
        except StopIteration as stop:
            outputs[index] = stop.value

    while live:
        order = sorted(live)
        merged: List[Query] = []
        offsets: Dict[int, int] = {}
        for index in order:
            offsets[index] = len(merged)
            merged.extend(pending[index])

        answers = yield merged

        for index in order:
            begin = offsets[index]
            end = begin + len(pending[index])
            generator = live[index]
            try:
                pending[index] = generator.send(list(answers[begin:end]))
            except StopIteration as stop:
                outputs[index] = stop.value
                del live[index]
                del pending[index]

    return outputs


def run_round_adaptive(
    algorithms: Sequence[RoundAdaptive], oracle
) -> RoundRunResult:
    """Drive *algorithms* against *oracle*, one oracle call per round.

    The oracle must expose ``answer_batch(batch) -> list``.  For the
    stream-backed oracles each call consumes one pass, so the returned
    ``rounds`` equals the number of passes used — the quantity
    Theorems 9 and 11 bound by the algorithms' round-adaptivity.
    """
    outputs: List[Any] = [None] * len(algorithms)
    accounting = QueryAccounting()

    pending: Dict[int, Sequence[Query]] = {}
    live: Dict[int, RoundAdaptive] = {}
    for index, generator in enumerate(algorithms):
        try:
            pending[index] = next(generator)
            live[index] = generator
        except StopIteration as stop:
            outputs[index] = stop.value

    rounds = 0
    while live:
        rounds += 1
        order = sorted(live)
        merged: List[Query] = []
        offsets: Dict[int, int] = {}
        for index in order:
            offsets[index] = len(merged)
            merged.extend(pending[index])
        accounting.record_batch(merged)

        answers = oracle.answer_batch(merged)
        if len(answers) != len(merged):
            raise OracleError(
                f"oracle answered {len(answers)} of {len(merged)} queries"
            )

        for index in order:
            begin = offsets[index]
            end = begin + len(pending[index])
            slice_answers = answers[begin:end]
            generator = live[index]
            try:
                pending[index] = generator.send(slice_answers)
            except StopIteration as stop:
                outputs[index] = stop.value
                del live[index]
                del pending[index]

    return RoundRunResult(outputs=outputs, rounds=rounds, accounting=accounting)
