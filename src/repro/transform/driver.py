"""Driver for round-adaptive algorithms (Definition 8).

An algorithm instance is a generator: it yields a batch (sequence) of
query objects for round ℓ and is sent the positionally matching list
of answers; its ``return`` value is the algorithm's output.

The driver runs *many* instances in lockstep — the paper's "parallel
for" — merging all round-ℓ batches into a single oracle call, so a
streaming oracle spends exactly one pass per round regardless of how
many instances run concurrently.  This is how Theorem 17 runs
k = Θ((2m)^ρ / (ε² #H)) samplers in the same three passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Sequence

from repro.errors import OracleError
from repro.oracle.base import Query, QueryAccounting

#: A round-adaptive algorithm instance.
RoundAdaptive = Generator[Sequence[Query], List[Any], Any]


@dataclass
class RoundRunResult:
    """Outcome of driving a set of round-adaptive instances."""

    outputs: List[Any]
    rounds: int
    accounting: QueryAccounting = field(default_factory=QueryAccounting)

    @property
    def total_queries(self) -> int:
        return self.accounting.total


class LockstepState:
    """The merge/dispatch bookkeeping of one set of lockstep instances.

    The single home of the bit-identity-critical "parallel for" logic:
    prime every generator, merge the live instances' round-ℓ batches in
    index order, and slice one answer list back to them positionally.
    :func:`run_round_adaptive`, :func:`parallel_rounds`, and the fused
    engine's ``RoundAdaptiveEstimator`` all drive rounds through this
    class, so merge order and answer routing cannot drift apart between
    the sequential and fused paths.
    """

    __slots__ = ("outputs", "_pending", "_live", "_order", "_offsets", "merged_size")

    def __init__(self, algorithms: Sequence[RoundAdaptive]) -> None:
        self.outputs: List[Any] = [None] * len(algorithms)
        self._pending: Dict[int, Sequence[Query]] = {}
        self._live: Dict[int, RoundAdaptive] = {}
        for index, generator in enumerate(algorithms):
            try:
                self._pending[index] = next(generator)
                self._live[index] = generator
            except StopIteration as stop:
                self.outputs[index] = stop.value
        self._order: List[int] = []
        self._offsets: Dict[int, int] = {}
        self.merged_size = 0

    @property
    def live(self) -> bool:
        """Whether any instance still has rounds to run."""
        return bool(self._live)

    def merge(self) -> List[Query]:
        """The union of the live instances' next batches, in index order."""
        order = sorted(self._live)
        merged: List[Query] = []
        offsets: Dict[int, int] = {}
        for index in order:
            offsets[index] = len(merged)
            merged.extend(self._pending[index])
        self._order = order
        self._offsets = offsets
        self.merged_size = len(merged)
        return merged

    def dispatch(self, answers: List[Any]) -> None:
        """Route one round's answers back; retire finished instances."""
        if len(answers) != self.merged_size:
            raise OracleError(
                f"oracle answered {len(answers)} of {self.merged_size} queries"
            )
        pending = self._pending
        live = self._live
        offsets = self._offsets
        for index in self._order:
            begin = offsets[index]
            end = begin + len(pending[index])
            generator = live[index]
            try:
                pending[index] = generator.send(answers[begin:end])
            except StopIteration as stop:
                self.outputs[index] = stop.value
                del live[index]
                del pending[index]


def parallel_rounds(algorithms: Sequence[RoundAdaptive]):
    """Compose round-adaptive sub-algorithms into one round-adaptive step.

    A generator-based mini-driver: merges the sub-algorithms' round-ℓ
    batches into a single yielded batch and dispatches the answers
    back, so a parent generator can run children in lockstep with

        outputs = yield from parallel_rounds(children)

    Children finishing early simply drop out; the composite runs for
    ``max_i rounds(child_i)`` rounds.  This is the "parallel for" of
    the paper's pseudo code (e.g. the per-ordering activity cascades
    of StrIsAssigned all share the same passes).
    """
    state = LockstepState(algorithms)
    while state.live:
        answers = yield state.merge()
        state.dispatch(list(answers))
    return state.outputs


def run_round_adaptive(
    algorithms: Sequence[RoundAdaptive], oracle
) -> RoundRunResult:
    """Drive *algorithms* against *oracle*, one oracle call per round.

    The oracle must expose ``answer_batch(batch) -> list``.  For the
    stream-backed oracles each call consumes one pass — read through
    the stream's cached columnar batches
    (:func:`repro.streams.stream.pass_batches`) — so the returned
    ``rounds`` equals the number of passes used, the quantity
    Theorems 9 and 11 bound by the algorithms' round-adaptivity.
    """
    accounting = QueryAccounting()
    state = LockstepState(algorithms)
    rounds = 0
    while state.live:
        rounds += 1
        merged = state.merge()
        accounting.record_batch(merged)
        state.dispatch(oracle.answer_batch(merged))
    return RoundRunResult(outputs=state.outputs, rounds=rounds, accounting=accounting)
