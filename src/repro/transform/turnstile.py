"""Theorem 11: emulating the relaxed augmented model over a turnstile
stream.

One :meth:`TurnstileStreamOracle.answer_batch` call makes one pass and
answers the batch with sketch-backed structures:

* f1 (near-uniform edge) — a fresh ℓ0-sampler over the adjacency-
  matrix vector (edge ids), O(log^4 n) bits each (Lemma 7);
* f3 (near-uniform neighbor of v) — a fresh ℓ0-sampler over the
  adjacency-list column of v;
* f2 (degree) — a signed counter;
* f4 (adjacency) — a signed counter (present iff net count is 1);
* edge count — a signed counter (final multiplicities are 0/1, so the
  signed sum is exactly m).

Indexed neighbor queries (f3 of the non-relaxed model) are rejected —
they have no turnstile emulation, which is exactly why the paper
introduces the relaxed model (Definition 10).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import OracleError
from repro.graph.graph import normalize_edge
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.l0 import L0Sampler
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def _edge_id(u: int, v: int, n: int) -> int:
    """Dense id of the (sorted) pair {u, v} in [0, n*(n-1)/2)."""
    a, b = (u, v) if u < v else (v, u)
    # Pairs (a, b), a < b, ordered lexicographically.
    return a * (2 * n - a - 1) // 2 + (b - a - 1)


def _edge_from_id(identifier: int, n: int) -> Tuple[int, int]:
    """Inverse of :func:`_edge_id`."""
    a = 0
    remaining = identifier
    row = n - 1
    while remaining >= row:
        remaining -= row
        a += 1
        row -= 1
    return a, a + 1 + remaining


class TurnstileStreamOracle:
    """Answers relaxed-model query batches over a turnstile stream."""

    def __init__(
        self,
        stream: EdgeStream,
        rng: RandomSource = None,
        space_meter: Optional[SpaceMeter] = None,
        sampler_repetitions: int = 8,
    ) -> None:
        self._stream = stream
        self._rng = ensure_rng(rng)
        self._pass_index = 0
        self._sampler_repetitions = sampler_repetitions
        self.accounting = QueryAccounting()
        self.space = space_meter if space_meter is not None else SpaceMeter()

    @property
    def passes_used(self) -> int:
        return self._stream.passes_used

    def answer_batch(self, batch: QueryBatch) -> List[Any]:
        """Answer one round's batch in a single pass over the stream."""
        self.accounting.record_batch(batch)
        self._pass_index += 1
        n = self._stream.n
        edge_universe = max(1, n * (n - 1) // 2)

        edge_samplers: List[Tuple[int, L0Sampler]] = []
        neighbor_samplers: List[Tuple[int, int, L0Sampler]] = []
        degree_vertices: Set[int] = set()
        adjacency_pairs: Set[Tuple[int, int]] = set()
        wants_edge_count = False

        for position, query in enumerate(batch):
            if isinstance(query, RandomEdgeQuery):
                child = derive_rng(self._rng, f"l0edge-{self._pass_index}-{position}")
                edge_samplers.append(
                    (position, L0Sampler(edge_universe, child, self._sampler_repetitions))
                )
            elif isinstance(query, RandomNeighborQuery):
                child = derive_rng(self._rng, f"l0nbr-{self._pass_index}-{position}")
                neighbor_samplers.append(
                    (position, query.vertex, L0Sampler(n, child, self._sampler_repetitions))
                )
            elif isinstance(query, DegreeQuery):
                degree_vertices.add(query.vertex)
            elif isinstance(query, AdjacencyQuery):
                adjacency_pairs.add(normalize_edge(query.u, query.v))
            elif isinstance(query, EdgeCountQuery):
                wants_edge_count = True
            elif isinstance(query, NeighborQuery):
                raise OracleError(
                    "indexed neighbor queries (f3, Definition 6) cannot be emulated "
                    "over turnstile streams; the relaxed model (Definition 10) uses "
                    "RandomNeighborQuery instead"
                )
            else:
                raise OracleError(f"unsupported query type {type(query).__name__}")

        degree_counts: Dict[int, int] = {v: 0 for v in degree_vertices}
        pair_counts: Dict[Tuple[int, int], int] = {pair: 0 for pair in adjacency_pairs}
        edge_count = 0

        component = f"turnstile-pass-{self._pass_index}"
        words = (
            sum(s.space_words for _, s in edge_samplers)
            + sum(s.space_words for _, _, s in neighbor_samplers)
            + len(degree_vertices)
            + len(adjacency_pairs)
            + (1 if wants_edge_count else 0)
        )
        self.space.set_usage(component, words)

        # --- the pass ---------------------------------------------------
        for update in self._stream.updates():
            u, v = update.u, update.v
            delta = update.delta
            edge_count += delta
            if edge_samplers:
                identifier = _edge_id(u, v, n)
                for _, sampler in edge_samplers:
                    sampler.update(identifier, delta)
            for _, vertex, sampler in neighbor_samplers:
                if u == vertex:
                    sampler.update(v, delta)
                elif v == vertex:
                    sampler.update(u, delta)
            if degree_counts:
                if u in degree_counts:
                    degree_counts[u] += delta
                if v in degree_counts:
                    degree_counts[v] += delta
            if pair_counts:
                edge = update.edge
                if edge in pair_counts:
                    pair_counts[edge] += delta

        # --- collect answers ---------------------------------------------
        answers: List[Any] = [None] * len(batch)
        for position, sampler in edge_samplers:
            identifier = sampler.sample()
            answers[position] = (
                None if identifier is None else _edge_from_id(identifier, n)
            )
        for position, _, sampler in neighbor_samplers:
            answers[position] = sampler.sample()
        for position, query in enumerate(batch):
            if isinstance(query, DegreeQuery):
                answers[position] = degree_counts[query.vertex]
            elif isinstance(query, AdjacencyQuery):
                answers[position] = pair_counts[normalize_edge(query.u, query.v)] == 1
            elif isinstance(query, EdgeCountQuery):
                answers[position] = edge_count

        self.space.release(component)
        return answers
