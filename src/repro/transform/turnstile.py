"""Theorem 11: emulating the relaxed augmented model over a turnstile
stream.

One :meth:`TurnstileStreamOracle.answer_batch` call makes one pass and
answers the batch with sketch-backed structures:

* f1 (near-uniform edge) — a fresh ℓ0-sampler over the adjacency-
  matrix vector (edge ids), O(log^4 n) bits each (Lemma 7);
* f3 (near-uniform neighbor of v) — a fresh ℓ0-sampler over the
  adjacency-list column of v;
* f2 (degree) — a signed counter;
* f4 (adjacency) — a signed counter (present iff net count is 1);
* edge count — a signed counter (final multiplicities are 0/1, so the
  signed sum is exactly m).

Indexed neighbor queries (f3 of the non-relaxed model) are rejected —
they have no turnstile emulation, which is exactly why the paper
introduces the relaxed model (Definition 10).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import OracleError
from repro.graph.graph import normalize_edge
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.l0 import L0Sampler
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream, decoded_chunks
from repro.utils.rng import RandomSource, derive_rng, ensure_rng


def _edge_id(u: int, v: int, n: int) -> int:
    """Dense id of the (sorted) pair {u, v} in [0, n*(n-1)/2)."""
    a, b = (u, v) if u < v else (v, u)
    # Pairs (a, b), a < b, ordered lexicographically.
    return a * (2 * n - a - 1) // 2 + (b - a - 1)


def _edge_from_id(identifier: int, n: int) -> Tuple[int, int]:
    """Inverse of :func:`_edge_id`."""
    a = 0
    remaining = identifier
    row = n - 1
    while remaining >= row:
        remaining -= row
        a += 1
        row -= 1
    return a, a + 1 + remaining


class TurnstilePassState:
    """One in-flight turnstile pass (see :class:`InsertionPassState`).

    The ℓ0-sampler banks are linear sketches, so ingestion iterates
    sampler-major over each decoded batch (one :meth:`L0Sampler.update_many`
    call per sampler) — the per-element Python overhead of the historical
    update-major loop is paid once per batch instead.  No randomness is
    drawn during ingestion, so answers are bit-identical to the old loop.
    """

    __slots__ = (
        "_oracle",
        "_size",
        "_component",
        "_n",
        "_edge_samplers",
        "_neighbor_samplers",
        "_samplers_by_vertex",
        "_degree_positions",
        "_adjacency_positions",
        "_edge_count_positions",
        "_degree_counts",
        "_pair_counts",
        "_edge_count",
    )

    def __init__(self, oracle: "TurnstileStreamOracle", batch: QueryBatch, pass_index: int) -> None:
        self._oracle = oracle
        self._size = len(batch)
        n = oracle._stream.n
        self._n = n
        edge_universe = max(1, n * (n - 1) // 2)

        edge_samplers: List[Tuple[int, L0Sampler]] = []
        neighbor_samplers: List[Tuple[int, int, L0Sampler]] = []
        degree_positions: List[Tuple[int, int]] = []
        adjacency_positions: List[Tuple[int, Tuple[int, int]]] = []
        edge_count_positions: List[int] = []
        degree_vertices: Set[int] = set()
        adjacency_pairs: Set[Tuple[int, int]] = set()

        for position, query in enumerate(batch):
            kind = type(query)
            if kind is RandomEdgeQuery:
                child = derive_rng(oracle._rng, f"l0edge-{pass_index}-{position}")
                edge_samplers.append(
                    (position, L0Sampler(edge_universe, child, oracle._sampler_repetitions))
                )
            elif kind is RandomNeighborQuery:
                child = derive_rng(oracle._rng, f"l0nbr-{pass_index}-{position}")
                neighbor_samplers.append(
                    (position, query.vertex, L0Sampler(n, child, oracle._sampler_repetitions))
                )
            elif kind is DegreeQuery:
                degree_vertices.add(query.vertex)
                degree_positions.append((position, query.vertex))
            elif kind is AdjacencyQuery:
                edge = normalize_edge(query.u, query.v)
                adjacency_pairs.add(edge)
                adjacency_positions.append((position, edge))
            elif kind is EdgeCountQuery:
                edge_count_positions.append(position)
            elif kind is NeighborQuery:
                raise OracleError(
                    "indexed neighbor queries (f3, Definition 6) cannot be emulated "
                    "over turnstile streams; the relaxed model (Definition 10) uses "
                    "RandomNeighborQuery instead"
                )
            else:
                raise OracleError(f"unsupported query type {kind.__name__}")

        self._edge_samplers = edge_samplers
        self._neighbor_samplers = neighbor_samplers
        self._samplers_by_vertex: Dict[int, List[L0Sampler]] = {}
        for _, vertex, sampler in neighbor_samplers:
            self._samplers_by_vertex.setdefault(vertex, []).append(sampler)
        self._degree_positions = degree_positions
        self._adjacency_positions = adjacency_positions
        self._edge_count_positions = edge_count_positions
        self._degree_counts: Dict[int, int] = {v: 0 for v in degree_vertices}
        self._pair_counts: Dict[Tuple[int, int], int] = {pair: 0 for pair in adjacency_pairs}
        self._edge_count = 0

        self._component = f"turnstile-pass-{pass_index}"
        words = (
            sum(s.space_words for _, s in edge_samplers)
            + sum(s.space_words for _, _, s in neighbor_samplers)
            + len(degree_vertices)
            + len(adjacency_pairs)
            + (1 if edge_count_positions else 0)
        )
        oracle.space.set_usage(self._component, words)

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        """Consume decoded ``(u, v, delta, edge)`` stream elements, in order."""
        degree_counts = self._degree_counts
        pair_counts = self._pair_counts
        edge_count = self._edge_count
        for u, v, delta, edge in updates:
            edge_count += delta
            if degree_counts:
                if u in degree_counts:
                    degree_counts[u] += delta
                if v in degree_counts:
                    degree_counts[v] += delta
            if pair_counts and edge in pair_counts:
                pair_counts[edge] += delta
        self._edge_count = edge_count

        if self._edge_samplers:
            n = self._n
            pairs = [(_edge_id(u, v, n), delta) for u, v, delta, _ in updates]
            for _, sampler in self._edge_samplers:
                sampler.update_many(pairs)
        samplers_by_vertex = self._samplers_by_vertex
        if samplers_by_vertex:
            # One scan groups the batch by watched endpoint, so S samplers
            # over the same vertex share the incident list instead of each
            # rescanning the whole batch.
            incident: Dict[int, List[Tuple[int, int]]] = {}
            for u, v, delta, _ in updates:
                if u in samplers_by_vertex:
                    incident.setdefault(u, []).append((v, delta))
                if v in samplers_by_vertex:
                    incident.setdefault(v, []).append((u, delta))
            for vertex, pairs in incident.items():
                for sampler in samplers_by_vertex[vertex]:
                    sampler.update_many(pairs)

    def finish(self) -> List[Any]:
        """Collect the batch's answers and release the pass's space."""
        n = self._n
        answers: List[Any] = [None] * self._size
        for position, sampler in self._edge_samplers:
            identifier = sampler.sample()
            answers[position] = (
                None if identifier is None else _edge_from_id(identifier, n)
            )
        for position, _, sampler in self._neighbor_samplers:
            answers[position] = sampler.sample()
        degree_counts = self._degree_counts
        for position, vertex in self._degree_positions:
            answers[position] = degree_counts[vertex]
        pair_counts = self._pair_counts
        for position, edge in self._adjacency_positions:
            answers[position] = pair_counts[edge] == 1
        edge_count = self._edge_count
        for position in self._edge_count_positions:
            answers[position] = edge_count

        self._oracle.space.release(self._component)
        return answers


class TurnstileStreamOracle:
    """Answers relaxed-model query batches over a turnstile stream.

    Like :class:`~repro.transform.insertion.InsertionStreamOracle`,
    *stream* may be a :class:`~repro.engine.parallel.StreamHandle`:
    construction and :meth:`begin_batch` touch only metadata (``n``,
    ``passes_used``), so worker processes rebuild turnstile oracles
    from picklable specs and feed the pass-states from broadcast
    batches.  :class:`TurnstilePassState` instances are transient and
    never cross a process boundary.
    """

    def __init__(
        self,
        stream: EdgeStream,
        rng: RandomSource = None,
        space_meter: Optional[SpaceMeter] = None,
        sampler_repetitions: int = 8,
    ) -> None:
        self._stream = stream
        self._rng = ensure_rng(rng)
        self._pass_index = 0
        self._sampler_repetitions = sampler_repetitions
        self.accounting = QueryAccounting()
        self.space = space_meter if space_meter is not None else SpaceMeter()

    @property
    def passes_used(self) -> int:
        return self._stream.passes_used

    def begin_batch(self, batch: QueryBatch) -> TurnstilePassState:
        """Open a pass for *batch* without touching the stream.

        Counterpart of :meth:`InsertionStreamOracle.begin_batch` for the
        fused engine; the caller owns the stream iteration.
        """
        self.accounting.record_batch(batch)
        self._pass_index += 1
        return TurnstilePassState(self, batch, self._pass_index)

    def answer_batch(self, batch: QueryBatch) -> List[Any]:
        """Answer one round's batch in a single pass over the stream."""
        state = self.begin_batch(batch)
        for chunk in decoded_chunks(self._stream.updates()):
            state.ingest_batch(chunk)
        return state.finish()
