"""Theorem 11: emulating the relaxed augmented model over a turnstile
stream.

One :meth:`TurnstileStreamOracle.answer_batch` call makes one pass and
answers the batch with sketch-backed structures:

* f1 (near-uniform edge) — a fresh ℓ0-sampler over the adjacency-
  matrix vector (edge ids), O(log^4 n) bits each (Lemma 7);
* f3 (near-uniform neighbor of v) — a fresh ℓ0-sampler over the
  adjacency-list column of v;
* f2 (degree) — a signed counter;
* f4 (adjacency) — a signed counter (present iff net count is 1);
* edge count — a signed counter (final multiplicities are 0/1, so the
  signed sum is exactly m).

Indexed neighbor queries (f3 of the non-relaxed model) are rejected —
they have no turnstile emulation, which is exactly why the paper
introduces the relaxed model (Definition 10).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import CheckpointError, MergeError, OracleError
from repro.graph.graph import normalize_edge
from repro.oracle.base import (
    AdjacencyQuery,
    DegreeQuery,
    EdgeCountQuery,
    NeighborQuery,
    Query,
    QueryAccounting,
    QueryBatch,
    RandomEdgeQuery,
    RandomNeighborQuery,
)
from repro.sketch.l0 import L0Sampler
from repro.streams.batch import (
    EdgeBatch,
    VertexMembership,
    edge_id,
    sorted_member_mask,
)
from repro.streams.space import SpaceMeter
from repro.streams.stream import EdgeStream, pass_batches
from repro.utils.checkpoint import (
    check_merge_config,
    check_state_config,
    rng_state,
    set_rng_state,
    state_field,
)
from repro.utils.rng import RandomSource, derive_rng, ensure_rng, seed_fingerprint


#: Single home of the dense pair encoding: repro.streams.batch.edge_id
#: (kept under the historical private name for this module's callers).
_edge_id = edge_id


def _edge_from_id(identifier: int, n: int) -> Tuple[int, int]:
    """Inverse of :func:`_edge_id`."""
    a = 0
    remaining = identifier
    row = n - 1
    while remaining >= row:
        remaining -= row
        a += 1
        row -= 1
    return a, a + 1 + remaining


class TurnstilePassState:
    """One in-flight turnstile pass (see :class:`InsertionPassState`).

    The ℓ0-sampler banks are linear sketches, so ingestion iterates
    sampler-major over each decoded batch (one :meth:`L0Sampler.update_many`
    call per sampler) — the per-element Python overhead of the historical
    update-major loop is paid once per batch instead.  No randomness is
    drawn during ingestion, so answers are bit-identical to the old loop.
    """

    __slots__ = (
        "_oracle",
        "_size",
        "_component",
        "_n",
        "_edge_samplers",
        "_neighbor_samplers",
        "_samplers_by_vertex",
        "_degree_positions",
        "_adjacency_positions",
        "_edge_count_positions",
        "_degree_counts",
        "_pair_counts",
        "_edge_count",
        "_columnar_ready",
        "_degree_members",
        "_degree_accumulator",
        "_sampler_members",
        "_pair_ids",
        "_pair_accumulator",
    )

    def __init__(self, oracle: "TurnstileStreamOracle", batch: QueryBatch, pass_index: int) -> None:
        self._oracle = oracle
        self._size = len(batch)
        n = oracle._stream.n
        self._n = n
        edge_universe = max(1, n * (n - 1) // 2)

        edge_samplers: List[Tuple[int, L0Sampler]] = []
        neighbor_samplers: List[Tuple[int, int, L0Sampler]] = []
        degree_positions: List[Tuple[int, int]] = []
        adjacency_positions: List[Tuple[int, Tuple[int, int]]] = []
        edge_count_positions: List[int] = []
        degree_vertices: Set[int] = set()
        adjacency_pairs: Set[Tuple[int, int]] = set()

        for position, query in enumerate(batch):
            kind = type(query)
            if kind is RandomEdgeQuery:
                child = derive_rng(oracle._rng, f"l0edge-{pass_index}-{position}")
                edge_samplers.append(
                    (position, L0Sampler(edge_universe, child, oracle._sampler_repetitions))
                )
            elif kind is RandomNeighborQuery:
                child = derive_rng(oracle._rng, f"l0nbr-{pass_index}-{position}")
                neighbor_samplers.append(
                    (position, query.vertex, L0Sampler(n, child, oracle._sampler_repetitions))
                )
            elif kind is DegreeQuery:
                degree_vertices.add(query.vertex)
                degree_positions.append((position, query.vertex))
            elif kind is AdjacencyQuery:
                edge = normalize_edge(query.u, query.v)
                adjacency_pairs.add(edge)
                adjacency_positions.append((position, edge))
            elif kind is EdgeCountQuery:
                edge_count_positions.append(position)
            elif kind is NeighborQuery:
                raise OracleError(
                    "indexed neighbor queries (f3, Definition 6) cannot be emulated "
                    "over turnstile streams; the relaxed model (Definition 10) uses "
                    "RandomNeighborQuery instead"
                )
            else:
                raise OracleError(f"unsupported query type {kind.__name__}")

        self._edge_samplers = edge_samplers
        self._neighbor_samplers = neighbor_samplers
        self._samplers_by_vertex: Dict[int, List[L0Sampler]] = {}
        for _, vertex, sampler in neighbor_samplers:
            self._samplers_by_vertex.setdefault(vertex, []).append(sampler)
        self._degree_positions = degree_positions
        self._adjacency_positions = adjacency_positions
        self._edge_count_positions = edge_count_positions
        self._degree_counts: Dict[int, int] = {v: 0 for v in degree_vertices}
        self._pair_counts: Dict[Tuple[int, int], int] = {pair: 0 for pair in adjacency_pairs}
        self._edge_count = 0

        # Columnar-path lookup structures (see InsertionPassState) are
        # built lazily by the first columnar batch; the scalar ingest
        # loop below never touches them, and finish() folds the flat
        # accumulators back into the dicts.
        self._columnar_ready = False
        self._degree_members = None
        self._degree_accumulator = None
        self._sampler_members = None
        self._pair_ids = None
        self._pair_accumulator = None

        self._component = f"turnstile-pass-{pass_index}"
        words = (
            sum(s.space_words for _, s in edge_samplers)
            + sum(s.space_words for _, _, s in neighbor_samplers)
            + len(degree_vertices)
            + len(adjacency_pairs)
            + (1 if edge_count_positions else 0)
        )
        oracle.space.set_usage(self._component, words)

    def ingest_batch(self, updates: Sequence[Tuple[int, int, int, Tuple[int, int]]]) -> None:
        """Consume decoded ``(u, v, delta, edge)`` stream elements, in order.

        Columnar :class:`~repro.streams.batch.EdgeBatch` input takes the
        vectorized route (:meth:`_ingest_columnar`); tuple lists take
        the scalar reference loop below.  The sketches are linear and
        no randomness is drawn during ingestion, so both routes yield
        bit-identical answers.
        """
        if isinstance(updates, EdgeBatch):
            self._ingest_columnar(updates)
            return
        degree_counts = self._degree_counts
        pair_counts = self._pair_counts
        edge_count = self._edge_count
        for u, v, delta, edge in updates:
            edge_count += delta
            if degree_counts:
                if u in degree_counts:
                    degree_counts[u] += delta
                if v in degree_counts:
                    degree_counts[v] += delta
            if pair_counts and edge in pair_counts:
                pair_counts[edge] += delta
        self._edge_count = edge_count

        if self._edge_samplers:
            n = self._n
            pairs = [(_edge_id(u, v, n), delta) for u, v, delta, _ in updates]
            for _, sampler in self._edge_samplers:
                sampler.update_many(pairs)
        samplers_by_vertex = self._samplers_by_vertex
        if samplers_by_vertex:
            # One scan groups the batch by watched endpoint, so S samplers
            # over the same vertex share the incident list instead of each
            # rescanning the whole batch.
            incident: Dict[int, List[Tuple[int, int]]] = {}
            for u, v, delta, _ in updates:
                if u in samplers_by_vertex:
                    incident.setdefault(u, []).append((v, delta))
                if v in samplers_by_vertex:
                    incident.setdefault(v, []).append((u, delta))
            for vertex, pairs in incident.items():
                for sampler in samplers_by_vertex[vertex]:
                    sampler.update_many(pairs)

    def _ingest_columnar(self, batch: EdgeBatch) -> None:
        """Vectorized ingestion of one columnar batch.

        Counters become filtered grouped sums into flat accumulators;
        the ℓ0-sampler banks consume the batch through
        :meth:`~repro.sketch.l0.L0Sampler.update_many_arrays` — one
        batched Horner + shared-base power table + grouped scatter-add
        per sampler repetition instead of per-element Python calls.
        """
        self._edge_count += int(batch.delta.sum())
        if not self._columnar_ready:
            self._build_columnar_structures()

        degree_members = self._degree_members
        sampler_members = self._sampler_members
        if degree_members is not None or sampler_members is not None:
            endpoint, other, index = batch.events()

            if degree_members is not None:
                mask = degree_members.mask(endpoint)
                if mask.any():
                    np.add.at(
                        self._degree_accumulator,
                        degree_members.slots(endpoint[mask]),
                        batch.delta[index[mask]],
                    )

            if sampler_members is not None:
                mask = sampler_members.mask(endpoint)
                if mask.any():
                    hits = np.flatnonzero(mask)
                    order = hits[np.argsort(endpoint[hits], kind="stable")]
                    endpoints = endpoint[order]
                    boundaries = np.flatnonzero(
                        np.concatenate(([True], endpoints[1:] != endpoints[:-1]))
                    )
                    stops = np.concatenate((boundaries[1:], [len(endpoints)]))
                    others = other[order]
                    deltas = batch.delta[index[order]]
                    samplers_by_vertex = self._samplers_by_vertex
                    for start, stop in zip(boundaries.tolist(), stops.tolist()):
                        vertex = int(endpoints[start])
                        items = others[start:stop]
                        item_deltas = deltas[start:stop]
                        for sampler in samplers_by_vertex[vertex]:
                            sampler.update_many_arrays(items, item_deltas)

        pair_ids = self._pair_ids
        if pair_ids is not None:
            ids = batch.edge_ids(self._n)
            mask = sorted_member_mask(pair_ids, ids)
            if mask.any():
                slots = np.searchsorted(pair_ids, ids[mask])
                np.add.at(self._pair_accumulator, slots, batch.delta[mask])

        if self._edge_samplers:
            ids = batch.edge_ids(self._n)
            deltas = batch.delta
            for _, sampler in self._edge_samplers:
                sampler.update_many_arrays(ids, deltas)

    def _build_columnar_structures(self) -> None:
        """Lazily build the vectorized-path lookup structures.

        Transient engineering scratch of the columnar executor,
        outside the paper's space accounting (which meters the
        algorithmic state only), allocated exactly once by the first
        columnar batch — membership filters are scale-aware in ``n``,
        see :meth:`InsertionPassState._build_columnar_structures`.
        """
        n = self._n
        if self._degree_counts:
            self._degree_members = VertexMembership(self._degree_counts, n)
            self._degree_accumulator = np.zeros(
                len(self._degree_members), dtype=np.int64
            )
        if self._samplers_by_vertex:
            self._sampler_members = VertexMembership(self._samplers_by_vertex, n)
        if self._pair_counts:
            ids = sorted(_edge_id(a, b, n) for a, b in self._pair_counts)
            self._pair_ids = np.array(ids, dtype=np.int64)
            self._pair_accumulator = np.zeros(len(ids), dtype=np.int64)
        self._columnar_ready = True

    def _fold_columnar_state(self) -> None:
        """Fold columnar accumulators back into the scalar dicts (idempotent).

        Shared by :meth:`finish` and :meth:`state_dict`, so captures are
        backend-agnostic whichever ingestion route fed the pass.
        """
        if self._degree_accumulator is not None:
            accumulator = self._degree_accumulator
            degree_counts = self._degree_counts
            for slot, vertex in enumerate(self._degree_members.vertices.tolist()):
                count = int(accumulator[slot])
                if count:
                    degree_counts[vertex] += count
                    accumulator[slot] = 0
        if self._pair_accumulator is not None and self._pair_accumulator.any():
            n = self._n
            pair_counts = self._pair_counts
            pair_by_id = {_edge_id(a, b, n): (a, b) for a, b in pair_counts}
            for identifier, count in zip(
                self._pair_ids.tolist(), self._pair_accumulator.tolist()
            ):
                if count:
                    pair_counts[pair_by_id[identifier]] += count
            self._pair_accumulator[:] = 0

    def merge(self, other: "TurnstilePassState") -> None:
        """Fold another shard's pass state into this one, exactly.

        Every structure of a turnstile pass is linear in the updates —
        signed counters add, and the ℓ0-sampler banks merge sketch-wise
        (:meth:`~repro.sketch.l0.L0Sampler.merge`) — and **no randomness
        is drawn during ingestion**, so two replica pass states (built
        by identically seeded oracles for the same round's query batch,
        each fed a disjoint shard of the stream) merge into a state
        bit-identical to one pass over the whole stream, whatever the
        shard order.  Structural disagreement — different query batch,
        different seeds, different pass index — raises
        :class:`~repro.errors.MergeError`.
        """
        if not isinstance(other, TurnstilePassState):
            raise MergeError(
                f"cannot merge TurnstilePassState with {type(other).__name__}"
            )
        # The space-accounting component label is deliberately NOT
        # compared: a replica rehydrated through state_dict/load keeps
        # the label of the oracle it was rebuilt on (its own accounting
        # releases against it), while the pass *identity* is enforced
        # one level up by TurnstileStreamOracle.merge (pass_index and
        # rng fingerprint) and by the sketch-level coefficient checks.
        check_merge_config(
            "TurnstilePassState",
            size=(self._size, other._size),
            n=(self._n, other._n),
            edge_sampler_positions=(
                [position for position, _ in self._edge_samplers],
                [position for position, _ in other._edge_samplers],
            ),
            neighbor_sampler_positions=(
                [(position, vertex) for position, vertex, _ in self._neighbor_samplers],
                [(position, vertex) for position, vertex, _ in other._neighbor_samplers],
            ),
            degree_vertices=(
                sorted(self._degree_counts),
                sorted(other._degree_counts),
            ),
            adjacency_pairs=(
                sorted(self._pair_counts),
                sorted(other._pair_counts),
            ),
            edge_count_positions=(
                self._edge_count_positions,
                other._edge_count_positions,
            ),
        )
        self._fold_columnar_state()
        other._fold_columnar_state()
        self._edge_count += other._edge_count
        for vertex, count in other._degree_counts.items():
            self._degree_counts[vertex] += count
        for pair, count in other._pair_counts.items():
            self._pair_counts[pair] += count
        for (_, sampler), (_, other_sampler) in zip(
            self._edge_samplers, other._edge_samplers
        ):
            sampler.merge(other_sampler)
        for (_, _, sampler), (_, _, other_sampler) in zip(
            self._neighbor_samplers, other._neighbor_samplers
        ):
            sampler.merge(other_sampler)

    def state_dict(self) -> dict:
        """Mutable runtime state of the in-flight pass.

        Sampler entries are stored in construction order; the sketch
        internals (hash coefficients, fingerprint bases, aggregates)
        ride along in each :meth:`~repro.sketch.l0.L0Sampler.state_dict`.
        """
        self._fold_columnar_state()
        return {
            "size": self._size,
            "edge_count": self._edge_count,
            "degree_counts": dict(self._degree_counts),
            "pair_counts": sorted(
                (pair, count) for pair, count in self._pair_counts.items()
            ),
            "edge_samplers": [s.state_dict() for _, s in self._edge_samplers],
            "neighbor_samplers": [
                s.state_dict() for _, _, s in self._neighbor_samplers
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore runtime state into a structurally identical pass."""
        check_state_config("TurnstilePassState", state, size=self._size)
        captured_degrees = state_field("TurnstilePassState", state, "degree_counts")
        if set(captured_degrees) != set(self._degree_counts):
            raise CheckpointError(
                "TurnstilePassState state tracks different degree vertices than "
                "this pass; the pass was rebuilt from a different query batch"
            )
        edge_states = state_field("TurnstilePassState", state, "edge_samplers")
        neighbor_states = state_field("TurnstilePassState", state, "neighbor_samplers")
        if len(edge_states) != len(self._edge_samplers) or len(neighbor_states) != len(
            self._neighbor_samplers
        ):
            raise CheckpointError(
                f"TurnstilePassState state carries {len(edge_states)} edge / "
                f"{len(neighbor_states)} neighbor samplers; this pass has "
                f"{len(self._edge_samplers)} / {len(self._neighbor_samplers)}"
            )
        self._fold_columnar_state()
        self._edge_count = int(state_field("TurnstilePassState", state, "edge_count"))
        self._degree_counts = {
            vertex: int(count) for vertex, count in captured_degrees.items()
        }
        self._pair_counts = {
            tuple(pair): int(count)
            for pair, count in state_field("TurnstilePassState", state, "pair_counts")
        }
        for (_, sampler), captured in zip(self._edge_samplers, edge_states):
            sampler.load_state_dict(captured)
        for (_, _, sampler), captured in zip(self._neighbor_samplers, neighbor_states):
            sampler.load_state_dict(captured)

    def finish(self) -> List[Any]:
        """Collect the batch's answers and release the pass's space."""
        self._fold_columnar_state()
        n = self._n
        answers: List[Any] = [None] * self._size
        for position, sampler in self._edge_samplers:
            identifier = sampler.sample()
            answers[position] = (
                None if identifier is None else _edge_from_id(identifier, n)
            )
        for position, _, sampler in self._neighbor_samplers:
            answers[position] = sampler.sample()
        degree_counts = self._degree_counts
        for position, vertex in self._degree_positions:
            answers[position] = degree_counts[vertex]
        pair_counts = self._pair_counts
        for position, edge in self._adjacency_positions:
            answers[position] = pair_counts[edge] == 1
        edge_count = self._edge_count
        for position in self._edge_count_positions:
            answers[position] = edge_count

        self._oracle.space.release(self._component)
        return answers


class TurnstileStreamOracle:
    """Answers relaxed-model query batches over a turnstile stream.

    Like :class:`~repro.transform.insertion.InsertionStreamOracle`,
    *stream* may be a :class:`~repro.engine.parallel.StreamHandle`:
    construction and :meth:`begin_batch` touch only metadata (``n``,
    ``passes_used``), so worker processes rebuild turnstile oracles
    from picklable specs and feed the pass-states from broadcast
    batches.  :class:`TurnstilePassState` instances are transient and
    never cross a process boundary.
    """

    def __init__(
        self,
        stream: EdgeStream,
        rng: RandomSource = None,
        space_meter: Optional[SpaceMeter] = None,
        sampler_repetitions: int = 8,
    ) -> None:
        self._stream = stream
        self._rng = ensure_rng(rng)
        self._pass_index = 0
        self._sampler_repetitions = sampler_repetitions
        self.accounting = QueryAccounting()
        self.space = space_meter if space_meter is not None else SpaceMeter()

    @property
    def passes_used(self) -> int:
        return self._stream.passes_used

    def begin_batch(self, batch: QueryBatch) -> TurnstilePassState:
        """Open a pass for *batch* without touching the stream.

        Counterpart of :meth:`InsertionStreamOracle.begin_batch` for the
        fused engine; the caller owns the stream iteration.
        """
        self.accounting.record_batch(batch)
        self._pass_index += 1
        return TurnstilePassState(self, batch, self._pass_index)

    def answer_batch(self, batch: QueryBatch) -> List[Any]:
        """Answer one round's batch in a single pass over the stream.

        The pass runs over the stream's cached columnar batches
        (:func:`~repro.streams.stream.pass_batches`), which is
        bit-identical to the scalar decode it replaces.
        """
        state = self.begin_batch(batch)
        for chunk in pass_batches(self._stream):
            state.ingest_batch(chunk)
        return state.finish()

    def merge(self, other: "TurnstileStreamOracle") -> None:
        """Validate that *other* is a replica oracle in lockstep with self.

        Oracles hold no stream aggregates — their state is the rng
        position, the pass index and the accounting — so the merge is a
        pure compatibility check: replicas built from the same seed that
        opened the same passes agree on all three, and any disagreement
        means the pass states they produced were built from different
        frozen randomness and must not be added.  The rng positions are
        compared by :func:`~repro.utils.rng.seed_fingerprint` so the
        error stays readable.
        """
        if not isinstance(other, TurnstileStreamOracle):
            raise MergeError(
                f"cannot merge TurnstileStreamOracle with {type(other).__name__}"
            )
        check_merge_config(
            "TurnstileStreamOracle",
            sampler_repetitions=(self._sampler_repetitions, other._sampler_repetitions),
            pass_index=(self._pass_index, other._pass_index),
            rng_fingerprint=(
                seed_fingerprint(self._rng),
                seed_fingerprint(other._rng),
            ),
        )

    def state_dict(self) -> dict:
        """Oracle-level runtime state (rng position, accounting, space)."""
        return {
            "rng": rng_state(self._rng),
            "pass_index": self._pass_index,
            "sampler_repetitions": self._sampler_repetitions,
            "accounting": self.accounting.state_dict(),
            "space": self.space.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a capture; future passes derive identical randomness."""
        check_state_config(
            "TurnstileStreamOracle",
            state,
            sampler_repetitions=self._sampler_repetitions,
        )
        set_rng_state(self._rng, state_field("TurnstileStreamOracle", state, "rng"))
        self._pass_index = int(
            state_field("TurnstileStreamOracle", state, "pass_index")
        )
        self.accounting.load_state_dict(
            state_field("TurnstileStreamOracle", state, "accounting")
        )
        self.space.load_state_dict(
            state_field("TurnstileStreamOracle", state, "space")
        )
