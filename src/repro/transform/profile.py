"""Round-adaptivity profiling (Definition 8, made observable).

The paper's transformation prices a query algorithm by its *round
structure*: the number of rounds becomes the pass count (Theorems 9
and 11) and the per-round query volume becomes the per-pass space
(O(q log n) resp. O(q log⁴ n)).  This module measures both for any
round-adaptive generator, so users designing their own algorithms can
read off the streaming cost before ever touching a stream:

    >>> from repro.transform.profile import profile_rounds
    >>> from repro.fgp.rounds import subgraph_sampler_rounds
    >>> from repro.patterns.pattern import triangle
    >>> report = profile_rounds(
    ...     lambda: subgraph_sampler_rounds(triangle(), rng=1), oracle)
    >>> report.rounds            # -> 3: a 3-pass streaming algorithm
    >>> report.round_profiles    # per-round query-type histograms

The profiler drives the algorithm against a real oracle (answers are
needed to reach later rounds), recording the batch shape of each
round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.transform.driver import RoundAdaptive


@dataclass
class RoundProfile:
    """Query shape of one round: counts per query type."""

    index: int
    query_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        return sum(self.query_counts.values())

    def describe(self) -> str:
        inner = ", ".join(
            f"{name}×{count}" for name, count in sorted(self.query_counts.items())
        )
        return f"round {self.index}: {self.total_queries} queries ({inner})"


@dataclass
class AdaptivityReport:
    """Round structure of one algorithm run."""

    round_profiles: List[RoundProfile]
    output: object = None

    @property
    def rounds(self) -> int:
        """The algorithm's round-adaptivity == its streaming pass count."""
        return len(self.round_profiles)

    @property
    def total_queries(self) -> int:
        """q — drives the space bound O(q log n) of Theorem 9."""
        return sum(profile.total_queries for profile in self.round_profiles)

    def describe(self) -> str:
        lines = [
            f"{self.rounds}-round adaptive "
            f"(=> {self.rounds}-pass streaming via Theorem 9/11); "
            f"q = {self.total_queries} queries total"
        ]
        lines.extend(profile.describe() for profile in self.round_profiles)
        return "\n".join(lines)


def profile_rounds(
    algorithm_factory: Callable[[], RoundAdaptive], oracle
) -> AdaptivityReport:
    """Run one instance against *oracle*, recording each round's shape.

    *algorithm_factory* builds a fresh generator (profiling consumes
    it).  The oracle must expose ``answer_batch``; any of the library's
    oracles (direct, insertion, turnstile) works.
    """
    generator = algorithm_factory()
    profiles: List[RoundProfile] = []
    try:
        batch = next(generator)
        while True:
            counts: Dict[str, int] = {}
            for query in batch:
                name = type(query).__name__.replace("Query", "")
                counts[name] = counts.get(name, 0) + 1
            profiles.append(RoundProfile(index=len(profiles) + 1, query_counts=counts))
            answers = oracle.answer_batch(list(batch))
            batch = generator.send(answers)
    except StopIteration as stop:
        return AdaptivityReport(round_profiles=profiles, output=stop.value)
