"""``repro.worlds``: parameterized scenario sweeps over synthetic workloads.

A *world* is a grid of generator families x stream scenarios x
estimators x patterns x space budgets; sweeping it produces one tidy,
schema-validated JSON table with accuracy, ε-violation rate, peak
resident bytes, and updates/s per cell — the GraphWorld-style answer
to "does this estimator generalize beyond the fixed benchmark graphs?"

* :mod:`repro.worlds.grid` — the validated grid spec
  (:class:`WorldGrid`, :class:`FamilySpec`, :class:`ScenarioSpec`);
* :mod:`repro.worlds.sweep` — the out-of-core driver
  (:func:`run_sweep`), materializing every workload through
  :class:`~repro.streams.datasets.DiskEdgeStream`;
* :mod:`repro.worlds.schema` — the JSON contract
  (:func:`validate_sweep_document`).

Surfaced as ``repro worlds`` in the CLI and benchmarked by
``benchmarks/bench_worlds.py``.
"""

from repro.worlds.grid import (
    BACKENDS,
    ESTIMATORS,
    FAMILIES,
    SCENARIO_KINDS,
    FamilySpec,
    GridCell,
    ScenarioSpec,
    WorldGrid,
)
from repro.worlds.schema import (
    DOCUMENT_KEYS,
    ROW_KEYS,
    validate_sweep_document,
)
from repro.worlds.sweep import (
    SWEEP_BENCHMARK_NAME,
    materialize_workload,
    run_cell,
    run_sweep,
)

__all__ = [
    "BACKENDS",
    "DOCUMENT_KEYS",
    "ESTIMATORS",
    "FAMILIES",
    "FamilySpec",
    "GridCell",
    "ROW_KEYS",
    "SCENARIO_KINDS",
    "SWEEP_BENCHMARK_NAME",
    "ScenarioSpec",
    "WorldGrid",
    "materialize_workload",
    "run_cell",
    "run_sweep",
    "validate_sweep_document",
]
