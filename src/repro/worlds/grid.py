"""Parameterized world grids: *which* workloads a sweep runs.

A :class:`WorldGrid` is the declarative spec of a scenario sweep — the
cartesian product of

* **generator families** (:class:`FamilySpec`): Erdős–Rényi,
  preferential attachment, small-world, power-law-cluster, stochastic
  Kronecker, and the erased configuration model, each with validated
  knobs (density, degree exponent, clustering, ...);
* **stream scenarios** (:class:`ScenarioSpec`): plain insertion order,
  degree-adversarial order, deletion-heavy churn, and sliding-window
  turnstile feeds from :mod:`repro.streams.datasets`;
* **estimators** × **patterns** × **space budgets** (FGP trial
  budgets per copy).

Everything is validated *at parse time* — a negative deletion rate, a
degree exponent ``<= 1``, or an empty family list raises
:class:`~repro.errors.WorldsError` (a ``ValueError``) before any cell
runs, never minutes into a sweep.  :meth:`WorldGrid.cells` expands the
product into runnable :class:`GridCell`\\ s, dropping incompatible
combinations (deletion scenarios only run the turnstile estimator;
the 2-pass estimator only takes star-decomposable patterns).

The companion :mod:`repro.worlds.sweep` executes a grid out-of-core
through :class:`~repro.streams.datasets.DiskEdgeStream`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError, StreamError, WorldsError
from repro.graph.generators import MAX_KRONECKER_POWER, RMAT_INITIATOR
from repro.patterns.pattern import Pattern
from repro.streams.cache import resolve_cache_policy

#: Estimator identifiers, matching the fused entry points and the CLI.
ESTIMATORS: Tuple[str, ...] = ("insertion", "turnstile", "two-pass")

#: Scenario kinds, matching the ``streams.datasets`` generators.
SCENARIO_KINDS: Tuple[str, ...] = (
    "insertion",
    "adversarial",
    "deletion_heavy",
    "sliding_window",
)

#: Execution backends a sweep may drive cells through.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WorldsError(message)


def _as_int(value, name: str, minimum: int, maximum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WorldsError(f"{name} must be an integer, got {value!r}")
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
        raise WorldsError(f"{name} must be {bound}, got {value}")
    return value


def _as_float(value, name: str, low: float, high: float,
              low_open: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WorldsError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise WorldsError(f"{name} must be finite, got {value}")
    if value > high or value < low or (low_open and value == low):
        left = "(" if low_open else "["
        raise WorldsError(f"{name} must be in {left}{low}, {high}], got {value}")
    return value


# -- generator families ----------------------------------------------------

# family name -> (default params, validator).  The validator receives the
# merged params and must raise WorldsError on anything out of range.

def _validate_gnp(p: Dict) -> None:
    _as_int(p["n"], "gnp n", 2)
    _as_float(p["p"], "gnp edge probability", 0.0, 1.0)


def _validate_ba(p: Dict) -> None:
    n = _as_int(p["n"], "ba n", 2)
    attach = _as_int(p["attach"], "ba attach", 1)
    _require(n > attach, f"ba needs n > attach, got n={n}, attach={attach}")


def _validate_ws(p: Dict) -> None:
    n = _as_int(p["n"], "ws n", 3)
    k = _as_int(p["k"], "ws ring degree k", 2)
    _require(k % 2 == 0 and k < n,
             f"ws needs even k < n, got k={k}, n={n}")
    _as_float(p["rewire_p"], "ws rewire probability", 0.0, 1.0)


def _validate_plc(p: Dict) -> None:
    n = _as_int(p["n"], "plc n", 2)
    attach = _as_int(p["attach"], "plc attach", 1)
    _require(n > attach, f"plc needs n > attach, got n={n}, attach={attach}")
    _as_float(p["triangle_p"], "plc triangle probability", 0.0, 1.0)


def _validate_kronecker(p: Dict) -> None:
    power = _as_int(p["power"], "kronecker power", 1, MAX_KRONECKER_POWER)
    edges = _as_int(p["edges"], "kronecker edges", 1)
    n = 1 << power
    _require(edges <= n * (n - 1) // 2,
             f"kronecker cannot place {edges} edges on {n} vertices")
    initiator = p["initiator"]
    _require(
        isinstance(initiator, (list, tuple)) and len(initiator) == 4,
        f"kronecker initiator must be 4 weights, got {initiator!r}",
    )
    for weight in initiator:
        _as_float(weight, "kronecker initiator weight", 0.0, math.inf,
                  low_open=True)


def _validate_config(p: Dict) -> None:
    n = _as_int(p["n"], "config n", 2)
    exponent = p["exponent"]
    if isinstance(exponent, bool) or not isinstance(exponent, (int, float)):
        raise WorldsError(f"config degree exponent must be a number, got {exponent!r}")
    if not math.isfinite(float(exponent)) or float(exponent) <= 1.0:
        raise WorldsError(f"config degree exponent must be > 1, got {exponent}")
    min_degree = _as_int(p["min_degree"], "config min_degree", 1)
    max_degree = p["max_degree"]
    if max_degree is not None:
        _as_int(max_degree, "config max_degree", min_degree, n - 1)


FAMILIES: Dict[str, Tuple[Dict, object]] = {
    "gnp": ({"n": 64, "p": 0.15}, _validate_gnp),
    "ba": ({"n": 96, "attach": 4}, _validate_ba),
    "ws": ({"n": 96, "k": 6, "rewire_p": 0.1}, _validate_ws),
    "plc": ({"n": 96, "attach": 4, "triangle_p": 0.6}, _validate_plc),
    "kronecker": (
        {"power": 7, "edges": 500, "initiator": list(RMAT_INITIATOR)},
        _validate_kronecker,
    ),
    "config": (
        {"n": 128, "exponent": 2.5, "min_degree": 2, "max_degree": None},
        _validate_config,
    ),
}


def _label(prefix: str, params: Dict) -> str:
    parts = []
    for key in sorted(params):
        value = params[key]
        if value is None:
            continue
        if isinstance(value, (list, tuple)):
            value = "/".join(f"{float(w):g}" for w in value)
        elif isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return f"{prefix}({','.join(parts)})" if parts else prefix


@dataclass(frozen=True)
class FamilySpec:
    """One validated generator-family configuration."""

    family: str
    params: Tuple[Tuple[str, object], ...]

    @classmethod
    def create(cls, family: str, **params) -> "FamilySpec":
        _require(isinstance(family, str) and family in FAMILIES,
                 f"unknown generator family {family!r}; "
                 f"known: {', '.join(sorted(FAMILIES))}")
        defaults, validator = FAMILIES[family]
        unknown = set(params) - set(defaults)
        _require(not unknown,
                 f"unknown {family} parameter(s) {sorted(unknown)}; "
                 f"known: {sorted(defaults)}")
        merged = dict(defaults)
        merged.update(params)
        validator(merged)
        frozen = tuple(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in sorted(merged.items())
        )
        return cls(family=family, params=frozen)

    @classmethod
    def from_spec(cls, spec: Union[str, Dict]) -> "FamilySpec":
        if isinstance(spec, str):
            return cls.create(spec)
        _require(isinstance(spec, dict) and isinstance(spec.get("family"), str),
                 f"family spec must be a name or a dict with 'family', got {spec!r}")
        params = {key: value for key, value in spec.items() if key != "family"}
        return cls.create(spec["family"], **params)

    def param_dict(self) -> Dict:
        return {key: list(value) if isinstance(value, tuple) else value
                for key, value in self.params}

    @property
    def label(self) -> str:
        return _label(self.family, self.param_dict())

    def to_dict(self) -> Dict:
        return {"family": self.family, **self.param_dict()}


# -- scenarios -------------------------------------------------------------

_SCENARIO_DEFAULTS: Dict[str, Dict] = {
    "insertion": {},
    "adversarial": {"hide_high_degree_last": True},
    "deletion_heavy": {"deletion_rate": 0.5, "churn_rounds": 1},
    "sliding_window": {"window_fraction": 0.5},
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated stream-scenario configuration."""

    kind: str
    params: Tuple[Tuple[str, object], ...]

    @classmethod
    def create(cls, kind: str, **params) -> "ScenarioSpec":
        _require(isinstance(kind, str) and kind in SCENARIO_KINDS,
                 f"unknown scenario {kind!r}; known: {', '.join(SCENARIO_KINDS)}")
        defaults = _SCENARIO_DEFAULTS[kind]
        unknown = set(params) - set(defaults)
        _require(not unknown,
                 f"unknown {kind} scenario parameter(s) {sorted(unknown)}; "
                 f"known: {sorted(defaults)}")
        merged = dict(defaults)
        merged.update(params)
        if kind == "deletion_heavy":
            _as_float(merged["deletion_rate"], "deletion rate", 0.0, 1.0)
            _as_int(merged["churn_rounds"], "churn_rounds", 0)
        elif kind == "sliding_window":
            _as_float(merged["window_fraction"], "window fraction", 0.0, 1.0,
                      low_open=True)
        elif kind == "adversarial":
            _require(isinstance(merged["hide_high_degree_last"], bool),
                     "hide_high_degree_last must be a boolean")
        return cls(kind=kind, params=tuple(sorted(merged.items())))

    @classmethod
    def from_spec(cls, spec: Union[str, Dict]) -> "ScenarioSpec":
        if isinstance(spec, str):
            return cls.create(spec)
        _require(isinstance(spec, dict) and isinstance(spec.get("kind"), str),
                 f"scenario spec must be a kind or a dict with 'kind', got {spec!r}")
        params = {key: value for key, value in spec.items() if key != "kind"}
        return cls.create(spec["kind"], **params)

    def param_dict(self) -> Dict:
        return dict(self.params)

    @property
    def needs_deletions(self) -> bool:
        return self.kind in ("deletion_heavy", "sliding_window")

    @property
    def label(self) -> str:
        return _label(self.kind, self.param_dict())

    def to_dict(self) -> Dict:
        return {"kind": self.kind, **self.param_dict()}


# -- the grid --------------------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One runnable point of the sweep product."""

    family: FamilySpec
    scenario: ScenarioSpec
    estimator: str
    pattern: str
    budget: int

    @property
    def key(self) -> str:
        """Stable identifier: the resume/filter handle of this cell."""
        return (f"{self.family.label}|{self.scenario.label}|"
                f"{self.estimator}|{self.pattern}|t{self.budget}")


class WorldGrid:
    """A fully validated sweep specification (see module docstring)."""

    def __init__(
        self,
        families: Sequence[Union[str, Dict, FamilySpec]],
        scenarios: Sequence[Union[str, Dict, ScenarioSpec]] = ("insertion",),
        estimators: Sequence[str] = ESTIMATORS,
        patterns: Sequence[str] = ("triangle",),
        budgets: Sequence[int] = (200, 800),
        copies: int = 3,
        epsilon: float = 0.5,
        seed: int = 2022,
        batch_size: int = 2048,
        backend: str = "serial",
        cache: str = "lru:4M",
    ) -> None:
        families = list(families or [])
        scenarios = list(scenarios or [])
        estimators = list(estimators or [])
        patterns = list(patterns or [])
        budgets = list(budgets or [])
        _require(families, "empty grid: no generator families given")
        _require(scenarios, "empty grid: no scenarios given")
        _require(estimators, "empty grid: no estimators given")
        _require(patterns, "empty grid: no patterns given")
        _require(budgets, "empty grid: no space budgets given")

        self.families = [
            spec if isinstance(spec, FamilySpec) else FamilySpec.from_spec(spec)
            for spec in families
        ]
        self.scenarios = [
            spec if isinstance(spec, ScenarioSpec) else ScenarioSpec.from_spec(spec)
            for spec in scenarios
        ]
        for estimator in estimators:
            _require(estimator in ESTIMATORS,
                     f"unknown estimator {estimator!r}; known: "
                     f"{', '.join(ESTIMATORS)}")
        self.estimators = list(estimators)
        self.patterns = [self._check_pattern(name) for name in patterns]
        self.budgets = [_as_int(budget, "space budget", 1) for budget in budgets]
        self.copies = _as_int(copies, "copies", 1)
        self.epsilon = _as_float(epsilon, "epsilon", 0.0, 1.0, low_open=True)
        self.seed = _as_int(seed, "seed", -(1 << 62), 1 << 62)
        self.batch_size = _as_int(batch_size, "batch_size", 1)
        _require(backend in BACKENDS,
                 f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")
        self.backend = backend
        try:
            resolve_cache_policy(cache)
        except StreamError as error:
            raise WorldsError(f"invalid cache policy {cache!r}: {error}") from error
        self.cache = cache
        # Fail on an all-incompatible product now, not after materializing.
        self._cells = self._build_cells()

    @staticmethod
    def _check_pattern(name: str) -> str:
        from repro.cli import parse_pattern

        _require(isinstance(name, str), f"pattern name must be a string, got {name!r}")
        try:
            parse_pattern(name)
        except ReproError as error:
            raise WorldsError(str(error)) from error
        return name

    def resolve_pattern(self, name: str) -> Pattern:
        from repro.cli import parse_pattern

        return parse_pattern(name)

    def _build_cells(self) -> List[GridCell]:
        from repro.streaming.two_pass import is_star_decomposable

        cells: List[GridCell] = []
        for family in self.families:
            for scenario in self.scenarios:
                for estimator in self.estimators:
                    # Deletions demand the turnstile counter; the other
                    # estimators read insertion-only streams.
                    if scenario.needs_deletions and estimator != "turnstile":
                        continue
                    for pattern in self.patterns:
                        if estimator == "two-pass" and not is_star_decomposable(
                            self.resolve_pattern(pattern)
                        ):
                            continue
                        for budget in self.budgets:
                            cells.append(GridCell(
                                family=family,
                                scenario=scenario,
                                estimator=estimator,
                                pattern=pattern,
                                budget=budget,
                            ))
        _require(cells,
                 "grid has no runnable cells: every estimator x scenario x "
                 "pattern combination was incompatible")
        return cells

    def cells(self) -> List[GridCell]:
        """The runnable cells, in stable sweep order."""
        return list(self._cells)

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "families": [family.to_dict() for family in self.families],
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "estimators": list(self.estimators),
            "patterns": list(self.patterns),
            "budgets": list(self.budgets),
            "copies": self.copies,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "backend": self.backend,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "WorldGrid":
        _require(isinstance(data, dict), f"grid spec must be an object, got {data!r}")
        known = {
            "families", "scenarios", "estimators", "patterns", "budgets",
            "copies", "epsilon", "seed", "batch_size", "backend", "cache",
        }
        unknown = set(data) - known
        _require(not unknown,
                 f"unknown grid key(s) {sorted(unknown)}; known: {sorted(known)}")
        _require("families" in data, "grid spec needs a 'families' list")
        kwargs = {key: data[key] for key in known if key in data}
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, "os.PathLike[str]"]) -> "WorldGrid":
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as error:
            raise WorldsError(f"{path}: not valid JSON ({error})") from error
        return cls.from_dict(data)

    def __repr__(self) -> str:
        return (f"WorldGrid(families={len(self.families)}, "
                f"scenarios={len(self.scenarios)}, "
                f"estimators={len(self.estimators)}, "
                f"patterns={len(self.patterns)}, budgets={len(self.budgets)}, "
                f"cells={len(self._cells)})")
