"""Out-of-core execution of a :class:`~repro.worlds.grid.WorldGrid`.

For every runnable cell the driver

1. **materializes the workload to disk**: the family's edges are
   generated (streaming families chunk-by-chunk, never holding the
   edge list) and the scenario's update transform is applied, landing
   in a ``.reb`` file via
   :class:`~repro.streams.datasets.BinaryUpdateWriter`; the file is
   shared by every cell over the same (family, scenario) pair;
2. **streams it back through the fused engine**: a
   :class:`~repro.streams.datasets.DiskEdgeStream` with the grid's
   bounded cache policy feeds the requested estimator
   (median-of-``copies``, ``trials=space_budget`` per copy) on the
   grid's backend, so cells run out-of-core with
   ``peak_resident_bytes`` metered by :mod:`repro.streams.cache`;
3. **scores it against exact truth** (computed once per workload x
   pattern) and emits one schema-validated row: accuracy, ε-violation,
   peak resident bytes, updates/s.

The JSON document (see :mod:`repro.worlds.schema`) is rewritten
atomically after *every* cell, so an interrupted sweep loses at most
the in-flight cell and ``resume=True`` (CLI ``--resume``) skips the
cells already on disk.  All randomness is derived per cell key from
the grid seed, so results are independent of cell order, filtering,
and resume points.

Truth-zero cells score **absolute** error in ``rel_err`` (a relative
error against zero is undefined); at sweep sizes the bundled families
keep pattern counts positive, so this is a corner-case guard, not the
normal path.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorldsError
from repro.exact.subgraphs import count_subgraphs
from repro.graph import generators as gen
from repro.utils.rng import derive_seed
from repro.worlds.grid import FamilySpec, GridCell, ScenarioSpec, WorldGrid
from repro.worlds.schema import validate_sweep_document

#: The document's ``benchmark`` field; keeps sweep artifacts
#: recognizable next to the other benchmark JSONs.
SWEEP_BENCHMARK_NAME = "worlds_sweep"

ProgressFn = Callable[[str], None]


def _grid_seed(grid: WorldGrid, label: str) -> int:
    """A stable 64-bit seed for *label*, independent of call order."""
    return derive_seed(random.Random(grid.seed), label)


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


# -- workload materialization ---------------------------------------------


def _family_chunks(family: FamilySpec, seed: int):
    """``(n, iterator of (u, v) int64 chunks)`` in arrival order.

    The streaming families yield their generator chunks directly; the
    in-memory families build the graph, then emit its edges in a
    seed-shuffled arrival order (one chunk).
    """
    params = family.param_dict()
    if family.family == "kronecker":
        chunks = gen.stochastic_kronecker_chunks(
            params["power"], params["edges"],
            initiator=tuple(params["initiator"]), seed=seed,
        )
        return 1 << params["power"], chunks
    if family.family == "config":
        degrees = gen.powerlaw_degree_sequence(
            params["n"], params["exponent"],
            min_degree=params["min_degree"], max_degree=params["max_degree"],
            seed=seed,
        )
        return params["n"], gen.configuration_model_chunks(degrees, seed=seed)

    if family.family == "gnp":
        graph = gen.gnp(params["n"], params["p"], rng=seed)
    elif family.family == "ba":
        graph = gen.barabasi_albert(params["n"], params["attach"], rng=seed)
    elif family.family == "ws":
        graph = gen.watts_strogatz(
            params["n"], params["k"], params["rewire_p"], rng=seed
        )
    elif family.family == "plc":
        graph = gen.power_law_cluster(
            params["n"], params["attach"], params["triangle_p"], rng=seed
        )
    else:  # pragma: no cover - FamilySpec.create already rejected it
        raise WorldsError(f"unknown generator family {family.family!r}")

    edges = list(graph.edges())
    random.Random(seed ^ 0x5EED).shuffle(edges)

    def one_chunk():
        if edges:
            array = np.array(edges, dtype=np.int64)
            yield array[:, 0], array[:, 1]

    return graph.n, one_chunk()


def materialize_workload(
    family: FamilySpec,
    scenario: ScenarioSpec,
    seed: int,
    path: Union[str, "os.PathLike[str]"],
    scenario_seed: Optional[int] = None,
) -> str:
    """Write the (family, scenario) update stream to *path* (``.reb``).

    *seed* drives the family's edges, *scenario_seed* (default: derived
    from *seed*) the scenario transform — so every scenario over the
    same family churns/reorders the *identical* base graph and their
    rows compare like for like.  The insertion scenario spills
    generator chunks straight to disk; the reordering/turnstile
    scenarios need the whole edge list in memory once, at generation
    time only — the sweep itself then streams the file out-of-core.
    """
    from repro.streams.datasets import (
        BinaryUpdateWriter,
        degree_adversarial_order,
        deletion_heavy_updates,
        sliding_window_updates,
    )

    if scenario_seed is None:
        scenario_seed = derive_seed(random.Random(seed), f"scenario:{scenario.label}")
    n, chunks = _family_chunks(family, seed)
    if scenario.kind == "insertion":
        with BinaryUpdateWriter(path, n, allow_deletions=False) as writer:
            for u, v in chunks:
                writer.append(u, v)
        return os.fspath(path)

    collected = [(u, v) for u, v in chunks]
    if collected:
        u = np.concatenate([chunk[0] for chunk in collected])
        v = np.concatenate([chunk[1] for chunk in collected])
    else:
        u = np.empty(0, dtype=np.int64)
        v = np.empty(0, dtype=np.int64)
    params = scenario.param_dict()
    if scenario.kind == "adversarial":
        u, v = degree_adversarial_order(
            u, v, n=n, hide_high_degree_last=params["hide_high_degree_last"]
        )
        delta = None
        deletions = False
    elif scenario.kind == "deletion_heavy":
        u, v, delta = deletion_heavy_updates(
            u, v,
            churn_rounds=params["churn_rounds"],
            churn_fraction=params["deletion_rate"],
            seed=scenario_seed,
        )
        deletions = True
    elif scenario.kind == "sliding_window":
        window = max(1, int(len(u) * params["window_fraction"]))
        u, v, delta = sliding_window_updates(u, v, window)
        deletions = True
    else:  # pragma: no cover - ScenarioSpec.create already rejected it
        raise WorldsError(f"unknown scenario {scenario.kind!r}")

    with BinaryUpdateWriter(path, n, allow_deletions=deletions) as writer:
        for start in range(0, len(u), 1 << 14):
            stop = start + (1 << 14)
            writer.append(
                u[start:stop], v[start:stop],
                None if delta is None else delta[start:stop],
            )
    return os.fspath(path)


# -- the sweep -------------------------------------------------------------


def _filter_cells(
    cells: List[GridCell], selectors: Optional[Sequence[str]]
) -> List[GridCell]:
    if not selectors:
        return cells
    kept = [
        cell for cell in cells
        if any(selector in cell.key for selector in selectors)
    ]
    if not kept:
        raise WorldsError(
            f"--cells selector(s) {list(selectors)} match none of the "
            f"{len(cells)} grid cells"
        )
    return kept


def _load_resume_rows(
    out_path: str, grid_params: Dict, progress: Optional[ProgressFn]
) -> Dict[str, Dict]:
    if not os.path.exists(out_path):
        return {}
    with open(out_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_sweep_document(document)
    if document["params"] != grid_params:
        raise WorldsError(
            f"{out_path}: cannot resume — the existing sweep was run with a "
            "different grid spec; move it aside or drop --resume"
        )
    rows = {row["cell"]: row for row in document["rows"]}
    if progress and rows:
        progress(f"resuming: {len(rows)} cell(s) already in {out_path}")
    return rows


def _write_document(out_path: Optional[str], document: Dict) -> None:
    if out_path is None:
        return
    tmp_path = out_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, out_path)


def run_cell(
    cell: GridCell,
    grid: WorldGrid,
    stream_path: str,
    truth: int,
) -> Dict:
    """Run one cell against its materialized ``.reb`` stream."""
    from repro.engine import (
        count_subgraphs_insertion_only_fused,
        count_subgraphs_turnstile_fused,
        count_subgraphs_two_pass_fused,
    )
    from repro.streams.datasets import DiskEdgeStream

    counter = {
        "insertion": count_subgraphs_insertion_only_fused,
        "turnstile": count_subgraphs_turnstile_fused,
        "two-pass": count_subgraphs_two_pass_fused,
    }[cell.estimator]
    stream = DiskEdgeStream(stream_path, cache=grid.cache)
    pattern = grid.resolve_pattern(cell.pattern)
    started = time.perf_counter()
    result = counter(
        stream,
        pattern,
        copies=grid.copies,
        trials=cell.budget,
        rng=_grid_seed(grid, f"cell:{cell.key}"),
        mode="shared",
        backend=grid.backend,
        batch_size=grid.batch_size,
    )
    elapsed = max(time.perf_counter() - started, 1e-9)

    if truth > 0:
        rel_err = result.error_vs(truth)
        copy_errors = [abs(est - truth) / truth for est in result.estimates]
    else:
        rel_err = abs(result.estimate - truth)
        copy_errors = [abs(est - truth) for est in result.estimates]
    violations = sum(1 for err in copy_errors if err > grid.epsilon)
    elements = int(result.details.get("elements", stream.length * result.passes))
    return {
        "cell": cell.key,
        "family": cell.family.label,
        "scenario": cell.scenario.label,
        "estimator": cell.estimator,
        "pattern": cell.pattern,
        "space_budget": cell.budget,
        "copies": grid.copies,
        "n": stream.n,
        "length": stream.length,
        "m": stream.net_edge_count,
        "truth": int(truth),
        "estimate": float(result.estimate),
        "rel_err": float(rel_err),
        "epsilon": grid.epsilon,
        "eps_violation": bool(rel_err > grid.epsilon),
        "copy_violation_rate": violations / len(copy_errors),
        "peak_resident_bytes": int(stream.cache_policy.peak_resident_bytes),
        "updates_per_s": elements / elapsed,
        "seconds": elapsed,
        "passes": int(result.passes),
    }


def run_sweep(
    grid: WorldGrid,
    out_path: Optional[Union[str, "os.PathLike[str]"]] = None,
    workdir: Optional[Union[str, "os.PathLike[str]"]] = None,
    cells: Optional[Sequence[str]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> Dict:
    """Execute *grid* and return the validated sweep document.

    Parameters
    ----------
    out_path:
        JSON destination, rewritten atomically after every cell (so a
        partial sweep is always a valid document).  ``None`` keeps the
        document in memory only.
    workdir:
        Directory for the materialized ``.reb`` workloads (default: a
        temporary directory, removed afterwards).
    cells:
        Substring selectors over cell keys; a cell runs if any
        selector matches (CLI ``--cells``).
    resume:
        Reuse the rows already in *out_path* (must have been produced
        by the same grid spec) and run only the missing cells.
    progress:
        Optional callback receiving one human-readable line per event.
    """
    out_path = None if out_path is None else os.fspath(out_path)
    grid_params = json.loads(json.dumps(grid.to_dict()))
    selected = _filter_cells(grid.cells(), cells)
    done: Dict[str, Dict] = {}
    if resume:
        if out_path is None:
            raise WorldsError("resume=True needs an output path to resume from")
        done = _load_resume_rows(out_path, grid_params, progress)

    own_workdir = workdir is None
    if own_workdir:
        workdir_handle = tempfile.TemporaryDirectory(prefix="repro-worlds-")
        workdir = workdir_handle.name
    workdir = os.fspath(workdir)

    document: Dict = {
        "benchmark": SWEEP_BENCHMARK_NAME,
        "git_sha": _git_sha(),
        "created_unix": int(time.time()),
        "params": grid_params,
        "rows": [],
    }
    try:
        workload_paths: Dict[Tuple[str, str], str] = {}
        truths: Dict[Tuple[str, str, str], int] = {}
        for index, cell in enumerate(selected):
            if cell.key in done:
                document["rows"].append(done[cell.key])
                if progress:
                    progress(f"[{index + 1}/{len(selected)}] reused  {cell.key}")
                continue
            workload_key = (cell.family.label, cell.scenario.label)
            if workload_key not in workload_paths:
                path = os.path.join(
                    workdir, f"workload-{len(workload_paths):03d}.reb"
                )
                family_seed = _grid_seed(grid, f"family:{cell.family.label}")
                scenario_seed = _grid_seed(
                    grid, f"scenario:{cell.family.label}|{cell.scenario.label}"
                )
                materialize_workload(
                    cell.family, cell.scenario, family_seed, path,
                    scenario_seed=scenario_seed,
                )
                workload_paths[workload_key] = path
            stream_path = workload_paths[workload_key]

            truth_key = workload_key + (cell.pattern,)
            if truth_key not in truths:
                from repro.streams.datasets import DiskEdgeStream

                truths[truth_key] = count_subgraphs(
                    DiskEdgeStream(stream_path, cache="none").final_graph(),
                    grid.resolve_pattern(cell.pattern),
                )
            row = run_cell(cell, grid, stream_path, truths[truth_key])
            document["rows"].append(row)
            _write_document(out_path, document)
            if progress:
                progress(
                    f"[{index + 1}/{len(selected)}] ran     {cell.key}: "
                    f"estimate={row['estimate']:.1f} truth={row['truth']} "
                    f"rel_err={row['rel_err']:.3f} "
                    f"peak={row['peak_resident_bytes']}B "
                    f"{row['updates_per_s']:.0f} upd/s"
                )
    finally:
        if own_workdir:
            try:
                workdir_handle.cleanup()
            except OSError:  # pragma: no cover - best-effort on odd filesystems
                pass

    validate_sweep_document(document)
    _write_document(out_path, document)
    return document
