"""The sweep JSON contract: one tidy, validated table per sweep.

A sweep document is a superset of the benchmark JSON schema used by
``benchmarks/results/*.json`` (``benchmark`` / ``git_sha`` /
``created_unix`` / ``params`` / ``rows``), with every row carrying the
fixed per-cell column set below — so the same tooling that reads
benchmark artifacts reads world sweeps, and a sweep can be dropped
into ``benchmarks/results/`` unchanged.

:func:`validate_sweep_document` raises
:class:`~repro.errors.WorldsError` (a ``ValueError``) on any drift:
missing keys, wrong types, negative byte counts, a ``rel_err`` that
disagrees with its ``eps_violation`` flag, and so on.  The CI
``worlds-smoke`` job runs it next to the shared benchmark validator.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.errors import WorldsError

#: Top-level keys, identical to the benchmark JSON schema.
DOCUMENT_KEYS: Tuple[str, ...] = (
    "benchmark", "git_sha", "created_unix", "params", "rows",
)

#: Per-cell columns: identity, workload shape, accuracy, and cost.
ROW_KEYS: Tuple[str, ...] = (
    "cell",
    "family",
    "scenario",
    "estimator",
    "pattern",
    "space_budget",
    "copies",
    "n",
    "length",
    "m",
    "truth",
    "estimate",
    "rel_err",
    "epsilon",
    "eps_violation",
    "copy_violation_rate",
    "peak_resident_bytes",
    "updates_per_s",
    "seconds",
    "passes",
)

_STRING_KEYS = ("cell", "family", "scenario", "estimator", "pattern")
_COUNT_KEYS = ("space_budget", "copies", "n", "length", "passes")
_NONNEG_INT_KEYS = ("m", "truth", "peak_resident_bytes")
_NONNEG_FLOAT_KEYS = ("estimate", "rel_err", "copy_violation_rate", "seconds")


def _fail(message: str) -> None:
    raise WorldsError(f"sweep document invalid: {message}")


def validate_sweep_document(document: Dict) -> Dict:
    """Validate *document* against the sweep schema; returns it unchanged."""
    if not isinstance(document, dict):
        _fail(f"expected an object, got {type(document).__name__}")
    missing = [key for key in DOCUMENT_KEYS if key not in document]
    if missing:
        _fail(f"missing top-level key(s) {missing}")
    if not isinstance(document["benchmark"], str) or not document["benchmark"]:
        _fail("'benchmark' must be a non-empty string")
    if not isinstance(document["git_sha"], str):
        _fail("'git_sha' must be a string")
    if isinstance(document["created_unix"], bool) or not isinstance(
        document["created_unix"], int
    ):
        _fail("'created_unix' must be an integer timestamp")
    if not isinstance(document["params"], dict):
        _fail("'params' must be an object (the grid spec)")
    rows = document["rows"]
    if not isinstance(rows, list):
        _fail("'rows' must be a list")
    for index, row in enumerate(rows):
        _validate_row(index, row)
    return document


def _validate_row(index: int, row: Dict) -> None:
    where = f"rows[{index}]"
    if not isinstance(row, dict):
        _fail(f"{where} is not an object")
    missing = [key for key in ROW_KEYS if key not in row]
    if missing:
        _fail(f"{where} missing column(s) {missing}")
    for key in _STRING_KEYS:
        if not isinstance(row[key], str) or not row[key]:
            _fail(f"{where}.{key} must be a non-empty string")
    for key in _COUNT_KEYS:
        value = row[key]
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            _fail(f"{where}.{key} must be a positive integer, got {value!r}")
    for key in _NONNEG_INT_KEYS:
        value = row[key]
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            _fail(f"{where}.{key} must be a non-negative integer, got {value!r}")
    for key in _NONNEG_FLOAT_KEYS:
        value = row[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"{where}.{key} must be a number, got {value!r}")
        if not math.isfinite(float(value)) or float(value) < 0.0:
            _fail(f"{where}.{key} must be finite and >= 0, got {value}")
    epsilon = row["epsilon"]
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        _fail(f"{where}.epsilon must be a number, got {epsilon!r}")
    if not 0.0 < float(epsilon) <= 1.0:
        _fail(f"{where}.epsilon must be in (0, 1], got {epsilon}")
    if not isinstance(row["eps_violation"], bool):
        _fail(f"{where}.eps_violation must be a boolean")
    if row["eps_violation"] != (float(row["rel_err"]) > float(epsilon)):
        _fail(f"{where}.eps_violation disagrees with rel_err vs epsilon")
    if not 0.0 <= float(row["copy_violation_rate"]) <= 1.0:
        _fail(f"{where}.copy_violation_rate must be in [0, 1]")
    updates = row["updates_per_s"]
    if isinstance(updates, bool) or not isinstance(updates, (int, float)):
        _fail(f"{where}.updates_per_s must be a number, got {updates!r}")
    if not math.isfinite(float(updates)) or float(updates) <= 0.0:
        _fail(f"{where}.updates_per_s must be finite and > 0, got {updates}")
