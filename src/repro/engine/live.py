"""The checkpointable live estimation engine.

Everything before this module is *pass-based*: a stream exists in
full, an engine iterates it, results come out.  Production traffic is
the opposite shape — an unbounded feed of updates that must be
ingested as it arrives, queried mid-stream, and survive process
restarts.  :class:`LiveEngine` is that layer:

* :meth:`LiveEngine.feed` applies a batch of updates incrementally to
  every registered estimator's open pass state (and journals it);
* :meth:`LiveEngine.estimate` answers **at any point** without
  consuming the live state: each estimator is *forked* — rebuilt from
  its spec, restored from its ``state_dict`` — and the fork finishes
  its remaining passes over the journaled prefix while the live
  estimators keep streaming;
* :meth:`LiveEngine.snapshot` serializes the full engine state
  (journal columns, estimator specs, sketch internals, reservoir
  banks, pass-state accumulators, rng positions) to a versioned
  on-disk checkpoint, and :meth:`LiveEngine.restore` rebuilds an
  engine that is **bit-identical** to one that never stopped —
  asserted across every estimator family in
  ``tests/test_live_checkpoint.py``.

Multi-pass estimators on an unbounded feed
------------------------------------------
A 3-pass counter cannot finish on data it has not seen twice more, so
the live engine keeps pass 0 open forever: the feed *is* pass 0.  A
query at time t forks the pass-0 state (cheap: the serialized sketch
state, not the data), closes the fork's pass, and replays the
journaled prefix for the remaining passes — exactly the passes the
one-shot engine would have run on the same prefix, so a fed-live
estimate equals the one-shot estimate on the prefix bit for bit (the
differential fuzz suite pins this).  Single-pass estimators (TRIEST,
Doulion, exact) need no replay beyond closing the fork's pass.

The journal is the price of multi-pass semantics on a live feed: the
engine retains the fed updates as compact numpy columns (O(m) ints,
the same asymptotics as the exact baseline).  Checkpoints embed the
journal, so a restored engine can still answer multi-pass queries.

Execution backends
------------------
``backend="serial"`` runs the estimators in-process.
``backend="thread"`` / ``backend="process"`` shard the registered
specs across a persistent worker pool (the same worker protocol as
:mod:`repro.engine.parallel`, extended with ``state_dict`` /
``load_state`` commands): ``feed`` publishes each batch — by
reference to threads, through the shared-memory batch ring to
processes — ``snapshot`` gathers every shard's states driver-side,
and a checkpoint taken under one backend restores under any other —
the state dicts are backend-agnostic.  The checkpoint commands ride
the same command queues as the batch references, so a snapshot always
captures a consistent point of the feed whatever the transport.

Registration goes through picklable
:class:`~repro.engine.parallel.EstimatorSpec` recipes only (a snapshot
must be able to *rebuild* every estimator before loading its state).
Stream-dependent constructor parameters must be pinned — pass an
explicit ``trials=`` budget to the FGP factories; a spec whose
structure depends on the evolving stream metadata fails the restore
replay with a :class:`~repro.errors.CheckpointError`.

Checkpoint format
-----------------
``REPROLIVE1\\n`` magic, a little-endian u64 format version
(currently 2), a u64 section count, then per section: a 1-byte name
length, the ASCII section name, a u64 payload length, a u32 CRC32 of
the payload, and the pickled payload itself.  Full checkpoints carry
three sections — ``engine`` (config), ``journal`` (the fed columns),
``estimators`` (specs + state dicts).  The per-section CRCs turn any
torn write, truncation, or bit-flip into a typed
:class:`~repro.errors.CheckpointError` naming the damaged section
(swept exhaustively in ``tests/test_checkpoint_corruption.py``);
:func:`checkpoint_manifest` exposes the byte layout those drills
target.  Version-1 checkpoints (magic + one bare pickled document)
are still read.  Pickle is what lets estimator specs (factory
references, pattern objects) and rng states round-trip exactly; load
checkpoints only from sources you trust, as with any pickle.  Writes
are atomic and durable (same-directory tmp file + fsync + rename +
directory fsync) and retried on transient I/O errors, so a crash or
injected disk fault mid-snapshot never corrupts the previous
checkpoint.

Delta checkpoints
-----------------
``snapshot(path, mode="delta")`` skips the full state capture and
writes only the journal tail since the last snapshot to
``<path>.delta.NNNNN`` — O(updates-since-base) bytes instead of
O(journal + sketches).  Each delta names its base by CRC and its
exact journal interval; :meth:`LiveEngine.restore` replays the
longest valid consecutive chain through :meth:`LiveEngine.feed`
(element order is all that matters for bit-equality, so the replayed
engine is bit-identical to one that never stopped) and **falls back
past a torn or mismatched tip** with a logged warning instead of
failing — the next delta overwrites the bad file.  After
``max_deltas`` tails the engine rotates: a fresh full base replaces
the chain.

Fault model
-----------
Worker loss (SIGKILL, OOM, a wedge past the reply timeout) is part of
the engine's contract, not an abort: with the default
``on_worker_loss="degrade"`` the pool quarantines the lost shard,
respawns a replacement up to ``respawn_budget`` times (replaying the
journaled prefix restores it bit-exactly), and on exhaustion the
engine keeps serving the median of the surviving copies with
:attr:`LiveEngine.degraded` raised.  Drills are driven by a seeded
:class:`~repro.faults.FaultPlan` passed as ``fault_plan=``.
"""

from __future__ import annotations

import io
import logging
import os
import pickle
import statistics
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.core import DEFAULT_BATCH_SIZE, EngineBackend
from repro.engine.parallel import (
    DEFAULT_REPLY_TIMEOUT,
    EstimatorSpec,
    StreamHandle,
    make_worker_pool,
    resolve_workers,
    shard_indices,
)
from repro.errors import CheckpointError, EngineError, EstimationError, StreamError
from repro.faults.plan import FaultPlan, fire as fire_fault
from repro.graph.graph import normalize_edge
from repro.streams.batch import EdgeBatch
from repro.streams.stream import (
    ColumnEdgeStream,
    Update,
    check_batch_size,
    pass_batches,
)
from repro.utils.retry import RetryPolicy, retry_call

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "DEFAULT_MAX_DELTAS",
    "LiveEngine",
    "UpdateJournal",
    "checkpoint_manifest",
    "median_estimate",
]

logger = logging.getLogger("repro.engine.live")

#: Magic prefix of the on-disk live-engine checkpoint format.
CHECKPOINT_MAGIC = b"REPROLIVE1\n"

#: Current checkpoint container version (bumped on layout changes).
#: Version 1 (magic + one bare pickled document) is still readable.
CHECKPOINT_VERSION = 2

#: Delta snapshots per full base before the chain rotates.
DEFAULT_MAX_DELTAS = 16

#: Retry schedule for transient checkpoint-write failures (NFS hiccup,
#: injected EIO); non-transient errors surface after the last attempt.
DISK_WRITE_RETRY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.5)

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: ``format`` marker of the engine section / legacy document.
_FORMAT_FULL = "repro-live-checkpoint"
#: ``format`` marker of a delta file's header section.
_FORMAT_DELTA = "repro-live-delta"


def _as_update_columns(updates) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize any accepted feed payload to ``(u, v, delta)`` columns.

    Accepted: an :class:`~repro.streams.batch.EdgeBatch`, a
    ``(u, v)`` / ``(u, v, delta)`` tuple of arrays, or an iterable of
    :class:`~repro.streams.stream.Update` objects / ``(u, v[, delta])``
    tuples.
    """
    if isinstance(updates, EdgeBatch):
        return updates.u, updates.v, updates.delta
    if (
        isinstance(updates, tuple)
        and len(updates) in (2, 3)
        and all(isinstance(value, (int, np.integer)) for value in updates)
    ):
        updates = [updates]
    if (
        isinstance(updates, tuple)
        and len(updates) in (2, 3)
        and all(isinstance(col, np.ndarray) for col in updates)
    ):
        u, v = updates[0], updates[1]
        delta = updates[2] if len(updates) == 3 else np.ones(len(u), dtype=np.int64)
        return (
            np.ascontiguousarray(u, dtype=np.int64),
            np.ascontiguousarray(v, dtype=np.int64),
            np.ascontiguousarray(delta, dtype=np.int64),
        )
    us: List[int] = []
    vs: List[int] = []
    deltas: List[int] = []
    for element in updates:
        if isinstance(element, Update):
            us.append(element.u)
            vs.append(element.v)
            deltas.append(element.delta)
            continue
        if len(element) == 2:
            u, v = element
            delta = 1
        elif len(element) >= 3:
            u, v, delta = element[0], element[1], element[2]
        else:
            raise StreamError(f"cannot interpret update element {element!r}")
        us.append(int(u))
        vs.append(int(v))
        deltas.append(int(delta))
    return (
        np.array(us, dtype=np.int64),
        np.array(vs, dtype=np.int64),
        np.array(deltas, dtype=np.int64),
    )


# -- checkpoint container codec ------------------------------------------


def _encode_sections(sections: Sequence[Tuple[str, Any]]) -> bytes:
    """Serialize named sections into the versioned, CRC-guarded container."""
    out = io.BytesIO()
    out.write(CHECKPOINT_MAGIC)
    out.write(_U64.pack(CHECKPOINT_VERSION))
    out.write(_U64.pack(len(sections)))
    for name, payload_obj in sections:
        payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
        encoded = name.encode("ascii")
        if not 0 < len(encoded) < 256:
            raise CheckpointError(f"section name {name!r} must be 1..255 bytes")
        out.write(struct.pack("<B", len(encoded)))
        out.write(encoded)
        out.write(_U64.pack(len(payload)))
        out.write(_U32.pack(zlib.crc32(payload)))
        out.write(payload)
    return out.getvalue()


def _take(buffer: io.BytesIO, nbytes: int, path: str, what: str) -> bytes:
    data = buffer.read(nbytes)
    if len(data) != nbytes:
        raise CheckpointError(
            f"{path!r}: truncated checkpoint while reading {what} "
            f"(wanted {nbytes} bytes, got {len(data)})"
        )
    return data


def _unpickle(data: bytes, path: str, what: str) -> Any:
    """Deserialize one payload, converting every failure mode to a typed
    :class:`~repro.errors.CheckpointError` — a corrupted or truncated
    pickle must never escape as a raw ``EOFError``/``UnpicklingError``.
    """
    try:
        return pickle.loads(data)
    except Exception as error:
        raise CheckpointError(
            f"{path!r}: checkpoint {what} failed to deserialize "
            f"({type(error).__name__}: {error})"
        ) from error


def _parse_container(blob: bytes, path: str) -> Tuple[int, Dict[str, Any]]:
    """Parse a checkpoint file's bytes into ``(version, {name: payload})``.

    Verifies the magic, the container version, every section CRC, and
    that no trailing bytes follow the last section; any violation is a
    :class:`~repro.errors.CheckpointError` naming what broke.  Legacy
    version-1 files (a bare pickled document after the magic) come
    back as ``(1, {"document": ...})``.
    """
    buffer = io.BytesIO(blob)
    magic = buffer.read(len(CHECKPOINT_MAGIC))
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path!r} is not a live-engine checkpoint (bad magic)")
    head = buffer.read(1)
    if head == b"\x80":  # a pickle opcode: the un-sectioned v1 layout
        return 1, {"document": _unpickle(blob[len(CHECKPOINT_MAGIC):], path, "document")}
    buffer.seek(len(CHECKPOINT_MAGIC))
    version = _U64.unpack(_take(buffer, 8, path, "the container version"))[0]
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path!r}: checkpoint version {version!r} is not supported "
            f"(this build reads versions 1 and {CHECKPOINT_VERSION})"
        )
    count = _U64.unpack(_take(buffer, 8, path, "the section count"))[0]
    remaining = len(blob) - buffer.tell()
    if count > remaining:  # each section needs >= 14 header bytes
        raise CheckpointError(
            f"{path!r}: section count {count} exceeds what {remaining} "
            "remaining bytes could hold (corrupt header)"
        )
    sections: Dict[str, Any] = {}
    for index in range(count):
        name_len = _take(buffer, 1, path, f"section #{index}'s name length")[0]
        raw_name = _take(buffer, name_len, path, f"section #{index}'s name")
        try:
            name = raw_name.decode("ascii")
        except UnicodeDecodeError as error:
            raise CheckpointError(
                f"{path!r}: section #{index} has a non-ASCII name "
                f"(corrupt header)"
            ) from error
        payload_len = _U64.unpack(
            _take(buffer, 8, path, f"section {name!r}'s payload length")
        )[0]
        stored_crc = _U32.unpack(_take(buffer, 4, path, f"section {name!r}'s CRC"))[0]
        if payload_len > len(blob) - buffer.tell():
            raise CheckpointError(
                f"{path!r}: truncated checkpoint while reading section "
                f"{name!r}'s payload (wanted {payload_len} bytes, got "
                f"{len(blob) - buffer.tell()})"
            )
        payload = buffer.read(payload_len)
        actual_crc = zlib.crc32(payload)
        if actual_crc != stored_crc:
            raise CheckpointError(
                f"{path!r}: checkpoint section {name!r} failed its CRC32 "
                f"check (stored 0x{stored_crc:08x}, computed "
                f"0x{actual_crc:08x}); the file is corrupt"
            )
        sections[name] = _unpickle(payload, path, f"section {name!r}")
    if buffer.read(1):
        raise CheckpointError(
            f"{path!r}: trailing bytes after the last checkpoint section "
            "(corrupt or doctored file)"
        )
    return version, sections


def _read_container(path: str) -> Tuple[int, Dict[str, Any], int]:
    """Read + parse a checkpoint; returns ``(version, sections, file CRC)``."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {error}") from error
    version, sections = _parse_container(blob, path)
    return version, sections, zlib.crc32(blob)


def checkpoint_manifest(path) -> Dict[str, Any]:
    """The byte layout of a checkpoint file, without deserializing it.

    Returns ``{"path", "version", "size", "sections": [{"name",
    "offset", "payload_offset", "payload_length", "crc"}, ...]}``
    where ``offset`` is where the section's header record starts.  The
    corruption-matrix tests use this to aim truncations and bit-flips
    at every structural boundary; operators can use it to audit what a
    checkpoint contains without unpickling anything.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    buffer = io.BytesIO(blob)
    magic = buffer.read(len(CHECKPOINT_MAGIC))
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path!r} is not a live-engine checkpoint (bad magic)")
    if buffer.read(1) == b"\x80":
        return {
            "path": path,
            "version": 1,
            "size": len(blob),
            "sections": [
                {
                    "name": "document",
                    "offset": len(CHECKPOINT_MAGIC),
                    "payload_offset": len(CHECKPOINT_MAGIC),
                    "payload_length": len(blob) - len(CHECKPOINT_MAGIC),
                    "crc": None,
                }
            ],
        }
    buffer.seek(len(CHECKPOINT_MAGIC))
    version = _U64.unpack(_take(buffer, 8, path, "the container version"))[0]
    count = _U64.unpack(_take(buffer, 8, path, "the section count"))[0]
    sections: List[Dict[str, Any]] = []
    for index in range(count):
        offset = buffer.tell()
        name_len = _take(buffer, 1, path, f"section #{index}'s name length")[0]
        name = _take(buffer, name_len, path, f"section #{index}'s name").decode(
            "ascii", errors="replace"
        )
        payload_len = _U64.unpack(
            _take(buffer, 8, path, f"section {name!r}'s payload length")
        )[0]
        crc = _U32.unpack(_take(buffer, 4, path, f"section {name!r}'s CRC"))[0]
        payload_offset = buffer.tell()
        _take(buffer, payload_len, path, f"section {name!r}'s payload")
        sections.append(
            {
                "name": name,
                "offset": offset,
                "payload_offset": payload_offset,
                "payload_length": payload_len,
                "crc": crc,
            }
        )
    return {"path": path, "version": version, "size": len(blob), "sections": sections}


def _atomic_write(path: str, blob: bytes, fault_plan: Optional[FaultPlan]) -> None:
    """Durably replace *path* with *blob*; transient failures retry.

    Same-directory temp file + flush + fsync + atomic rename + parent
    directory fsync: a crash at any instant leaves either the old file
    or the new one, never a tear.  The ``disk.write`` fault site fires
    once per attempt, so an injected transient EIO exercises exactly
    this retry loop.
    """

    def attempt() -> None:
        fire_fault("disk.write", plan=fault_plan)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        directory = os.path.dirname(path) or "."
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platforms without dir fds
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    retry_call(
        attempt,
        policy=DISK_WRITE_RETRY,
        retry_on=(OSError,),
        seed=zlib.crc32(path.encode()),
        label=f"checkpoint write {path}",
    )


def _delta_path(path: str, index: int) -> str:
    return f"{path}.delta.{index:05d}"


def _remove_deltas(path: str, start_index: int = 0) -> List[str]:
    """Delete ``<path>.delta.*`` files with index >= *start_index*.

    Returns the removed paths.  Scans consecutively from
    *start_index* — the same order restore scans — so anything a
    restore could see is covered.
    """
    removed: List[str] = []
    index = start_index
    while True:
        candidate = _delta_path(path, index)
        if not os.path.exists(candidate):
            return removed
        os.remove(candidate)
        removed.append(candidate)
        index += 1


def median_estimate(results) -> float:
    """The median over the ``.estimate`` fields of an estimate dict.

    The aggregation every consumer of :meth:`LiveEngine.estimate`
    wants (``repro live`` reports it, the service layer serves it) —
    with the empty case handled *once*: an empty result dict (every
    copy lost to degradation) raises a typed
    :class:`~repro.errors.EstimationError` instead of the bare
    ``statistics.StatisticsError`` that ``statistics.median`` would
    throw at zero data points.
    """
    values = [result.estimate for result in results.values()]
    if not values:
        raise EstimationError(
            "no estimates to aggregate: every estimator copy has been "
            "lost (the engine is fully degraded); restore a checkpoint "
            "taken before the losses or open a fresh engine"
        )
    return statistics.median(values)


class UpdateJournal:
    """The validated, append-only record of everything fed so far.

    Doubles as the *live stream-metadata handle* the estimator
    factories are built against: it exposes the
    :class:`~repro.streams.stream.EdgeStream` metadata surface
    (``n`` / ``length`` / ``net_edge_count`` / ``allows_deletions`` /
    ``passes_used``) with values that track the feed — an estimator's
    finalizer built against the journal always reads the *current*
    edge count.  Iteration is refused (the live engine owns dispatch);
    :meth:`freeze_stream` materializes the journaled prefix as a
    replayable :class:`~repro.streams.stream.ColumnEdgeStream` for the
    estimate/restore forks.

    Validation is incremental and atomic per append: the simple-graph
    stream model (no self-loops, deltas in {+1, -1}, multiplicities
    never leaving {0, 1}) is enforced exactly as
    :class:`~repro.streams.stream.EdgeStream` enforces it at
    construction, and a rejected batch leaves the journal untouched.
    """

    def __init__(self, n: int, allow_deletions: bool = False) -> None:
        if n < 1:
            raise StreamError(f"journal needs n >= 1, got {n}")
        self._n = int(n)
        self._allow_deletions = bool(allow_deletions)
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._length = 0
        self._net = 0
        self._multiplicity: Dict[Tuple[int, int], int] = {}
        self._columns: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # -- stream-metadata surface (what estimator factories consult) ------

    @property
    def n(self) -> int:
        return self._n

    @property
    def length(self) -> int:
        return self._length

    @property
    def net_edge_count(self) -> int:
        return self._net

    @property
    def allows_deletions(self) -> bool:
        return self._allow_deletions

    @property
    def passes_used(self) -> int:
        """Always 0: the live engine owns dispatch, not pass iteration."""
        return 0

    def reset_pass_count(self) -> None:
        """No-op, for stream-protocol compatibility."""

    def updates(self):
        raise EngineError(
            "the live journal cannot be iterated directly; the LiveEngine "
            "dispatches fed batches itself — use freeze_stream() for a "
            "replayable prefix"
        )

    def __len__(self) -> int:
        return self._length

    # -- appending --------------------------------------------------------

    def append(self, u: np.ndarray, v: np.ndarray, delta: np.ndarray) -> EdgeBatch:
        """Validate and record one fed chunk; returns it as an EdgeBatch.

        All-or-nothing: any invalid element rejects the whole chunk
        with a :class:`~repro.errors.StreamError` naming the offending
        global update index, and no state changes.
        """
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        delta = np.ascontiguousarray(delta, dtype=np.int64)
        if not (len(u) == len(v) == len(delta)):
            raise StreamError("u/v/delta chunk lengths differ")
        if len(u) == 0:
            return EdgeBatch(u, v, delta)
        base = self._length
        bad = np.flatnonzero(u == v)
        if len(bad):
            raise StreamError(
                f"update #{base + int(bad[0])} is a self-loop "
                f"({int(u[bad[0]])}, {int(v[bad[0]])})"
            )
        bad = np.flatnonzero((u < 0) | (u >= self._n) | (v < 0) | (v >= self._n))
        if len(bad):
            raise StreamError(
                f"update #{base + int(bad[0])} touches a vertex outside "
                f"[0, {self._n})"
            )
        bad = np.flatnonzero((delta != 1) & (delta != -1))
        if len(bad):
            raise StreamError(
                f"update #{base + int(bad[0])} delta must be +1 or -1, got "
                f"{int(delta[bad[0]])}"
            )
        if not self._allow_deletions:
            bad = np.flatnonzero(delta < 0)
            if len(bad):
                raise StreamError(
                    f"update #{base + int(bad[0])} is a deletion in an "
                    "insertion-only live engine"
                )
        # Multiplicity transitions are checked against an overlay so a
        # failure mid-chunk leaves the committed journal untouched.
        overlay: Dict[Tuple[int, int], int] = {}
        multiplicity = self._multiplicity
        for index, (u_i, v_i, d_i) in enumerate(
            zip(u.tolist(), v.tolist(), delta.tolist())
        ):
            edge = normalize_edge(u_i, v_i)
            count = overlay.get(edge, multiplicity.get(edge, 0)) + d_i
            if count < 0:
                raise StreamError(f"update #{base + index} deletes absent edge {edge}")
            if count > 1:
                raise StreamError(f"update #{base + index} duplicates edge {edge}")
            overlay[edge] = count
        multiplicity.update(overlay)
        self._chunks.append((u, v, delta))
        self._length += len(u)
        self._net += int(delta.sum())
        self._columns = None
        return EdgeBatch(u, v, delta)

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole journal as contiguous ``(u, v, delta)`` columns."""
        if self._columns is None:
            if not self._chunks:
                empty = np.empty(0, dtype=np.int64)
                self._columns = (empty, empty.copy(), empty.copy())
            elif len(self._chunks) == 1:
                self._columns = self._chunks[0]
            else:
                self._columns = tuple(
                    np.concatenate([chunk[i] for chunk in self._chunks])
                    for i in range(3)
                )
        return self._columns

    def freeze_stream(self, cache=None) -> ColumnEdgeStream:
        """The journaled prefix as a replayable multi-pass stream.

        Shares the column buffers (appends never mutate them, they only
        add chunks), so freezing is O(1) after the first concatenation.
        Validation is skipped — the journal already enforced it.
        """
        u, v, delta = self.columns()
        return ColumnEdgeStream(
            self._n,
            u,
            v,
            delta,
            allow_deletions=self._allow_deletions,
            net_edge_count=self._net,
            validate=False,
            cache=cache,
        )


class LiveEngine:
    """Open-ended, queryable, checkpointable estimation over a live feed.

    Parameters
    ----------
    n:
        Vertex universe of the feed (fixed for the engine's lifetime).
    allow_deletions:
        Whether the feed is turnstile (deletions allowed).  Estimator
        specs incompatible with the feed kind fail at start, exactly as
        they would against a materialized stream.
    batch_size:
        Dispatch granularity: a fed chunk is re-split into batches of
        this size before reaching the estimators (results are invariant
        to it, as everywhere in the engine).
    columnar:
        Dispatch :class:`~repro.streams.batch.EdgeBatch` columns (the
        default) or scalar decoded tuples (the bit-equality reference
        path).
    backend:
        ``"serial"`` (default), ``"thread"`` or ``"process"``
        (persistent worker pool; see module docstring).
    workers, start_method:
        Parallel-backend pool configuration, as in
        :class:`~repro.engine.core.StreamEngine`.
    on_worker_loss:
        Parallel backends only.  ``"degrade"`` (default): a silently
        dead or wedged worker is respawned and replayed from the
        journal (up to *respawn_budget* times); past the budget its
        shard is quarantined and the engine keeps serving the
        surviving estimators with :attr:`degraded` raised.
        ``"abort"``: the loss raises
        :class:`~repro.errors.WorkerLossError` and poisons the engine,
        the historical behavior.
    respawn_budget:
        How many worker respawns the engine will attempt over its
        lifetime before quarantining further losses.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` threading the drill
        schedule through the workers and the checkpoint writes.
        ``None`` (default) disables injection.

    Notes
    -----
    Estimators are registered as picklable specs
    (:meth:`register_spec`) and built lazily at the first feed, so a
    snapshot can always rebuild them.  ``estimate()`` never perturbs
    the live state; ``snapshot()``/``restore()`` round-trip it
    bit-exactly.
    """

    def __init__(
        self,
        n: int,
        allow_deletions: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        columnar: bool = True,
        backend: str = EngineBackend.SERIAL,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        on_worker_loss: str = "degrade",
        respawn_budget: int = 2,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        try:
            batch_size = check_batch_size(batch_size)
        except StreamError as error:
            raise EngineError(str(error)) from error
        if backend not in EngineBackend._ALL:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {EngineBackend._ALL}"
            )
        if on_worker_loss not in ("abort", "degrade"):
            raise EngineError(
                f"on_worker_loss must be 'abort' or 'degrade', "
                f"got {on_worker_loss!r}"
            )
        if respawn_budget < 0:
            raise EngineError(
                f"respawn_budget must be >= 0, got {respawn_budget}"
            )
        self._journal = UpdateJournal(n, allow_deletions)
        self._batch_size = batch_size
        self._columnar = bool(columnar)
        self._backend = backend
        self._workers = workers
        self._start_method = start_method
        self._reply_timeout = reply_timeout
        self._on_worker_loss = on_worker_loss
        self._respawns_left = int(respawn_budget)
        self._fault_plan = fault_plan
        self._specs: List[EstimatorSpec] = []
        self._spec_names: Dict[str, EstimatorSpec] = {}
        self._estimators: List[Any] = []
        self._pool: Optional[Any] = None
        self._pool_size = 0
        self._active_workers: List[int] = []
        self._started = False
        self._feeding = False
        self._closed = False
        #: Estimator names whose shard died past the respawn budget.
        self._lost_names: set = set()
        #: Journal prefix [0, _synced_elements) that every live worker
        #: has seen (or is guaranteed to receive from an in-flight
        #: publish) — the exact replay target for a respawned worker.
        self._synced_elements = 0
        #: True while _start() is mid-handshake: losses then are
        #: quarantined, not respawned (there is no coherent state to
        #: replay into a replacement yet).
        self._starting = False
        #: Per-target-path delta-chain bookkeeping for snapshot():
        #: {"base_crc", "elements", "next_index"}.
        self._delta_chains: Dict[str, Dict[str, Any]] = {}
        #: Set by restore(): what the engine came back from
        #: ({"path", "deltas_applied", "fell_back", "dropped"}).
        self.restore_info: Optional[Dict[str, Any]] = None

    # -- metadata ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self._journal.n

    @property
    def allows_deletions(self) -> bool:
        return self._journal.allows_deletions

    @property
    def elements(self) -> int:
        """Updates fed (and journaled) so far."""
        return self._journal.length

    @property
    def net_edge_count(self) -> int:
        """Edges currently present in the fed graph."""
        return self._journal.net_edge_count

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def started(self) -> bool:
        """Whether the first feed has opened the live pass."""
        return self._started

    @property
    def journal(self) -> UpdateJournal:
        return self._journal

    @property
    def estimator_names(self) -> List[str]:
        return [spec.name for spec in self._specs]

    @property
    def degraded(self) -> bool:
        """Whether any estimator shard was lost past the respawn budget."""
        return bool(self._lost_names)

    @property
    def lost_estimators(self) -> List[str]:
        """Names of the estimators written off with their workers."""
        return sorted(self._lost_names)

    @property
    def surviving_copies(self) -> int:
        """How many registered estimators are still being served."""
        return len(self._specs) - len(self._lost_names)

    @property
    def respawns_left(self) -> int:
        """Remaining worker-respawn budget before losses quarantine."""
        return self._respawns_left

    def status(self) -> Dict[str, Any]:
        """A queryable health summary (what ``repro live`` reports)."""
        return {
            "elements": self._journal.length,
            "net_edge_count": self._journal.net_edge_count,
            "backend": self._backend,
            "started": self._started,
            "degraded": self.degraded,
            "lost": self.lost_estimators,
            "surviving_copies": self.surviving_copies,
            "respawns_left": self._respawns_left,
        }

    # -- registration -----------------------------------------------------

    def register_spec(self, spec: EstimatorSpec) -> EstimatorSpec:
        """Register a picklable estimator recipe; returns it for chaining.

        Only specs are accepted — a live estimator object could be fed,
        but never checkpointed (a snapshot must rebuild it from the
        recipe before loading its state).  Stream-dependent structure
        must be pinned in the kwargs (explicit ``trials=`` for the FGP
        factories); see the module docstring.
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._started:
            raise EngineError(
                "cannot register estimators after feeding has started: the "
                "live pass has already been partially dispatched, so a late "
                "estimator's pass accounting would be silently stale"
            )
        if not isinstance(spec, EstimatorSpec):
            raise EngineError(
                "LiveEngine.register_spec takes an EstimatorSpec (live "
                "estimator objects cannot be rebuilt by a checkpoint); wrap "
                "the factory in a spec"
            )
        if not spec.name:
            raise EngineError("estimator specs must carry a non-empty .name")
        if spec.name in self._spec_names:
            raise EngineError(f"estimator name {spec.name!r} already registered")
        self._spec_names[spec.name] = spec
        self._specs.append(spec)
        return spec

    def register_all(self, specs: Sequence[EstimatorSpec]) -> List[EstimatorSpec]:
        """Register every spec of an iterable, in order."""
        return [self.register_spec(spec) for spec in specs]

    # -- lifecycle --------------------------------------------------------

    def _alive_specs(self) -> List[EstimatorSpec]:
        """The registered specs whose shard has not been lost."""
        return [spec for spec in self._specs if spec.name not in self._lost_names]

    def _start(self, states: Optional[Dict[str, Any]] = None) -> None:
        """Build the estimators (or worker pool) and open the live pass.

        With *states* (the restore path) each freshly built estimator
        is loaded from its captured state instead of beginning pass 0.
        Estimators lost in a previous life (a degraded checkpoint)
        are excluded — the survivors shard as if the lost copies had
        never been configured.
        """
        if not self._specs:
            raise EngineError("no estimator specs registered")
        specs = self._alive_specs()
        if not specs:
            raise EngineError(
                "every registered estimator was lost with its worker; "
                "nothing left to start"
            )
        if self._backend == EngineBackend.SERIAL:
            self._estimators = [spec.build(self._journal) for spec in specs]
            if states is None:
                for estimator in self._estimators:
                    if estimator.wants_pass():
                        estimator.begin_pass(0)
            else:
                for estimator in self._estimators:
                    estimator.load_state_dict(states[estimator.name])
                self._synced_elements = self._journal.length
            self._started = True
            return
        pool_size = resolve_workers(self._workers, len(specs))
        shards = [
            [specs[i] for i in indices]
            for indices in shard_indices(len(specs), pool_size)
        ]
        handle = StreamHandle.of(self._journal)
        self._pool = make_worker_pool(
            self._backend,
            shards,
            handle,
            self._reply_timeout,
            start_method=self._start_method,
            batch_capacity=self._batch_size,
            fault_plan=self._fault_plan,
        )
        self._pool_size = pool_size
        if self._on_worker_loss == "degrade":
            self._pool.loss_handler = self._on_loss
        self._starting = True
        try:
            wants = self._pool.gather("ready", range(pool_size))
            if states is None:
                self._active_workers = [
                    w for w in self._pool.live_ids() if wants.get(w, False)
                ]
                self._pool.broadcast(self._active_workers, ("begin_pass", 0))
            else:
                shard_states = [
                    {spec.name: states[spec.name] for spec in shard}
                    for shard in shards
                ]
                for worker_id, payload in enumerate(shard_states):
                    self._pool.send(worker_id, ("load_state", payload, True))
                loaded = self._pool.gather("loaded", self._pool.live_ids())
                self._active_workers = [
                    w for w in self._pool.live_ids() if loaded.get(w, False)
                ]
                self._synced_elements = self._journal.length
        finally:
            self._starting = False
        self._started = True

    # -- worker-loss recovery ---------------------------------------------

    def _quarantine(self, worker_id: int) -> None:
        """Write a worker's shard off permanently: the engine degrades."""
        names = sorted(spec.name for spec in self._pool.shards[worker_id])
        self._lost_names.update(names)
        logger.warning(
            "live engine degraded: worker %d lost with estimator(s) %s; "
            "serving the %d surviving copies",
            worker_id,
            ", ".join(names),
            len(self._alive_specs()),
        )

    def _on_loss(self, lost: List[int]) -> None:
        """Pool loss handler: respawn within budget, else quarantine.

        Runs inside whichever pool call detected the loss (a send, a
        gather, a ring-slot wait).  Every reported worker is discarded
        first — the pool contract — then each one is either replaced
        by a fresh worker replayed bit-exactly from the journal, or
        its shard is written off and the engine degrades.
        """
        self._pool.discard(lost)
        for worker_id in lost:
            was_active = worker_id in self._active_workers
            if was_active:
                self._active_workers.remove(worker_id)
            if self._starting or not was_active:
                # Mid-handshake (or a worker that never went live):
                # there is no coherent pass state to replay into a
                # replacement, so the shard is lost outright.
                self._quarantine(worker_id)
                continue
            if self._respawns_left <= 0:
                self._quarantine(worker_id)
                continue
            self._respawns_left -= 1
            try:
                self._respawn_and_replay(worker_id)
            except Exception as error:
                logger.warning(
                    "respawn of worker %d failed (%s); quarantining its shard",
                    worker_id,
                    error,
                )
                self._quarantine(worker_id)

    def _respawn_and_replay(self, worker_id: int) -> None:
        """Replace a lost worker and replay the synced journal prefix.

        The replacement rebuilds its estimators from the shard's specs
        and re-ingests journal elements ``[0, _synced_elements)`` in
        engine-batch-size slices — element order is all that matters
        for bit-equality, so the replayed shard is indistinguishable
        from one that never died.  Elements past the watermark are the
        in-flight publish the survivors are receiving right now; the
        replacement joins the active set and takes the *next* publish.
        """
        pool = self._pool
        new_id = pool.respawn(worker_id)
        ready = pool.gather("ready", [new_id])
        if not ready.get(new_id, False):
            raise EngineError(
                f"respawned worker {new_id} (for lost worker {worker_id}) "
                "did not come up ready"
            )
        pool.send(new_id, ("begin_pass", 0))
        u, v, delta = self._journal.columns()
        end = self._synced_elements
        for start in range(0, end, self._batch_size):
            stop = min(start + self._batch_size, end)
            chunk = EdgeBatch(u[start:stop], v[start:stop], delta[start:stop])
            payload = chunk if self._columnar else list(chunk)
            # Plain pickled sends, not the shared ring: the ring's
            # sequence numbers belong to the live feed and must not be
            # consumed by a replay only one worker needs.
            if not pool.send(new_id, ("batch", payload)):
                raise EngineError(
                    f"respawned worker {new_id} was lost again during "
                    "journal replay"
                )
        self._active_workers.append(new_id)
        logger.warning(
            "worker %d lost; respawned as worker %d and replayed %d "
            "journaled element(s) (%d respawn(s) left)",
            worker_id,
            new_id,
            end,
            self._respawns_left,
        )

    def feed(self, updates) -> int:
        """Apply a chunk of updates to every live estimator; returns its size.

        *updates* may be an :class:`~repro.streams.batch.EdgeBatch`, a
        ``(u, v[, delta])`` tuple of numpy columns, or an iterable of
        :class:`~repro.streams.stream.Update` objects / plain tuples.
        The chunk is journaled (with full stream-model validation),
        then dispatched in engine-batch-size slices, in order —
        element order is all that matters for bit-equality, so any
        feed chunking yields the same estimates.

        An **empty chunk is a no-op** returning 0: it is validated and
        accepted, but it neither opens the live pass nor touches the
        journal — in particular, an empty *first* feed does not start
        the engine, so estimators may still be registered afterwards
        (regression-pinned across all three backends in
        ``tests/test_live_checkpoint.py``).
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._feeding:
            raise EngineError("re-entrant feed(): the engine is mid-batch")
        self._feeding = True
        try:
            u, v, delta = _as_update_columns(updates)
            batch = self._journal.append(u, v, delta)
            if not len(batch):
                return 0
            offset = self._journal.length - len(batch)
            if not self._started:
                self._synced_elements = offset
                try:
                    self._start()
                except BaseException:
                    # The journal is already ahead of the (unbuilt)
                    # estimators; no consistent continuation exists, so
                    # poison the engine instead of serving wrong answers.
                    self._closed = True
                    raise
            try:
                for start in range(0, len(batch), self._batch_size):
                    stop = min(start + self._batch_size, len(batch))
                    chunk = EdgeBatch(
                        batch.u[start:stop], batch.v[start:stop], batch.delta[start:stop]
                    )
                    payload = chunk if self._columnar else list(chunk)
                    if self._backend == EngineBackend.SERIAL:
                        for estimator in self._estimators:
                            if estimator.wants_pass():
                                estimator.ingest_batch(payload)
                    else:
                        # Advance the replay watermark *before* the
                        # publish: every recipient either receives
                        # this chunk from the in-flight broadcast or
                        # is respawned with it replayed from the
                        # journal — never both, never neither.
                        self._synced_elements = offset + stop
                        self._pool.publish_batch(self._active_workers, payload)
            except BaseException:
                # A dispatch failure tears the journal/estimator
                # agreement (the journal committed updates some
                # estimator never saw); no consistent continuation
                # exists, so poison the engine rather than serve
                # silently wrong estimates.
                self._closed = True
                raise
            return len(batch)
        finally:
            self._feeding = False

    # -- queries ----------------------------------------------------------

    def _gather_states(self, names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Current ``state_dict`` of the named estimators (all by default).

        Serial backend: only the requested estimators serialize.  The
        process backend gathers per shard (the worker command returns
        its whole shard), so a subset query still touches every worker
        but the driver keeps only what was asked for.

        A worker lost mid-gather triggers recovery, which may leave
        the round partial (a freshly respawned worker never saw this
        round's ``state_dict`` broadcast) — so the gather re-asks the
        surviving pool until every needed state is in hand, bounded to
        a handful of rounds (each round can only be disrupted by
        another loss, and losses are budgeted).
        """
        wanted = None if names is None else set(names)
        if self._backend == EngineBackend.SERIAL:
            return {
                e.name: e.state_dict()
                for e in self._estimators
                if wanted is None or e.name in wanted
            }
        needed = {
            spec.name
            for spec in self._alive_specs()
            if wanted is None or spec.name in wanted
        }
        states: Dict[str, Any] = {}
        for _ in range(4):
            # ``needed`` can drain to the empty set — every requested
            # estimator already lost, or lost during a previous round.
            # That is a *clean* exit here (the caller decides whether
            # an empty/partial gather is a typed refusal; estimate()
            # refuses), not an excuse for another broadcast round.
            if needed <= set(states):
                break
            live = self._pool.live_ids()
            self._pool.broadcast(live, ("state_dict",))
            for payload in self._pool.gather("state", live).values():
                for name, state in payload.items():
                    states[name] = state
            # Recovery during the round may have shrunk the ask.
            needed = {name for name in needed if name not in self._lost_names}
        else:
            raise EngineError(
                f"could not gather estimator state for "
                f"{sorted(needed - set(states))} after repeated worker "
                "losses"
            )
        return {
            name: state
            for name, state in states.items()
            if wanted is None or name in wanted
        }

    def estimate(self, names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Finish a *fork* of each estimator on the journaled prefix.

        Returns ``{name: result}`` for the requested estimators (all by
        default).  The live state is untouched: each estimator is
        rebuilt from its spec against the frozen prefix stream, loaded
        from its current ``state_dict``, its open pass is closed, and
        its remaining passes run over the journal.  A full-stream
        estimate is therefore bit-identical to the one-shot fused run
        with the same seeds; a mid-stream estimate equals the one-shot
        run on the prefix.
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._feeding:
            raise EngineError("estimate() re-entered from a feed in flight")
        if not self._specs:
            raise EngineError("no estimator specs registered")
        selected = self._select(names)
        states = (
            self._gather_states([spec.name for spec in selected])
            if self._started
            else {}
        )
        # The gather itself can lose workers; anything quarantined
        # while we were asking drops out of the round.  With an
        # explicit name list that is a *refusal*, never a silently
        # partial answer: the caller asked for those copies by name.
        dropped = sorted(
            spec.name for spec in selected if spec.name in self._lost_names
        )
        selected = [
            spec for spec in selected if spec.name not in self._lost_names
        ]
        if dropped and names is not None:
            raise EngineError(
                f"estimator(s) {', '.join(dropped)} were lost with their "
                f"worker(s) during the state gather (the engine is "
                f"degraded; all lost: {', '.join(self.lost_estimators)}); "
                "query the survivors or restore a checkpoint taken before "
                "the loss"
            )
        if not selected:
            raise EngineError(
                "every requested estimator was lost with its worker "
                f"(lost: {', '.join(self.lost_estimators)}); no estimates "
                "survive — restore a checkpoint taken before the losses "
                "or open a fresh engine"
            )
        stream = self._journal.freeze_stream()
        results: Dict[str, Any] = {}
        for spec in selected:
            fork = spec.build(stream)
            if self._started:
                state = states.get(spec.name)
                if state is None:
                    # A gather hole that recovery did not explain: fail
                    # loudly rather than serve a fork that silently
                    # restarted from scratch.
                    raise EngineError(
                        f"no live state could be gathered for estimator "
                        f"{spec.name!r} (its worker may have been lost "
                        "mid-gather); retry the query or restore a "
                        "checkpoint"
                    )
                fork.load_state_dict(state)
                if fork.wants_pass():
                    fork.end_pass()
            results[spec.name] = self._complete(fork, stream)
        return results

    def _select(self, names: Optional[Sequence[str]]) -> List[EstimatorSpec]:
        if names is None:
            alive = self._alive_specs()
            if not alive:
                raise EngineError(
                    "every registered estimator was lost with its worker "
                    f"(lost: {', '.join(self.lost_estimators)}); no "
                    "estimates survive — restore a checkpoint taken "
                    "before the losses or open a fresh engine"
                )
            return alive
        selected = []
        for name in names:
            if name not in self._spec_names:
                raise EngineError(f"unknown estimator {name!r}")
            if name in self._lost_names:
                raise EngineError(
                    f"estimator {name!r} was lost with its worker (the "
                    f"engine is degraded; all lost: "
                    f"{', '.join(self.lost_estimators)}); query the "
                    "survivors or restore a checkpoint taken before the "
                    "loss"
                )
            selected.append(self._spec_names[name])
        return selected

    def _complete(self, estimator, stream) -> Any:
        """Drive a fork through its remaining passes over *stream*."""
        passes = 0
        while estimator.wants_pass():
            estimator.begin_pass(passes)
            for batch in pass_batches(stream, self._batch_size, self._columnar):
                estimator.ingest_batch(batch)
            estimator.end_pass()
            passes += 1
        return estimator.result()

    # -- checkpointing ----------------------------------------------------

    def _check_snapshot_allowed(self) -> None:
        if self._closed:
            raise EngineError("live engine is closed")
        if self._feeding:
            raise CheckpointError(
                "cannot snapshot mid-batch: a feed() is still in flight; "
                "snapshot between feed calls"
            )

    def snapshot(
        self,
        path,
        mode: str = "full",
        max_deltas: int = DEFAULT_MAX_DELTAS,
    ) -> str:
        """Write a checkpoint of the engine; returns the path written.

        ``mode="full"`` (default) captures everything — journal,
        specs, estimator states — into *path*.  ``mode="delta"``
        writes only the journal tail since the last snapshot of *path*
        to ``<path>.delta.NNNNN`` (O(updates-since-base) bytes, no
        state gather), falling back to a full snapshot when there is
        no base yet or the chain has reached *max_deltas* tails
        (rotation).  A delta with nothing new to record is a no-op
        returning *path*.

        Rejected while a feed is in flight (a mid-batch capture would
        tear the journal/estimator agreement); call between feeds.
        Writes are atomic and fsynced — a crash mid-write leaves any
        previous checkpoint intact.
        """
        if mode not in ("full", "delta"):
            raise CheckpointError(
                f"snapshot mode must be 'full' or 'delta', got {mode!r}"
            )
        if max_deltas < 1:
            raise CheckpointError(f"max_deltas must be >= 1, got {max_deltas}")
        self._check_snapshot_allowed()
        path = os.fspath(path)
        if mode == "delta":
            chain = self._delta_chains.get(path)
            if chain is None or not os.path.exists(path):
                # No base to diff against: this snapshot becomes one.
                return self._snapshot_full(path)
            if chain["next_index"] >= max_deltas:
                logger.info(
                    "delta chain for %r reached %d tails; rotating to a "
                    "fresh full base",
                    path,
                    chain["next_index"],
                )
                return self._snapshot_full(path)
            return self._snapshot_delta(path, chain)
        return self._snapshot_full(path)

    def _snapshot_full(self, path: str) -> str:
        states = self._gather_states() if self._started else {}
        u, v, delta = self._journal.columns()
        sections = [
            (
                "engine",
                {
                    "format": _FORMAT_FULL,
                    "n": self._journal.n,
                    "allow_deletions": self._journal.allows_deletions,
                    "batch_size": self._batch_size,
                    "columnar": self._columnar,
                    "backend": self._backend,
                    "workers": self._workers,
                    "started": self._started,
                    "lost": sorted(self._lost_names),
                },
            ),
            ("journal", {"u": u, "v": v, "delta": delta}),
            (
                "estimators",
                [
                    {"spec": spec, "state": states.get(spec.name)}
                    for spec in self._specs
                ],
            ),
        ]
        blob = _encode_sections(sections)
        _atomic_write(path, blob, self._fault_plan)
        # A fresh base obsoletes every delta of the previous chain.
        _remove_deltas(path)
        self._delta_chains[path] = {
            "base_crc": zlib.crc32(blob),
            "elements": self._journal.length,
            "next_index": 0,
        }
        return path

    def _snapshot_delta(self, path: str, chain: Dict[str, Any]) -> str:
        start = chain["elements"]
        stop = self._journal.length
        if stop == start:
            return path  # nothing fed since the last snapshot
        index = chain["next_index"]
        u, v, delta = self._journal.columns()
        sections = [
            (
                "delta",
                {
                    "format": _FORMAT_DELTA,
                    "base_crc": chain["base_crc"],
                    "start": start,
                    "stop": stop,
                    "index": index,
                },
            ),
            (
                "tail",
                {
                    "u": np.ascontiguousarray(u[start:stop]),
                    "v": np.ascontiguousarray(v[start:stop]),
                    "delta": np.ascontiguousarray(delta[start:stop]),
                },
            ),
        ]
        target = _delta_path(path, index)
        _atomic_write(target, _encode_sections(sections), self._fault_plan)
        # Anything past this index is debris from a longer pre-restore
        # chain; restore would refuse it (interval mismatch), but
        # removing it keeps the directory honest.
        _remove_deltas(path, index + 1)
        chain["elements"] = stop
        chain["next_index"] = index + 1
        return target

    @classmethod
    def restore(
        cls,
        path,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> "LiveEngine":
        """Rebuild a live engine from a checkpoint written by :meth:`snapshot`.

        The restored engine continues bit-identically to one that never
        stopped.  *backend*/*workers* override the checkpointed
        execution backend — the state dicts are backend-agnostic, so a
        serial checkpoint restores onto the process backend and vice
        versa.

        If delta files accompany the base (``<path>.delta.NNNNN``),
        the longest valid consecutive chain is replayed through
        :meth:`feed`; a torn, corrupt, or mismatched delta stops the
        replay there with a logged warning — the engine comes back at
        the last trustworthy point instead of failing, and the next
        delta snapshot overwrites the bad tip.  ``restore_info`` on
        the returned engine records what happened.

        Checkpoints are pickled documents: restore only files you
        trust (same caveat as any pickle).
        """
        path = os.fspath(path)
        version, sections, base_crc = _read_container(path)
        if version == 1:
            document = sections["document"]
            if not isinstance(document, dict):
                raise CheckpointError(
                    f"{path!r}: checkpoint document is not a mapping"
                )
            if document.get("format") != _FORMAT_FULL:
                raise CheckpointError(f"{path!r}: unknown checkpoint format")
            doc_version = document.get("version")
            if doc_version != 1:
                raise CheckpointError(
                    f"{path!r}: checkpoint version {doc_version!r} is not "
                    f"supported (this build reads versions 1 and "
                    f"{CHECKPOINT_VERSION})"
                )
        else:
            document = dict(sections)
            engine_section = document.get("engine")
            if not isinstance(engine_section, dict) or (
                engine_section.get("format") != _FORMAT_FULL
            ):
                raise CheckpointError(
                    f"{path!r}: unknown checkpoint format (the engine "
                    "section is missing or mislabeled — is this a delta "
                    "file restored as a base?)"
                )
        try:
            config = document["engine"]
            journal = document["journal"]
            estimators = document["estimators"]
            engine = cls(
                n=config["n"],
                allow_deletions=config["allow_deletions"],
                batch_size=config["batch_size"],
                columnar=config["columnar"],
                backend=backend if backend is not None else config["backend"],
                workers=workers if workers is not None else config["workers"],
                start_method=start_method,
            )
            engine._lost_names = set(config.get("lost", ()))
            if len(journal["u"]):
                engine._journal.append(journal["u"], journal["v"], journal["delta"])
            states: Dict[str, Any] = {}
            for entry in estimators:
                engine.register_spec(entry["spec"])
                states[entry["spec"].name] = entry["state"]
            started = config["started"]
        except (KeyError, TypeError, IndexError) as error:
            raise CheckpointError(
                f"{path!r}: checkpoint is structurally incomplete "
                f"({type(error).__name__}: {error})"
            ) from error
        if started:
            engine._start(states)
        info = engine._apply_delta_chain(path, base_crc)
        engine.restore_info = info
        return engine

    def _apply_delta_chain(self, path: str, base_crc: int) -> Dict[str, Any]:
        """Replay the valid consecutive delta chain of *path*, if any.

        Stops — with a logged warning, not an error — at the first
        delta that is unreadable, corrupt, bound to a different base,
        or discontiguous with the journal; everything before it is
        applied and everything from it on is dropped (the chain
        bookkeeping points the next delta snapshot at the bad index,
        so it gets overwritten).
        """
        applied = 0
        dropped: List[str] = []
        index = 0
        while True:
            target = _delta_path(path, index)
            if not os.path.exists(target):
                break
            try:
                _, sections, _ = _read_container(target)
                header = sections.get("delta")
                tail = sections.get("tail")
                if not isinstance(header, dict) or tail is None:
                    raise CheckpointError(
                        f"{target!r}: not a delta checkpoint (missing "
                        "delta/tail sections)"
                    )
                if header.get("format") != _FORMAT_DELTA:
                    raise CheckpointError(
                        f"{target!r}: unknown delta checkpoint format"
                    )
                if header.get("base_crc") != base_crc:
                    raise CheckpointError(
                        f"{target!r}: delta belongs to a different base "
                        f"checkpoint (base CRC 0x{header.get('base_crc', 0):08x}"
                        f" != 0x{base_crc:08x})"
                    )
                if header.get("index") != index:
                    raise CheckpointError(
                        f"{target!r}: delta header index "
                        f"{header.get('index')!r} does not match its "
                        f"filename index {index}"
                    )
                if header.get("start") != self._journal.length:
                    raise CheckpointError(
                        f"{target!r}: delta covers journal elements "
                        f"[{header.get('start')!r}, {header.get('stop')!r}) "
                        f"but the journal holds {self._journal.length}"
                    )
                expected = header.get("stop", 0) - header.get("start", 0)
                if len(tail["u"]) != expected:
                    raise CheckpointError(
                        f"{target!r}: delta tail holds {len(tail['u'])} "
                        f"update(s) but its header promises {expected}"
                    )
                self.feed((tail["u"], tail["v"], tail["delta"]))
            except (CheckpointError, StreamError, KeyError, TypeError) as error:
                logger.warning(
                    "dropping delta checkpoint tip %r (and any later "
                    "deltas): %s; restored through %d applied delta(s) "
                    "at %d element(s)",
                    target,
                    error,
                    applied,
                    self._journal.length,
                )
                probe = index
                while os.path.exists(_delta_path(path, probe)):
                    dropped.append(_delta_path(path, probe))
                    probe += 1
                break
            applied += 1
            index += 1
        self._delta_chains[path] = {
            "base_crc": base_crc,
            "elements": self._journal.length,
            "next_index": index,
        }
        return {
            "path": path,
            "deltas_applied": applied,
            "fell_back": bool(dropped),
            "dropped": dropped,
        }

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (no-op for the serial backend)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(graceful=True)
            self._pool = None

    def __enter__(self) -> "LiveEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
