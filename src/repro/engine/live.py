"""The checkpointable live estimation engine.

Everything before this module is *pass-based*: a stream exists in
full, an engine iterates it, results come out.  Production traffic is
the opposite shape — an unbounded feed of updates that must be
ingested as it arrives, queried mid-stream, and survive process
restarts.  :class:`LiveEngine` is that layer:

* :meth:`LiveEngine.feed` applies a batch of updates incrementally to
  every registered estimator's open pass state (and journals it);
* :meth:`LiveEngine.estimate` answers **at any point** without
  consuming the live state: each estimator is *forked* — rebuilt from
  its spec, restored from its ``state_dict`` — and the fork finishes
  its remaining passes over the journaled prefix while the live
  estimators keep streaming;
* :meth:`LiveEngine.snapshot` serializes the full engine state
  (journal columns, estimator specs, sketch internals, reservoir
  banks, pass-state accumulators, rng positions) to a versioned
  on-disk checkpoint, and :meth:`LiveEngine.restore` rebuilds an
  engine that is **bit-identical** to one that never stopped —
  asserted across every estimator family in
  ``tests/test_live_checkpoint.py``.

Multi-pass estimators on an unbounded feed
------------------------------------------
A 3-pass counter cannot finish on data it has not seen twice more, so
the live engine keeps pass 0 open forever: the feed *is* pass 0.  A
query at time t forks the pass-0 state (cheap: the serialized sketch
state, not the data), closes the fork's pass, and replays the
journaled prefix for the remaining passes — exactly the passes the
one-shot engine would have run on the same prefix, so a fed-live
estimate equals the one-shot estimate on the prefix bit for bit (the
differential fuzz suite pins this).  Single-pass estimators (TRIEST,
Doulion, exact) need no replay beyond closing the fork's pass.

The journal is the price of multi-pass semantics on a live feed: the
engine retains the fed updates as compact numpy columns (O(m) ints,
the same asymptotics as the exact baseline).  Checkpoints embed the
journal, so a restored engine can still answer multi-pass queries.

Execution backends
------------------
``backend="serial"`` runs the estimators in-process.
``backend="thread"`` / ``backend="process"`` shard the registered
specs across a persistent worker pool (the same worker protocol as
:mod:`repro.engine.parallel`, extended with ``state_dict`` /
``load_state`` commands): ``feed`` publishes each batch — by
reference to threads, through the shared-memory batch ring to
processes — ``snapshot`` gathers every shard's states driver-side,
and a checkpoint taken under one backend restores under any other —
the state dicts are backend-agnostic.  The checkpoint commands ride
the same command queues as the batch references, so a snapshot always
captures a consistent point of the feed whatever the transport.

Registration goes through picklable
:class:`~repro.engine.parallel.EstimatorSpec` recipes only (a snapshot
must be able to *rebuild* every estimator before loading its state).
Stream-dependent constructor parameters must be pinned — pass an
explicit ``trials=`` budget to the FGP factories; a spec whose
structure depends on the evolving stream metadata fails the restore
replay with a :class:`~repro.errors.CheckpointError`.

Checkpoint format
-----------------
``REPROLIVE1\\n`` magic followed by a pickled document with a
``version`` field (currently 1).  Pickle is what lets estimator specs
(factory references, pattern objects) and rng states round-trip
exactly; load checkpoints only from sources you trust, as with any
pickle.  Writes are atomic (tmp file + rename), so a crash mid-
snapshot never corrupts the previous checkpoint.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.core import DEFAULT_BATCH_SIZE, EngineBackend
from repro.engine.parallel import (
    DEFAULT_REPLY_TIMEOUT,
    EstimatorSpec,
    StreamHandle,
    make_worker_pool,
    resolve_workers,
    shard_indices,
)
from repro.errors import CheckpointError, EngineError, StreamError
from repro.graph.graph import normalize_edge
from repro.streams.batch import EdgeBatch
from repro.streams.stream import (
    ColumnEdgeStream,
    Update,
    check_batch_size,
    pass_batches,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "LiveEngine",
    "UpdateJournal",
]

#: Magic prefix of the on-disk live-engine checkpoint format.
CHECKPOINT_MAGIC = b"REPROLIVE1\n"

#: Current checkpoint document version (bumped on layout changes).
CHECKPOINT_VERSION = 1


def _as_update_columns(updates) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize any accepted feed payload to ``(u, v, delta)`` columns.

    Accepted: an :class:`~repro.streams.batch.EdgeBatch`, a
    ``(u, v)`` / ``(u, v, delta)`` tuple of arrays, or an iterable of
    :class:`~repro.streams.stream.Update` objects / ``(u, v[, delta])``
    tuples.
    """
    if isinstance(updates, EdgeBatch):
        return updates.u, updates.v, updates.delta
    if (
        isinstance(updates, tuple)
        and len(updates) in (2, 3)
        and all(isinstance(value, (int, np.integer)) for value in updates)
    ):
        updates = [updates]
    if (
        isinstance(updates, tuple)
        and len(updates) in (2, 3)
        and all(isinstance(col, np.ndarray) for col in updates)
    ):
        u, v = updates[0], updates[1]
        delta = updates[2] if len(updates) == 3 else np.ones(len(u), dtype=np.int64)
        return (
            np.ascontiguousarray(u, dtype=np.int64),
            np.ascontiguousarray(v, dtype=np.int64),
            np.ascontiguousarray(delta, dtype=np.int64),
        )
    us: List[int] = []
    vs: List[int] = []
    deltas: List[int] = []
    for element in updates:
        if isinstance(element, Update):
            us.append(element.u)
            vs.append(element.v)
            deltas.append(element.delta)
            continue
        if len(element) == 2:
            u, v = element
            delta = 1
        elif len(element) >= 3:
            u, v, delta = element[0], element[1], element[2]
        else:
            raise StreamError(f"cannot interpret update element {element!r}")
        us.append(int(u))
        vs.append(int(v))
        deltas.append(int(delta))
    return (
        np.array(us, dtype=np.int64),
        np.array(vs, dtype=np.int64),
        np.array(deltas, dtype=np.int64),
    )


class UpdateJournal:
    """The validated, append-only record of everything fed so far.

    Doubles as the *live stream-metadata handle* the estimator
    factories are built against: it exposes the
    :class:`~repro.streams.stream.EdgeStream` metadata surface
    (``n`` / ``length`` / ``net_edge_count`` / ``allows_deletions`` /
    ``passes_used``) with values that track the feed — an estimator's
    finalizer built against the journal always reads the *current*
    edge count.  Iteration is refused (the live engine owns dispatch);
    :meth:`freeze_stream` materializes the journaled prefix as a
    replayable :class:`~repro.streams.stream.ColumnEdgeStream` for the
    estimate/restore forks.

    Validation is incremental and atomic per append: the simple-graph
    stream model (no self-loops, deltas in {+1, -1}, multiplicities
    never leaving {0, 1}) is enforced exactly as
    :class:`~repro.streams.stream.EdgeStream` enforces it at
    construction, and a rejected batch leaves the journal untouched.
    """

    def __init__(self, n: int, allow_deletions: bool = False) -> None:
        if n < 1:
            raise StreamError(f"journal needs n >= 1, got {n}")
        self._n = int(n)
        self._allow_deletions = bool(allow_deletions)
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._length = 0
        self._net = 0
        self._multiplicity: Dict[Tuple[int, int], int] = {}
        self._columns: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # -- stream-metadata surface (what estimator factories consult) ------

    @property
    def n(self) -> int:
        return self._n

    @property
    def length(self) -> int:
        return self._length

    @property
    def net_edge_count(self) -> int:
        return self._net

    @property
    def allows_deletions(self) -> bool:
        return self._allow_deletions

    @property
    def passes_used(self) -> int:
        """Always 0: the live engine owns dispatch, not pass iteration."""
        return 0

    def reset_pass_count(self) -> None:
        """No-op, for stream-protocol compatibility."""

    def updates(self):
        raise EngineError(
            "the live journal cannot be iterated directly; the LiveEngine "
            "dispatches fed batches itself — use freeze_stream() for a "
            "replayable prefix"
        )

    def __len__(self) -> int:
        return self._length

    # -- appending --------------------------------------------------------

    def append(self, u: np.ndarray, v: np.ndarray, delta: np.ndarray) -> EdgeBatch:
        """Validate and record one fed chunk; returns it as an EdgeBatch.

        All-or-nothing: any invalid element rejects the whole chunk
        with a :class:`~repro.errors.StreamError` naming the offending
        global update index, and no state changes.
        """
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        delta = np.ascontiguousarray(delta, dtype=np.int64)
        if not (len(u) == len(v) == len(delta)):
            raise StreamError("u/v/delta chunk lengths differ")
        if len(u) == 0:
            return EdgeBatch(u, v, delta)
        base = self._length
        bad = np.flatnonzero(u == v)
        if len(bad):
            raise StreamError(
                f"update #{base + int(bad[0])} is a self-loop "
                f"({int(u[bad[0]])}, {int(v[bad[0]])})"
            )
        bad = np.flatnonzero((u < 0) | (u >= self._n) | (v < 0) | (v >= self._n))
        if len(bad):
            raise StreamError(
                f"update #{base + int(bad[0])} touches a vertex outside "
                f"[0, {self._n})"
            )
        bad = np.flatnonzero((delta != 1) & (delta != -1))
        if len(bad):
            raise StreamError(
                f"update #{base + int(bad[0])} delta must be +1 or -1, got "
                f"{int(delta[bad[0]])}"
            )
        if not self._allow_deletions:
            bad = np.flatnonzero(delta < 0)
            if len(bad):
                raise StreamError(
                    f"update #{base + int(bad[0])} is a deletion in an "
                    "insertion-only live engine"
                )
        # Multiplicity transitions are checked against an overlay so a
        # failure mid-chunk leaves the committed journal untouched.
        overlay: Dict[Tuple[int, int], int] = {}
        multiplicity = self._multiplicity
        for index, (u_i, v_i, d_i) in enumerate(
            zip(u.tolist(), v.tolist(), delta.tolist())
        ):
            edge = normalize_edge(u_i, v_i)
            count = overlay.get(edge, multiplicity.get(edge, 0)) + d_i
            if count < 0:
                raise StreamError(f"update #{base + index} deletes absent edge {edge}")
            if count > 1:
                raise StreamError(f"update #{base + index} duplicates edge {edge}")
            overlay[edge] = count
        multiplicity.update(overlay)
        self._chunks.append((u, v, delta))
        self._length += len(u)
        self._net += int(delta.sum())
        self._columns = None
        return EdgeBatch(u, v, delta)

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole journal as contiguous ``(u, v, delta)`` columns."""
        if self._columns is None:
            if not self._chunks:
                empty = np.empty(0, dtype=np.int64)
                self._columns = (empty, empty.copy(), empty.copy())
            elif len(self._chunks) == 1:
                self._columns = self._chunks[0]
            else:
                self._columns = tuple(
                    np.concatenate([chunk[i] for chunk in self._chunks])
                    for i in range(3)
                )
        return self._columns

    def freeze_stream(self, cache=None) -> ColumnEdgeStream:
        """The journaled prefix as a replayable multi-pass stream.

        Shares the column buffers (appends never mutate them, they only
        add chunks), so freezing is O(1) after the first concatenation.
        Validation is skipped — the journal already enforced it.
        """
        u, v, delta = self.columns()
        return ColumnEdgeStream(
            self._n,
            u,
            v,
            delta,
            allow_deletions=self._allow_deletions,
            net_edge_count=self._net,
            validate=False,
            cache=cache,
        )


class LiveEngine:
    """Open-ended, queryable, checkpointable estimation over a live feed.

    Parameters
    ----------
    n:
        Vertex universe of the feed (fixed for the engine's lifetime).
    allow_deletions:
        Whether the feed is turnstile (deletions allowed).  Estimator
        specs incompatible with the feed kind fail at start, exactly as
        they would against a materialized stream.
    batch_size:
        Dispatch granularity: a fed chunk is re-split into batches of
        this size before reaching the estimators (results are invariant
        to it, as everywhere in the engine).
    columnar:
        Dispatch :class:`~repro.streams.batch.EdgeBatch` columns (the
        default) or scalar decoded tuples (the bit-equality reference
        path).
    backend:
        ``"serial"`` (default), ``"thread"`` or ``"process"``
        (persistent worker pool; see module docstring).
    workers, start_method:
        Parallel-backend pool configuration, as in
        :class:`~repro.engine.core.StreamEngine`.

    Notes
    -----
    Estimators are registered as picklable specs
    (:meth:`register_spec`) and built lazily at the first feed, so a
    snapshot can always rebuild them.  ``estimate()`` never perturbs
    the live state; ``snapshot()``/``restore()`` round-trip it
    bit-exactly.
    """

    def __init__(
        self,
        n: int,
        allow_deletions: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        columnar: bool = True,
        backend: str = EngineBackend.SERIAL,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    ) -> None:
        try:
            batch_size = check_batch_size(batch_size)
        except StreamError as error:
            raise EngineError(str(error)) from error
        if backend not in EngineBackend._ALL:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {EngineBackend._ALL}"
            )
        self._journal = UpdateJournal(n, allow_deletions)
        self._batch_size = batch_size
        self._columnar = bool(columnar)
        self._backend = backend
        self._workers = workers
        self._start_method = start_method
        self._reply_timeout = reply_timeout
        self._specs: List[EstimatorSpec] = []
        self._spec_names: Dict[str, EstimatorSpec] = {}
        self._estimators: List[Any] = []
        self._pool: Optional[Any] = None
        self._pool_size = 0
        self._active_workers: List[int] = []
        self._started = False
        self._feeding = False
        self._closed = False

    # -- metadata ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self._journal.n

    @property
    def allows_deletions(self) -> bool:
        return self._journal.allows_deletions

    @property
    def elements(self) -> int:
        """Updates fed (and journaled) so far."""
        return self._journal.length

    @property
    def net_edge_count(self) -> int:
        """Edges currently present in the fed graph."""
        return self._journal.net_edge_count

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def started(self) -> bool:
        """Whether the first feed has opened the live pass."""
        return self._started

    @property
    def journal(self) -> UpdateJournal:
        return self._journal

    @property
    def estimator_names(self) -> List[str]:
        return [spec.name for spec in self._specs]

    # -- registration -----------------------------------------------------

    def register_spec(self, spec: EstimatorSpec) -> EstimatorSpec:
        """Register a picklable estimator recipe; returns it for chaining.

        Only specs are accepted — a live estimator object could be fed,
        but never checkpointed (a snapshot must rebuild it from the
        recipe before loading its state).  Stream-dependent structure
        must be pinned in the kwargs (explicit ``trials=`` for the FGP
        factories); see the module docstring.
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._started:
            raise EngineError(
                "cannot register estimators after feeding has started: the "
                "live pass has already been partially dispatched, so a late "
                "estimator's pass accounting would be silently stale"
            )
        if not isinstance(spec, EstimatorSpec):
            raise EngineError(
                "LiveEngine.register_spec takes an EstimatorSpec (live "
                "estimator objects cannot be rebuilt by a checkpoint); wrap "
                "the factory in a spec"
            )
        if not spec.name:
            raise EngineError("estimator specs must carry a non-empty .name")
        if spec.name in self._spec_names:
            raise EngineError(f"estimator name {spec.name!r} already registered")
        self._spec_names[spec.name] = spec
        self._specs.append(spec)
        return spec

    def register_all(self, specs: Sequence[EstimatorSpec]) -> List[EstimatorSpec]:
        """Register every spec of an iterable, in order."""
        return [self.register_spec(spec) for spec in specs]

    # -- lifecycle --------------------------------------------------------

    def _start(self, states: Optional[Dict[str, Any]] = None) -> None:
        """Build the estimators (or worker pool) and open the live pass.

        With *states* (the restore path) each freshly built estimator
        is loaded from its captured state instead of beginning pass 0.
        """
        if not self._specs:
            raise EngineError("no estimator specs registered")
        if self._backend == EngineBackend.SERIAL:
            self._estimators = [spec.build(self._journal) for spec in self._specs]
            if states is None:
                for estimator in self._estimators:
                    if estimator.wants_pass():
                        estimator.begin_pass(0)
            else:
                for estimator in self._estimators:
                    estimator.load_state_dict(states[estimator.name])
            self._started = True
            return
        pool_size = resolve_workers(self._workers, len(self._specs))
        shards = [
            [self._specs[i] for i in indices]
            for indices in shard_indices(len(self._specs), pool_size)
        ]
        handle = StreamHandle.of(self._journal)
        self._pool = make_worker_pool(
            self._backend,
            shards,
            handle,
            self._reply_timeout,
            start_method=self._start_method,
            batch_capacity=self._batch_size,
        )
        self._pool_size = pool_size
        wants = self._pool.gather("ready", range(pool_size))
        if states is None:
            self._active_workers = [w for w in range(pool_size) if wants[w]]
            self._pool.broadcast(self._active_workers, ("begin_pass", 0))
        else:
            shard_states = [
                {spec.name: states[spec.name] for spec in shard} for shard in shards
            ]
            for worker_id, payload in enumerate(shard_states):
                self._pool.send(worker_id, ("load_state", payload, True))
            loaded = self._pool.gather("loaded", range(pool_size))
            self._active_workers = [w for w in range(pool_size) if loaded[w]]
        self._started = True

    def feed(self, updates) -> int:
        """Apply a chunk of updates to every live estimator; returns its size.

        *updates* may be an :class:`~repro.streams.batch.EdgeBatch`, a
        ``(u, v[, delta])`` tuple of numpy columns, or an iterable of
        :class:`~repro.streams.stream.Update` objects / plain tuples.
        The chunk is journaled (with full stream-model validation),
        then dispatched in engine-batch-size slices, in order —
        element order is all that matters for bit-equality, so any
        feed chunking yields the same estimates.
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._feeding:
            raise EngineError("re-entrant feed(): the engine is mid-batch")
        self._feeding = True
        try:
            u, v, delta = _as_update_columns(updates)
            batch = self._journal.append(u, v, delta)
            if not self._started:
                try:
                    self._start()
                except BaseException:
                    # The journal is already ahead of the (unbuilt)
                    # estimators; no consistent continuation exists, so
                    # poison the engine instead of serving wrong answers.
                    self._closed = True
                    raise
            try:
                for start in range(0, len(batch), self._batch_size):
                    stop = min(start + self._batch_size, len(batch))
                    chunk = EdgeBatch(
                        batch.u[start:stop], batch.v[start:stop], batch.delta[start:stop]
                    )
                    payload = chunk if self._columnar else list(chunk)
                    if self._backend == EngineBackend.SERIAL:
                        for estimator in self._estimators:
                            if estimator.wants_pass():
                                estimator.ingest_batch(payload)
                    else:
                        self._pool.publish_batch(self._active_workers, payload)
            except BaseException:
                # A dispatch failure tears the journal/estimator
                # agreement (the journal committed updates some
                # estimator never saw); no consistent continuation
                # exists, so poison the engine rather than serve
                # silently wrong estimates.
                self._closed = True
                raise
            return len(batch)
        finally:
            self._feeding = False

    # -- queries ----------------------------------------------------------

    def _gather_states(self, names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Current ``state_dict`` of the named estimators (all by default).

        Serial backend: only the requested estimators serialize.  The
        process backend gathers per shard (the worker command returns
        its whole shard), so a subset query still touches every worker
        but the driver keeps only what was asked for.
        """
        wanted = None if names is None else set(names)
        if self._backend == EngineBackend.SERIAL:
            return {
                e.name: e.state_dict()
                for e in self._estimators
                if wanted is None or e.name in wanted
            }
        self._pool.broadcast(range(self._pool_size), ("state_dict",))
        states: Dict[str, Any] = {}
        for payload in self._pool.gather("state", range(self._pool_size)).values():
            for name, state in payload.items():
                if wanted is None or name in wanted:
                    states[name] = state
        return states

    def estimate(self, names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Finish a *fork* of each estimator on the journaled prefix.

        Returns ``{name: result}`` for the requested estimators (all by
        default).  The live state is untouched: each estimator is
        rebuilt from its spec against the frozen prefix stream, loaded
        from its current ``state_dict``, its open pass is closed, and
        its remaining passes run over the journal.  A full-stream
        estimate is therefore bit-identical to the one-shot fused run
        with the same seeds; a mid-stream estimate equals the one-shot
        run on the prefix.
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._feeding:
            raise EngineError("estimate() re-entered from a feed in flight")
        if not self._specs:
            raise EngineError("no estimator specs registered")
        selected = self._select(names)
        states = (
            self._gather_states([spec.name for spec in selected])
            if self._started
            else {}
        )
        stream = self._journal.freeze_stream()
        results: Dict[str, Any] = {}
        for spec in selected:
            fork = spec.build(stream)
            if self._started:
                fork.load_state_dict(states[spec.name])
                if fork.wants_pass():
                    fork.end_pass()
            results[spec.name] = self._complete(fork, stream)
        return results

    def _select(self, names: Optional[Sequence[str]]) -> List[EstimatorSpec]:
        if names is None:
            return list(self._specs)
        selected = []
        for name in names:
            if name not in self._spec_names:
                raise EngineError(f"unknown estimator {name!r}")
            selected.append(self._spec_names[name])
        return selected

    def _complete(self, estimator, stream) -> Any:
        """Drive a fork through its remaining passes over *stream*."""
        passes = 0
        while estimator.wants_pass():
            estimator.begin_pass(passes)
            for batch in pass_batches(stream, self._batch_size, self._columnar):
                estimator.ingest_batch(batch)
            estimator.end_pass()
            passes += 1
        return estimator.result()

    # -- checkpointing ----------------------------------------------------

    def snapshot(self, path) -> str:
        """Write a versioned checkpoint of the full engine state.

        Rejected while a feed is in flight (a mid-batch capture would
        tear the journal/estimator agreement); call between feeds.
        The write is atomic — a crash mid-write leaves any previous
        checkpoint at *path* intact.
        """
        if self._closed:
            raise EngineError("live engine is closed")
        if self._feeding:
            raise CheckpointError(
                "cannot snapshot mid-batch: a feed() is still in flight; "
                "snapshot between feed calls"
            )
        states = self._gather_states() if self._started else {}
        u, v, delta = self._journal.columns()
        document = {
            "format": "repro-live-checkpoint",
            "version": CHECKPOINT_VERSION,
            "engine": {
                "n": self._journal.n,
                "allow_deletions": self._journal.allows_deletions,
                "batch_size": self._batch_size,
                "columnar": self._columnar,
                "backend": self._backend,
                "workers": self._workers,
                "started": self._started,
            },
            "journal": {"u": u, "v": v, "delta": delta},
            "estimators": [
                {"spec": spec, "state": states.get(spec.name)} for spec in self._specs
            ],
        }
        path = os.fspath(path)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            pickle.dump(document, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    @classmethod
    def restore(
        cls,
        path,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> "LiveEngine":
        """Rebuild a live engine from a checkpoint written by :meth:`snapshot`.

        The restored engine continues bit-identically to one that never
        stopped.  *backend*/*workers* override the checkpointed
        execution backend — the state dicts are backend-agnostic, so a
        serial checkpoint restores onto the process backend and vice
        versa.

        Checkpoints are pickled documents: restore only files you
        trust (same caveat as any pickle).
        """
        path = os.fspath(path)
        with open(path, "rb") as handle:
            magic = handle.read(len(CHECKPOINT_MAGIC))
            if magic != CHECKPOINT_MAGIC:
                raise CheckpointError(
                    f"{path!r} is not a live-engine checkpoint (bad magic)"
                )
            document = pickle.load(handle)
        if document.get("format") != "repro-live-checkpoint":
            raise CheckpointError(f"{path!r}: unknown checkpoint format")
        version = document.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path!r}: checkpoint version {version!r} is not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        config = document["engine"]
        engine = cls(
            n=config["n"],
            allow_deletions=config["allow_deletions"],
            batch_size=config["batch_size"],
            columnar=config["columnar"],
            backend=backend if backend is not None else config["backend"],
            workers=workers if workers is not None else config["workers"],
            start_method=start_method,
        )
        journal = document["journal"]
        if len(journal["u"]):
            engine._journal.append(journal["u"], journal["v"], journal["delta"])
        states: Dict[str, Any] = {}
        for entry in document["estimators"]:
            engine.register_spec(entry["spec"])
            states[entry["spec"].name] = entry["state"]
        if config["started"]:
            engine._start(states)
        return engine

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (no-op for the serial backend)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(graceful=True)
            self._pool = None

    def __enter__(self) -> "LiveEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
