"""Engine adapters for the library's estimators.

:class:`RoundAdaptiveEstimator` spreads the lockstep loop of
:func:`repro.transform.driver.run_round_adaptive` across engine passes:
at ``begin_pass`` it merges the live generators' round-ℓ batches and
opens an oracle pass-state (``oracle.begin_batch``), during the pass it
forwards every decoded update chunk, and at ``end_pass`` it collects
the answers and dispatches them back to the generators.  Merging and
dispatching go through the same
:class:`~repro.transform.driver.LockstepState` the sequential driver
uses, so a fused run consumes randomness identically and returns
**bit-identical** estimates (asserted in
``tests/test_engine_equivalence.py``).

The ``fgp_*_estimator`` / ``ers_clique_estimator`` factories mirror the
corresponding one-shot entry points parameter for parameter — same
trial resolution, same rng derivation tree — differing only in who
iterates the stream.  Baseline estimators (:class:`TriestEstimator`,
:class:`DoulionEstimator`, :class:`ExactStreamEstimator`) are
re-exported from :mod:`repro.baselines` for one-stop registration.

Because the factories are module-level callables taking ``(stream,
**picklable kwargs)``, they double as the ``factory`` of a
process-backend :class:`~repro.engine.parallel.EstimatorSpec`: a
worker rebuilds the estimator from ``(pattern, trials, rng)`` against
a :class:`~repro.engine.parallel.StreamHandle`.  A built
:class:`RoundAdaptiveEstimator` itself holds live generator frames and
is deliberately *not* picklable — reconstruct from seeds, don't ship.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.baselines.doulion import DoulionEstimator
from repro.baselines.exact_stream import ExactStreamEstimator
from repro.baselines.triest import TriestEstimator
from repro.engine.core import DecodedBatch
from repro.errors import (
    CheckpointError,
    EngineError,
    EstimationError,
    MergeError,
    OracleError,
)
from repro.estimate.concentration import ParamMode
from repro.oracle.base import QueryAccounting
from repro.patterns.pattern import Pattern
from repro.streaming.ers.counter import clique_counter_program
from repro.streaming.ers.params import ErsParameters
from repro.streaming.three_pass import insertion_counter_program, resolve_trials
from repro.streaming.turnstile import turnstile_counter_program
from repro.streaming.two_pass import require_star_decomposable, two_pass_counter_program
from repro.streams.stream import EdgeStream
from repro.transform.driver import LockstepState, RoundRunResult
from repro.transform.insertion import InsertionStreamOracle
from repro.utils.checkpoint import state_field
from repro.utils.rng import RandomSource, derive_rng, ensure_rng

__all__ = [
    "RoundAdaptiveEstimator",
    "fgp_insertion_estimator",
    "fgp_turnstile_estimator",
    "fgp_two_pass_estimator",
    "ers_clique_estimator",
    "TriestEstimator",
    "DoulionEstimator",
    "ExactStreamEstimator",
]


class RoundAdaptiveEstimator:
    """A set of round-adaptive generators driven by engine passes.

    Merge order and answer routing come from the same
    :class:`~repro.transform.driver.LockstepState` that powers
    :func:`~repro.transform.driver.run_round_adaptive`, which is what
    makes fused runs bit-identical to sequential ones.

    Parameters
    ----------
    name:
        Registration key in the engine.
    generators:
        Round-adaptive algorithm instances (see
        :mod:`repro.transform.driver`).
    oracle:
        A stream oracle exposing ``begin_batch(batch)`` returning a
        pass-state with ``ingest_batch(decoded)`` / ``finish()``.
    finalize:
        Maps the finished :class:`RoundRunResult` to the estimator's
        result (typically an :class:`~repro.estimate.result.EstimateResult`).
    """

    def __init__(self, name: str, generators: Sequence, oracle, finalize: Callable) -> None:
        self.name = name
        self._oracle = oracle
        self._finalize = finalize
        self._lockstep = LockstepState(generators)
        self._rounds = 0
        self._accounting = QueryAccounting()
        self._state = None
        self._result: Any = None
        # Per-round answer record: what checkpointing replays.  Live
        # generator frames cannot be serialized, but they are a pure
        # function of (construction seeds, dispatched answers), so the
        # answer history IS the portable form of their state.
        self._history: list = []

    @property
    def rounds(self) -> int:
        """Oracle rounds (= stream passes) consumed so far."""
        return self._rounds

    @property
    def passes_consumed(self) -> int:
        """Stream passes this estimator has already been driven through.

        Part of the engine's registration freshness check: an estimator
        that consumed passes elsewhere cannot join a new run without
        silently corrupting its pass accounting.
        """
        return self._rounds

    def wants_pass(self) -> bool:
        return self._lockstep.live

    def begin_pass(self, pass_index: int) -> None:
        if self._state is not None:
            raise EngineError(f"estimator {self.name!r}: begin_pass while a pass is open")
        if not self._lockstep.live:
            raise EngineError(f"estimator {self.name!r}: begin_pass after completion")
        merged = self._lockstep.merge()
        self._accounting.record_batch(merged)
        self._state = self._oracle.begin_batch(merged)

    def ingest_batch(self, batch: DecodedBatch) -> None:
        # Forwarded verbatim: the pass states accept both columnar
        # EdgeBatch objects and scalar tuple lists (see
        # repro.transform.insertion / .turnstile).
        state = self._state
        if state is None:
            raise EngineError(f"estimator {self.name!r}: ingest_batch outside an open pass")
        state.ingest_batch(batch)

    def end_pass(self) -> list:
        """Close the open pass and dispatch its answers; returns them.

        The return value is what a scatter/merge driver broadcasts to
        the other shard replicas (see :meth:`end_pass_adopting`);
        ordinary engine loops ignore it.
        """
        if self._state is None:
            raise EngineError(f"estimator {self.name!r}: end_pass outside an open pass")
        answers = self._state.finish()
        self._state = None
        self._rounds += 1
        self._history.append(answers)
        self._lockstep.dispatch(answers)
        return answers

    def merge(self, other: "RoundAdaptiveEstimator") -> None:
        """Fold another shard replica's open pass into this one.

        Both estimators must be replicas — built from the same spec
        (same name, seeds and parameters), driven through the same
        rounds (identical answer histories), each currently holding an
        open pass for the same round — with *other* having ingested a
        disjoint shard of the stream.  The oracle-level merge validates
        the replica relation (seeds in lockstep, same pass index); the
        pass-state merge then adds the linear sketch aggregates.  On
        reservoir-backed paths either check raises a typed
        :class:`~repro.errors.MergeError` before any state is touched,
        so a sharded run over a non-mergeable estimator fails loudly
        instead of returning silently wrong estimates.
        """
        if not isinstance(other, RoundAdaptiveEstimator):
            raise MergeError(
                f"cannot merge RoundAdaptiveEstimator with {type(other).__name__}"
            )
        if other.name != self.name:
            raise MergeError(
                f"cannot merge estimator {other.name!r} into {self.name!r}: "
                "shard replicas must be built from the same spec"
            )
        if self._rounds != other._rounds or self._history != other._history:
            raise MergeError(
                f"cannot merge estimator {self.name!r}: the replicas' answer "
                f"histories diverged (self at round {self._rounds}, other at "
                f"round {other._rounds}); shards must adopt the merged answers "
                "each pass (end_pass_adopting) to stay in lockstep"
            )
        if self._state is None or other._state is None:
            raise MergeError(
                f"cannot merge estimator {self.name!r}: both replicas must "
                "hold an open pass (merge happens before end_pass)"
            )
        self._oracle.merge(other._oracle)
        self._state.merge(other._state)

    def end_pass_adopting(self, answers: Sequence) -> None:
        """Close the open pass, adopting the merged replica's *answers*.

        The scatter/merge driver merges all shards' pass states into one
        primary replica and ends that pass normally; every *other*
        replica then calls this — the local (shard-partial) answers are
        discarded, the pass's space is released, and the broadcast
        answers are recorded and dispatched instead, so all replicas
        consume identical randomness next round and stay mergeable.
        """
        if self._state is None:
            raise EngineError(
                f"estimator {self.name!r}: end_pass_adopting outside an open pass"
            )
        self._state.finish()
        self._state = None
        self._rounds += 1
        answers = list(answers)
        self._history.append(answers)
        self._lockstep.dispatch(answers)

    def result(self) -> Any:
        if self._lockstep.live:
            raise EngineError(f"estimator {self.name!r} has not finished its passes")
        if self._result is None:
            self._result = self._finalize(
                RoundRunResult(
                    outputs=self._lockstep.outputs,
                    rounds=self._rounds,
                    accounting=self._accounting,
                )
            )
        return self._result

    def state_dict(self) -> dict:
        """Portable state: answer history + oracle state + open pass.

        Generator frames are not serializable, so the capture records
        the per-round answers instead — :meth:`load_state_dict` replays
        them through a freshly built (same seeds) estimator, which
        reconstructs the exact generator states.  The open pass (if
        any) is captured directly via its own ``state_dict``; oracle
        randomness rides along so the continuation is bit-identical.
        """
        return {
            "kind": "round-adaptive",
            "name": self.name,
            "rounds": self._rounds,
            "history": [list(answers) for answers in self._history],
            "accounting": self._accounting.state_dict(),
            "oracle": self._oracle.state_dict(),
            "pass_state": None if self._state is None else self._state.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Replay a capture into this *freshly built* estimator.

        The estimator must have been rebuilt from the same recipe
        (factory + kwargs + seeds) that produced the captured one —
        stream-dependent parameters (e.g. a trial budget resolved from
        ``stream.net_edge_count``) must be pinned explicitly in the
        recipe, otherwise the rebuilt structure drifts and the replay
        fails with a :class:`~repro.errors.CheckpointError`.
        """
        if self._rounds or self._state is not None or self._history:
            raise CheckpointError(
                f"estimator {self.name!r}: load_state_dict requires a freshly "
                "built estimator (rebuild from the spec, then load)"
            )
        captured_name = state_field("RoundAdaptiveEstimator", state, "name")
        if captured_name != self.name:
            raise CheckpointError(
                f"state of estimator {captured_name!r} cannot be loaded into "
                f"estimator {self.name!r}"
            )
        history = state_field("RoundAdaptiveEstimator", state, "history")
        if int(state_field("RoundAdaptiveEstimator", state, "rounds")) != len(history):
            raise CheckpointError(
                f"estimator {self.name!r}: state records "
                f"{state['rounds']} rounds but carries {len(history)} answer lists"
            )
        try:
            for answers in history:
                if not self._lockstep.live:
                    raise CheckpointError(
                        f"estimator {self.name!r}: generators finished before the "
                        "recorded history was replayed; the rebuilt estimator "
                        "does not match the captured structure"
                    )
                self._lockstep.merge()
                self._lockstep.dispatch(list(answers))
            pass_state = state_field("RoundAdaptiveEstimator", state, "pass_state")
            if pass_state is not None:
                if not self._lockstep.live:
                    raise CheckpointError(
                        f"estimator {self.name!r}: state carries an open pass but "
                        "the replayed generators have finished"
                    )
                # Rebuild the pass structure from the replayed merged
                # batch, then overlay the captured runtime state.  The
                # oracle rng position is restored below, so whatever
                # begin_batch consumed here is irrelevant.
                merged = self._lockstep.merge()
                self._state = self._oracle.begin_batch(merged)
                self._state.load_state_dict(pass_state)
        except OracleError as error:
            raise CheckpointError(
                f"estimator {self.name!r}: replaying the recorded history failed "
                f"({error}); the estimator was rebuilt with a different structure "
                "— pin stream-dependent parameters (e.g. trials) in the recipe"
            ) from error
        self._oracle.load_state_dict(state_field("RoundAdaptiveEstimator", state, "oracle"))
        self._accounting.load_state_dict(
            state_field("RoundAdaptiveEstimator", state, "accounting")
        )
        self._rounds = len(history)
        self._history = [list(answers) for answers in history]


def fgp_insertion_estimator(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
    name: str = "fgp-insertion",
) -> RoundAdaptiveEstimator:
    """Theorem 17's counter as an engine estimator.

    Same parameters and randomness tree as
    :func:`~repro.streaming.three_pass.count_subgraphs_insertion_only`;
    a fused run with rng R equals the one-shot call with rng R bit for
    bit.
    """
    random_state = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)
    oracle, generators, finalize = insertion_counter_program(
        stream, pattern, k, random_state
    )
    return RoundAdaptiveEstimator(name, generators, oracle, finalize)


def fgp_turnstile_estimator(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
    sampler_repetitions: int = 8,
    name: str = "fgp-turnstile",
) -> RoundAdaptiveEstimator:
    """Theorem 1's turnstile counter as an engine estimator
    (mirrors :func:`~repro.streaming.turnstile.count_subgraphs_turnstile`)."""
    random_state = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)
    oracle, generators, finalize = turnstile_counter_program(
        stream, pattern, k, random_state, sampler_repetitions=sampler_repetitions
    )
    return RoundAdaptiveEstimator(name, generators, oracle, finalize)


def fgp_two_pass_estimator(
    stream: EdgeStream,
    pattern: Pattern,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    param_mode: str = ParamMode.PRACTICAL,
    name: str = "fgp-two-pass",
) -> RoundAdaptiveEstimator:
    """The 2-pass star-decomposable counter as an engine estimator
    (mirrors :func:`~repro.streaming.two_pass.count_subgraphs_two_pass`)."""
    require_star_decomposable(pattern)
    random_state = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)
    oracle, generators, finalize = two_pass_counter_program(
        stream, pattern, k, random_state
    )
    return RoundAdaptiveEstimator(name, generators, oracle, finalize)


def ers_clique_estimator(
    stream: EdgeStream,
    r: int,
    degeneracy_bound: int,
    lower_bound: float,
    epsilon: float = 0.2,
    params: Optional[ErsParameters] = None,
    rng: RandomSource = None,
    name: str = "ers-clique",
) -> RoundAdaptiveEstimator:
    """Theorem 2's clique counter (<= 5r passes) as an engine estimator
    (mirrors :func:`~repro.streaming.ers.counter.count_cliques_stream`)."""
    if stream.allows_deletions:
        raise EstimationError("the ERS counter is an insertion-only algorithm")
    random_state = ensure_rng(rng)
    if params is None:
        params = ErsParameters(r=r, degeneracy_bound=degeneracy_bound, epsilon=epsilon)
    oracle = InsertionStreamOracle(stream, derive_rng(random_state, "oracle"))
    runs, finalize_run = clique_counter_program(
        params, lower_bound, stream.n, oracle, random_state
    )

    def finalize(run_result):
        result = finalize_run(run_result)
        result.m = stream.net_edge_count
        return result

    return RoundAdaptiveEstimator(name, runs, oracle, finalize)
