"""Scatter/merge execution: one stream, split across shard engines.

The parallel backends in :mod:`repro.engine.parallel` replicate K
estimator copies over a *single* stream — every byte still funnels
through one reader.  This module splits the **stream** instead: each
shard (a hash-partition of the update sequence, see
:func:`repro.streams.datasets.write_stream_shards`) is fed to an
independent replica of every registered estimator, and at the end of
every pass the replicas' states are merged — *before* the pass closes —
through the ``merge()`` protocol that runs from
:class:`~repro.engine.estimators.RoundAdaptiveEstimator` down to the
one-sparse sketch aggregates.

Why this is exact (the merge laws)
----------------------------------
Turnstile pass state is **linear**: signed counters and GF(2^61-1)
sketch aggregates are sums over the updates, computed in exact integer
/ modular arithmetic, and ingestion draws **no randomness**.  Replicas
built from the same spec (same seeds) therefore carry identical frozen
randomness (hash coefficients, fingerprint bases), and adding their
aggregates is associative, commutative, and bit-identical to one
estimator ingesting the whole stream — whatever the shard count or cut
points.  After the merge, the *global* round answers are broadcast back
so every replica dispatches the same answers to its generators and all
replicas consume identical randomness next round
(:meth:`~repro.engine.estimators.RoundAdaptiveEstimator.end_pass_adopting`).

Reservoir-backed paths (the insertion-only oracle) have no such law —
their draws depend on the global stream position — and raise a typed
:class:`~repro.errors.MergeError` at the first merge barrier, never a
silently wrong estimate.

Backends
--------
``backend="serial"`` feeds the shards one after another in this
process; ``backend="thread"`` feeds them concurrently from daemon
threads (the numpy kernels release the GIL); ``backend="process"``
reuses the worker pool of :mod:`repro.engine.parallel` — one worker
process per shard, batches published through the shared-memory ring,
mid-pass states gathered with the ``state_dict`` worker command,
merged driver-side, and the global answers broadcast back with
``adopt_answers``.  All three produce bit-identical results for the
same seeds; the process backend additionally pays a per-pass replica
rebuild (O(shards x trials) generator construction) to move sketch
state across the process boundary.

Memory stays bounded by the shard batch caches: apply a
``cache="lru:..."`` policy and the peak decoded bytes are metered per
shard (``peak_resident_bytes`` via :mod:`repro.streams.cache`), so a
disk graph far larger than RAM counts in one pass per round.

Quick tour::

    from repro.engine.sharded import count_subgraphs_turnstile_sharded
    from repro.streams.datasets import open_stream_shards

    shards = open_stream_shards("graph.reb", 4)     # graph.shard-*.reb
    fused = count_subgraphs_turnstile_sharded(
        shards, patterns.triangle(), copies=8, trials=64, rng=7)
    # bit-identical to count_subgraphs_turnstile_fused(stream, ...,
    # mode="mirror") over the unsharded stream, any shard count.
"""

from __future__ import annotations

import random
import statistics
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.core import (
    DEFAULT_BATCH_SIZE,
    EngineBackend,
    EngineReport,
    apply_cache_policy,
)
from repro.engine.estimators import fgp_turnstile_estimator
from repro.engine.fused import FusedCountResult, FusionMode, _check_fused_args
from repro.engine.parallel import (
    DEFAULT_REPLY_TIMEOUT,
    EstimatorSpec,
    StreamHandle,
    make_worker_pool,
    resolve_workers,
)
from repro.errors import EngineError, StreamError
from repro.estimate.concentration import ParamMode
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import resolve_trials
from repro.streams.stream import check_batch_size, pass_batches
from repro.utils.rng import RandomSource, derive_seed, ensure_rng

__all__ = [
    "ShardedRunner",
    "sharded_stream_handle",
    "count_subgraphs_turnstile_sharded",
]


def sharded_stream_handle(shards: Sequence) -> StreamHandle:
    """The union :class:`StreamHandle` describing a set of shard streams.

    Estimator replicas must be built against the **global** stream
    metadata — trial resolution and the FGP finalizer read
    ``net_edge_count`` (the estimate scales with m^rho), and the
    oracles read ``n`` — never against a single shard's, which would
    skew every estimate by roughly ``shards^rho``.  The handle carries
    the union: shared ``n``, summed ``length`` and ``net_edge_count``,
    ``allows_deletions`` if any shard deletes.  Shards disagreeing on
    ``n`` were not cut from the same stream and are rejected.
    """
    if not shards:
        raise EngineError("sharded run needs at least one shard stream")
    n = shards[0].n
    for index, shard in enumerate(shards):
        if shard.n != n:
            raise EngineError(
                f"shard {index} has n={shard.n} but shard 0 has n={n}; "
                "shards must be partitions of one stream"
            )
    return StreamHandle(
        n=n,
        length=sum(shard.length for shard in shards),
        net_edge_count=sum(shard.net_edge_count for shard in shards),
        allows_deletions=any(shard.allows_deletions for shard in shards),
    )


class ShardedRunner:
    """Drive estimator specs over stream shards, merging every pass.

    Registration is spec-based only (:class:`EstimatorSpec`): each
    shard needs its own *replica* of every estimator, and replicas are
    only mergeable when rebuilt from identical seeds — so specs must
    pin seed integers, not live generators (enforced at registration).

    Per pass: every replica opens the pass, shard ``r``'s batches feed
    replica set ``r``, then — before the pass closes — replicas
    1..R-1 merge into replica 0, replica 0 ends the pass normally, and
    the resulting *global* answers are adopted by the other replicas.
    The final results are read off replica set 0, which at that point
    is bit-identical to an unsharded run.
    """

    def __init__(
        self,
        shards: Sequence,
        batch_size: int = DEFAULT_BATCH_SIZE,
        backend: str = EngineBackend.SERIAL,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        columnar: bool = True,
        cache=None,
        max_passes: int = 0,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        reset_pass_count: bool = True,
    ) -> None:
        if backend not in EngineBackend._ALL:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {EngineBackend._ALL}"
            )
        if max_passes < 0:
            raise EngineError(f"max_passes must be >= 0, got {max_passes}")
        try:
            batch_size = check_batch_size(batch_size)
        except StreamError as error:
            raise EngineError(str(error)) from error
        self._shards = list(shards)
        self._handle = sharded_stream_handle(self._shards)
        self._batch_size = batch_size
        self._backend = backend
        self._workers = workers
        self._start_method = start_method
        self._columnar = columnar
        self._cache = cache
        self._max_passes = max_passes
        self._reply_timeout = reply_timeout
        self._reset_pass_count = reset_pass_count
        self._specs: List[EstimatorSpec] = []

    @property
    def handle(self) -> StreamHandle:
        """The union metadata replicas are built against."""
        return self._handle

    def register(self, spec: EstimatorSpec) -> None:
        """Register one estimator spec (a replica is built per shard)."""
        if any(existing.name == spec.name for existing in self._specs):
            raise EngineError(f"estimator {spec.name!r} is already registered")
        for key, value in spec.kwargs.items():
            if isinstance(value, random.Random):
                raise EngineError(
                    f"spec {spec.name!r} carries a live random.Random in "
                    f"kwargs[{key!r}]; shard replicas built from a shared "
                    "generator would diverge — pin an integer seed instead"
                )
        self._specs.append(spec)

    def register_many(self, specs: Sequence[EstimatorSpec]) -> None:
        for spec in specs:
            self.register(spec)

    def run(self) -> EngineReport:
        """Drive all specs to completion; results come from replica 0."""
        if not self._specs:
            raise EngineError("no estimator specs registered")
        for shard in self._shards:
            apply_cache_policy(shard, self._cache)
            if self._reset_pass_count:
                shard.reset_pass_count()
        if self._backend == EngineBackend.PROCESS:
            return self._run_pooled()
        return self._run_local()

    # -- serial / thread: replicas live in this process ------------------

    def _feed_shard(self, shard_index: int, estimators: Sequence) -> List[int]:
        """One shard's pass: feed every batch to the shard's replicas."""
        elements = 0
        batches = 0
        for batch in pass_batches(
            self._shards[shard_index], self._batch_size, self._columnar
        ):
            elements += len(batch)
            batches += 1
            for estimator in estimators:
                estimator.ingest_batch(batch)
        return [elements, batches]

    def _run_local(self) -> EngineReport:
        count = len(self._shards)
        replicas = [
            [spec.build(self._handle) for spec in self._specs] for _ in range(count)
        ]
        primaries = replicas[0]
        threads = (
            resolve_workers(self._workers, count)
            if self._backend == EngineBackend.THREAD
            else 1
        )
        passes = 0
        elements = 0
        dispatches = 0
        merge_seconds = 0.0
        while True:
            active = [
                index
                for index, estimator in enumerate(primaries)
                if estimator.wants_pass()
            ]
            if not active:
                break
            if self._max_passes and passes >= self._max_passes:
                names = [self._specs[index].name for index in active]
                raise EngineError(
                    f"estimators still want passes after max_passes="
                    f"{self._max_passes}: {names}"
                )
            for shard_replicas in replicas:
                for index in active:
                    shard_replicas[index].begin_pass(passes)
            actives = [
                [shard_replicas[index] for index in active]
                for shard_replicas in replicas
            ]
            if self._backend == EngineBackend.THREAD and count > 1:
                counts = self._feed_threaded(actives, threads)
            else:
                counts = [
                    self._feed_shard(shard, actives[shard]) for shard in range(count)
                ]
            for fed, batches in counts:
                elements += fed
                dispatches += batches * len(active)
            merge_start = time.perf_counter()
            for index in active:
                primary = primaries[index]
                for shard_replicas in replicas[1:]:
                    primary.merge(shard_replicas[index])
                answers = primary.end_pass()
                for shard_replicas in replicas[1:]:
                    shard_replicas[index].end_pass_adopting(answers)
            merge_seconds += time.perf_counter() - merge_start
            passes += 1
        results = {
            spec.name: primaries[index].result()
            for index, spec in enumerate(self._specs)
        }
        return EngineReport(
            results=results,
            passes=passes,
            elements=elements,
            dispatches=dispatches,
            batch_size=self._batch_size,
            workers=threads if self._backend == EngineBackend.THREAD else 1,
            merge_seconds=merge_seconds,
        )

    def _feed_threaded(self, actives: Sequence[Sequence], threads: int) -> List[List[int]]:
        """Feed all shards concurrently: thread t owns shards t, t+T, ...

        Each shard's replicas are touched by exactly one thread, so no
        estimator state is shared; the merge barrier runs in the caller
        after every feeder joined.  The first feeder error re-raises.
        """
        count = len(self._shards)
        counts: List[List[int]] = [[0, 0] for _ in range(count)]
        errors: List[BaseException] = []
        lock = threading.Lock()

        def feed(thread_index: int) -> None:
            try:
                for shard in range(thread_index, count, threads):
                    counts[shard] = self._feed_shard(shard, actives[shard])
            except BaseException as error:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append(error)

        feeders = [
            threading.Thread(
                target=feed, args=(index,), name=f"shard-feeder-{index}", daemon=True
            )
            for index in range(min(threads, count))
        ]
        for feeder in feeders:
            feeder.start()
        for feeder in feeders:
            feeder.join()
        if errors:
            raise errors[0]
        return counts

    # -- process: shard replicas live in pool workers --------------------

    def _run_pooled(self) -> EngineReport:
        """One pool worker per shard, merge through state round-trips.

        The driver keeps its own primary replica set that never ingests
        a batch: each pass it opens the pass (consuming the same oracle
        randomness as the workers' replicas), pulls every worker's
        mid-pass ``state_dict``, rehydrates it into a scratch replica
        and merges it in, ends the pass, and broadcasts the global
        answers back (``adopt_answers``).  A lost worker aborts the
        run — unlike copy-parallelism there is no degrading: a dead
        shard's updates are simply missing from every estimate.
        """
        count = len(self._shards)
        pool = make_worker_pool(
            EngineBackend.PROCESS,
            [list(self._specs) for _ in range(count)],
            self._handle,
            self._reply_timeout,
            start_method=self._start_method,
            batch_capacity=self._batch_size,
        )
        primaries = [spec.build(self._handle) for spec in self._specs]
        passes = 0
        elements = 0
        dispatches = 0
        merge_seconds = 0.0
        graceful = False
        try:
            pool.gather("ready", range(count))
            while True:
                active = [
                    index
                    for index, estimator in enumerate(primaries)
                    if estimator.wants_pass()
                ]
                if not active:
                    break
                if self._max_passes and passes >= self._max_passes:
                    names = [self._specs[index].name for index in active]
                    raise EngineError(
                        f"estimators still want passes after max_passes="
                        f"{self._max_passes}: {names}"
                    )
                live = pool.live_ids()
                if len(live) != count:
                    lost = sorted(set(range(count)) - set(live))
                    raise EngineError(
                        f"shard workers {lost} were lost; a sharded run cannot "
                        "degrade (their updates exist nowhere else)"
                    )
                pool.broadcast(live, ("begin_pass", passes))
                for index in active:
                    primaries[index].begin_pass(passes)
                for shard in range(count):
                    for batch in pass_batches(
                        self._shards[shard], self._batch_size, self._columnar
                    ):
                        elements += len(batch)
                        dispatches += len(active)
                        pool.publish_batch([shard], batch)
                merge_start = time.perf_counter()
                pool.broadcast(live, ("state_dict",))
                states = pool.gather("state", live)
                answers: Dict[str, list] = {}
                for index in active:
                    spec = self._specs[index]
                    primary = primaries[index]
                    for shard in sorted(states):
                        scratch = spec.build(self._handle)
                        scratch.load_state_dict(states[shard][spec.name])
                        primary.merge(scratch)
                    answers[spec.name] = primary.end_pass()
                pool.broadcast(live, ("adopt_answers", answers))
                pool.gather("pass_done", live)
                merge_seconds += time.perf_counter() - merge_start
                passes += 1
            graceful = True
        finally:
            pool.shutdown(graceful)
        results = {
            spec.name: primaries[index].result()
            for index, spec in enumerate(self._specs)
        }
        return EngineReport(
            results=results,
            passes=passes,
            elements=elements,
            dispatches=dispatches,
            batch_size=self._batch_size,
            workers=count,
            merge_seconds=merge_seconds,
        )


def count_subgraphs_turnstile_sharded(
    shards: Sequence,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    sampler_repetitions: int = 8,
    batch_size: int = DEFAULT_BATCH_SIZE,
    backend: str = EngineBackend.SERIAL,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    columnar: bool = True,
    cache=None,
    max_passes: int = 0,
) -> FusedCountResult:
    """Median of K Theorem-1 copies over hash-partitioned stream shards.

    The partitioned counterpart of
    :func:`~repro.engine.fused.count_subgraphs_turnstile_fused` with
    ``mode="mirror"``: trial resolution and the per-copy seeds are
    derived identically (``derive_seed(master, "copy-i")`` after one
    ``resolve_trials`` against the *union* metadata), so for the same
    ``rng`` the result is **bit-identical** to the unsharded mirror run
    — for any shard count, cut points, or backend.  Only turnstile
    estimators run here; insertion-only paths raise
    :class:`~repro.errors.MergeError` at the first merge barrier.
    """
    _check_fused_args(copies, FusionMode.MIRROR, copy_rngs, backend)
    handle = sharded_stream_handle(shards)
    master = ensure_rng(rng)
    k = resolve_trials(handle, pattern, epsilon, lower_bound, trials, param_mode)
    if copy_rngs is None:
        copy_rngs = [derive_seed(master, f"copy-{index}") for index in range(copies)]
    runner = ShardedRunner(
        shards,
        batch_size=batch_size,
        backend=backend,
        workers=workers,
        start_method=start_method,
        columnar=columnar,
        cache=cache,
        max_passes=max_passes,
    )
    names = [f"copy-{index}" for index in range(copies)]
    for index, name in enumerate(names):
        runner.register(
            EstimatorSpec(
                name=name,
                factory=fgp_turnstile_estimator,
                kwargs=dict(
                    pattern=pattern,
                    trials=k,
                    rng=copy_rngs[index],
                    sampler_repetitions=sampler_repetitions,
                    name=name,
                ),
            )
        )
    report = runner.run()
    copy_results = [report.results[name] for name in names]
    median = statistics.median(result.estimate for result in copy_results)
    return FusedCountResult(
        algorithm="fgp-3pass-turnstile",
        pattern=pattern.name,
        estimate=median,
        copies=copy_results,
        passes=report.passes,
        mode=FusionMode.MIRROR,
        backend=backend,
        m=handle.net_edge_count,
        details={
            "trials_per_copy": float(k),
            "elements": float(report.elements),
            "batch_size": float(report.batch_size),
            "workers": float(report.workers),
            "shards": float(len(shards)),
            "merge_seconds": float(report.merge_seconds),
        },
    )
