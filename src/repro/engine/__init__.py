"""repro.engine — the fused multi-estimator stream engine.

Registers K independent estimators (FGP counter copies, ERS clique
runs, TRIEST / Doulion / exact baselines) and drives them all from ONE
iteration of each stream pass, dispatching decoded updates in
configurable batches.  See :mod:`repro.engine.core` for the executor
and pass-callback protocol, :mod:`repro.engine.estimators` for the
adapters, and :mod:`repro.engine.fused` for the median-of-K fused
counting entry points.

Quick tour::

    from repro.engine import StreamEngine, fgp_insertion_estimator
    from repro.baselines import TriestEstimator

    engine = StreamEngine(stream, batch_size=2048)
    engine.register(fgp_insertion_estimator(stream, patterns.triangle(),
                                            trials=500, rng=1, name="fgp"))
    engine.register(TriestEstimator(capacity=400, rng=2))
    report = engine.run()          # 3 stream passes total, not 3 + 1
    report["fgp"].estimate, report["triest"].estimate

Median amplification in 3 passes instead of 3K::

    from repro.engine import count_subgraphs_insertion_only_fused
    fused = count_subgraphs_insertion_only_fused(
        stream, patterns.triangle(), copies=32, trials=200, rng=7)
    fused.estimate                 # median of 32 independent copies
"""

from repro.engine.core import (
    DEFAULT_BATCH_SIZE,
    DecodedBatch,
    DecodedUpdate,
    EngineReport,
    StreamEngine,
)
from repro.engine.estimators import (
    DoulionEstimator,
    ExactStreamEstimator,
    RoundAdaptiveEstimator,
    TriestEstimator,
    ers_clique_estimator,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
    fgp_two_pass_estimator,
)
from repro.engine.fused import (
    FusedCountResult,
    FusionMode,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DecodedBatch",
    "DecodedUpdate",
    "EngineReport",
    "StreamEngine",
    "RoundAdaptiveEstimator",
    "fgp_insertion_estimator",
    "fgp_turnstile_estimator",
    "fgp_two_pass_estimator",
    "ers_clique_estimator",
    "TriestEstimator",
    "DoulionEstimator",
    "ExactStreamEstimator",
    "FusionMode",
    "FusedCountResult",
    "count_subgraphs_insertion_only_fused",
    "count_subgraphs_turnstile_fused",
    "count_subgraphs_two_pass_fused",
]
