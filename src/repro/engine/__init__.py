"""repro.engine — the fused multi-estimator stream engine.

Registers K independent estimators (FGP counter copies, ERS clique
runs, TRIEST / Doulion / exact baselines) and drives them all from ONE
iteration of each stream pass, dispatching decoded updates in
configurable batches.  See :mod:`repro.engine.core` for the executor
and pass-callback protocol, :mod:`repro.engine.estimators` for the
adapters, :mod:`repro.engine.fused` for the median-of-K fused counting
entry points, :mod:`repro.engine.parallel` for the thread and process
execution backends (the worker protocol, the shared-memory batch
ring, :class:`EstimatorSpec` and :class:`StreamHandle`), and
:mod:`repro.engine.live` for the
checkpointable live layer (:class:`LiveEngine`: open-ended ``feed``,
mid-stream ``estimate``, checksummed full/delta ``snapshot`` and
corruption-tolerant ``restore``, graceful degradation under worker
loss).  Deterministic fault injection for all of the above lives in
:mod:`repro.faults`.

Quick tour::

    from repro.engine import StreamEngine, fgp_insertion_estimator
    from repro.baselines import TriestEstimator

    engine = StreamEngine(stream, batch_size=2048)
    engine.register(fgp_insertion_estimator(stream, patterns.triangle(),
                                            trials=500, rng=1, name="fgp"))
    engine.register(TriestEstimator(capacity=400, rng=2))
    report = engine.run()          # 3 stream passes total, not 3 + 1
    report["fgp"].estimate, report["triest"].estimate

Median amplification in 3 passes instead of 3K::

    from repro.engine import count_subgraphs_insertion_only_fused
    fused = count_subgraphs_insertion_only_fused(
        stream, patterns.triangle(), copies=32, trials=200, rng=7)
    fused.estimate                 # median of 32 independent copies

The same 3 passes, with the K copies sharded across workers — daemon
threads (zero-serialization handoff; the numpy kernels release the
GIL) or processes (batches published once through a shared-memory
ring).  CLI equivalent: ``python -m repro count --backend thread
--workers 4``::

    fused = count_subgraphs_insertion_only_fused(
        stream, patterns.triangle(), copies=32, trials=200, rng=7,
        mode="mirror", backend="thread", workers=4)
    # mirror-mode estimates are bit-identical to backend="serial"
    # for the same seeds, whatever the worker count or backend.

When the *stream* — not the copy count — is the bottleneck, the
scatter/merge driver (:mod:`repro.engine.sharded`) splits it into
hash-partitioned shards, feeds each shard an independent replica of
every estimator, and merges the linear sketch states before each pass
closes; for turnstile paths the result is bit-identical to the
unsharded mirror run at any shard count.  CLI equivalent: ``python -m
repro count --shards 4``::

    from repro.engine import count_subgraphs_turnstile_sharded
    from repro.streams.datasets import open_stream_shards

    shards = open_stream_shards("graph.reb", 4)
    fused = count_subgraphs_turnstile_sharded(
        shards, patterns.triangle(), copies=8, trials=64, rng=7)

Parallel execution of hand-registered estimators goes through
picklable specs (live estimators cannot cross a process boundary)::

    from repro.engine import EstimatorSpec, StreamEngine
    from repro.engine.parallel import build_triest

    engine = StreamEngine(stream, backend="process", workers=2)
    engine.register_spec(EstimatorSpec(
        name="triest", factory=build_triest,
        kwargs=dict(capacity=400, rng=2)))
    report = engine.run()
"""

from repro.engine.core import (
    DEFAULT_BATCH_SIZE,
    DecodedBatch,
    DecodedUpdate,
    EngineBackend,
    EngineReport,
    StreamEngine,
)
from repro.engine.estimators import (
    DoulionEstimator,
    ExactStreamEstimator,
    RoundAdaptiveEstimator,
    TriestEstimator,
    ers_clique_estimator,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
    fgp_two_pass_estimator,
)
from repro.engine.live import (
    CHECKPOINT_VERSION,
    DEFAULT_MAX_DELTAS,
    LiveEngine,
    UpdateJournal,
    checkpoint_manifest,
    median_estimate,
)
from repro.engine.fused import (
    FusedCountResult,
    FusionMode,
    count_subgraphs_insertion_only_fused,
    count_subgraphs_turnstile_fused,
    count_subgraphs_two_pass_fused,
)
from repro.engine.parallel import (
    EstimatorSpec,
    StreamHandle,
    run_parallel_engine,
    run_process_engine,
)
from repro.engine.sharded import (
    ShardedRunner,
    count_subgraphs_turnstile_sharded,
    sharded_stream_handle,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DecodedBatch",
    "DecodedUpdate",
    "EngineBackend",
    "EngineReport",
    "StreamEngine",
    "CHECKPOINT_VERSION",
    "DEFAULT_MAX_DELTAS",
    "LiveEngine",
    "UpdateJournal",
    "checkpoint_manifest",
    "median_estimate",
    "EstimatorSpec",
    "StreamHandle",
    "run_parallel_engine",
    "run_process_engine",
    "RoundAdaptiveEstimator",
    "fgp_insertion_estimator",
    "fgp_turnstile_estimator",
    "fgp_two_pass_estimator",
    "ers_clique_estimator",
    "TriestEstimator",
    "DoulionEstimator",
    "ExactStreamEstimator",
    "FusionMode",
    "FusedCountResult",
    "count_subgraphs_insertion_only_fused",
    "count_subgraphs_turnstile_fused",
    "count_subgraphs_two_pass_fused",
    "ShardedRunner",
    "count_subgraphs_turnstile_sharded",
    "sharded_stream_handle",
]
