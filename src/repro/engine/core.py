"""The fused multi-estimator stream engine.

The paper amplifies success probability by running many independent
estimator copies and aggregating (medians of Theorem 1/17 runs,
Algorithm 2's outer repetitions).  Driving each copy separately costs
O(copies × m) stream traffic; the engine restores the theorems'
O(m)-per-pass cost model by iterating each stream pass **once** and
dispatching the decoded updates, in configurable batches, to every
registered estimator.

An estimator is anything implementing the pass-callback protocol:

* ``name``                — unique registration key;
* ``wants_pass()``        — whether it needs another pass;
* ``begin_pass(i)``       — a fused pass is starting;
* ``ingest_batch(batch)`` — a chunk of decoded ``(u, v, delta, edge)``
  stream elements, in stream order;
* ``end_pass()``          — the pass is over;
* ``result()``            — the finished estimate.

Estimators with different pass counts co-exist: the engine keeps
iterating while *any* estimator wants a pass, and finished estimators
simply stop receiving batches.  ``EdgeStream.passes_used`` therefore
ends at ``max_i passes(estimator_i)`` — K fused copies of a 3-pass
counter consume exactly 3 passes, not 3K (asserted in
``tests/test_engine_passes.py``).

Decoding happens once per pass: each ``Update`` object is unpacked to
a plain ``(u, v, delta, edge)`` tuple before dispatch, so no estimator
pays the dataclass attribute/property cost — with K registrations the
historical per-copy decode is amortized K ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.errors import EngineError
from repro.streams.stream import (
    DEFAULT_CHUNK_SIZE,
    DecodedUpdate,
    EdgeStream,
    decoded_chunks,
)

#: What the engine dispatches to estimators: a run of decoded elements.
DecodedBatch = Sequence[DecodedUpdate]

#: Default updates per dispatched batch — the same knob as the
#: sequential paths' decode granularity (results are invariant to it;
#: it only trades loop overhead against peak decoded-batch memory).
DEFAULT_BATCH_SIZE = DEFAULT_CHUNK_SIZE


@dataclass
class EngineReport:
    """Outcome of one :meth:`StreamEngine.run`."""

    results: Dict[str, Any]
    passes: int
    elements: int
    dispatches: int
    batch_size: int

    def __getitem__(self, name: str) -> Any:
        return self.results[name]


class StreamEngine:
    """Fused single-iteration executor for K independent estimators.

    Parameters
    ----------
    stream:
        The :class:`~repro.streams.stream.EdgeStream` every estimator
        reads.  The engine owns the iteration: one ``stream.updates()``
        call per fused pass, however many estimators are registered.
    batch_size:
        Updates per dispatched chunk.  Results are invariant to the
        batch size (asserted in the equivalence tests); it only trades
        Python loop overhead against peak decoded-batch memory.
    reset_pass_count:
        Whether :meth:`run` zeroes the stream's pass counter first, so
        ``stream.passes_used`` afterwards reads the fused pass count.
    """

    def __init__(
        self,
        stream: EdgeStream,
        batch_size: int = DEFAULT_BATCH_SIZE,
        reset_pass_count: bool = True,
        max_passes: int = 0,
    ) -> None:
        if batch_size < 1:
            raise EngineError(f"batch_size must be >= 1, got {batch_size}")
        if max_passes < 0:
            raise EngineError(f"max_passes must be >= 0, got {max_passes}")
        self._stream = stream
        self._batch_size = batch_size
        self._reset_pass_count = reset_pass_count
        self._max_passes = max_passes
        self._estimators: List[Any] = []
        self._names: Dict[str, Any] = {}
        self._ran = False

    @property
    def stream(self) -> EdgeStream:
        return self._stream

    @property
    def estimators(self) -> List[Any]:
        """The registered estimators, in registration order."""
        return list(self._estimators)

    def register(self, estimator) -> Any:
        """Add *estimator* to the fused run; returns it for chaining."""
        name = getattr(estimator, "name", None)
        if not name:
            raise EngineError("estimators must expose a non-empty .name")
        if name in self._names:
            raise EngineError(f"estimator name {name!r} already registered")
        if self._ran:
            raise EngineError("cannot register estimators after run()")
        self._names[name] = estimator
        self._estimators.append(estimator)
        return estimator

    def register_all(self, estimators) -> List[Any]:
        """Register every estimator of an iterable, in order."""
        return [self.register(estimator) for estimator in estimators]

    def run(self) -> EngineReport:
        """Drive every registered estimator to completion.

        Iterates the stream once per fused pass and feeds each decoded
        batch to every estimator that is still consuming passes.
        """
        if not self._estimators:
            raise EngineError("no estimators registered")
        if self._ran:
            raise EngineError("engine already ran; build a new one per run")
        self._ran = True
        if self._reset_pass_count:
            self._stream.reset_pass_count()

        passes = 0
        elements = 0
        dispatches = 0
        while True:
            active = [e for e in self._estimators if e.wants_pass()]
            if not active:
                break
            if self._max_passes and passes >= self._max_passes:
                names = ", ".join(e.name for e in active)
                raise EngineError(
                    f"estimators still want passes after max_passes="
                    f"{self._max_passes}: {names}"
                )
            for estimator in active:
                estimator.begin_pass(passes)
            for batch in decoded_chunks(self._stream.updates(), self._batch_size):
                elements += len(batch)
                for estimator in active:
                    estimator.ingest_batch(batch)
                    dispatches += 1
            for estimator in active:
                estimator.end_pass()
            passes += 1

        return EngineReport(
            results={e.name: e.result() for e in self._estimators},
            passes=passes,
            elements=elements,
            dispatches=dispatches,
            batch_size=self._batch_size,
        )
