"""The fused multi-estimator stream engine.

The paper amplifies success probability by running many independent
estimator copies and aggregating (medians of Theorem 1/17 runs,
Algorithm 2's outer repetitions).  Driving each copy separately costs
O(copies × m) stream traffic; the engine restores the theorems'
O(m)-per-pass cost model by iterating each stream pass **once** and
dispatching the decoded updates, in configurable batches, to every
registered estimator.

An estimator is anything implementing the pass-callback protocol:

* ``name``                — unique registration key;
* ``wants_pass()``        — whether it needs another pass;
* ``begin_pass(i)``       — a fused pass is starting;
* ``ingest_batch(batch)`` — a chunk of decoded ``(u, v, delta, edge)``
  stream elements, in stream order;
* ``end_pass()``          — the pass is over;
* ``result()``            — the finished estimate.

The library's estimators additionally implement ``passes_consumed``
(how many passes they have already been driven through — registration
rejects non-fresh estimators, whose pass accounting would silently go
stale) and the checkpoint protocol ``state_dict()`` /
``load_state_dict()`` (see :mod:`repro.engine.live` and
:mod:`repro.utils.checkpoint`); custom estimators need them only to
run under the live engine.

Estimators with different pass counts co-exist: the engine keeps
iterating while *any* estimator wants a pass, and finished estimators
simply stop receiving batches.  ``EdgeStream.passes_used`` therefore
ends at ``max_i passes(estimator_i)`` — K fused copies of a 3-pass
counter consume exactly 3 passes, not 3K (asserted in
``tests/test_engine_passes.py``).

Decoding is shared across estimators: each pass is read as columnar
:class:`~repro.streams.batch.EdgeBatch` objects (numpy
``u``/``v``/``delta`` columns plus lazily shared decoded views), so
however many estimators consume a fused pass, the per-element decode
runs once.  Whether *later passes* also reuse the decoded batches is
the stream's batch-cache policy's call (:mod:`repro.streams.cache`,
engine knob ``cache=``): ``"all"`` retains everything (the in-memory
default), ``"lru:<bytes>"`` a bounded working set (disk streams
bigger than RAM), ``"none"`` nothing.  ``columnar=False`` restores
the historical per-pass tuple decode as a reference path; results
are identical across all of these.

The engine runs on one of three execution backends
(:class:`EngineBackend`): ``serial`` dispatches in-process; ``thread``
and ``process`` shard the registered estimator *specs* across a worker
pool while this process keeps the single stream iteration and
publishes the decoded batches — by reference to threads, through a
shared-memory batch ring to processes (:mod:`repro.engine.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import EngineError, StreamError
from repro.streams.stream import (
    DEFAULT_CHUNK_SIZE,
    DecodedUpdate,
    EdgeStream,
    check_batch_size,
    pass_batches,
)

#: What the engine dispatches to estimators: a run of decoded elements —
#: a columnar :class:`~repro.streams.batch.EdgeBatch` on the default
#: pipeline, or a plain list of tuples on the scalar reference path.
DecodedBatch = Sequence[DecodedUpdate]

#: Default updates per dispatched batch — the same knob as the
#: sequential paths' decode granularity (results are invariant to it;
#: it only trades loop overhead against peak decoded-batch memory).
DEFAULT_BATCH_SIZE = DEFAULT_CHUNK_SIZE


def apply_cache_policy(stream, cache) -> None:
    """Apply a batch-cache spec to *stream* if one was requested.

    ``None`` leaves the stream's own policy in place.  Streams without
    a policy surface (:class:`~repro.engine.parallel.StreamHandle`,
    bare iterables on the scalar path) only reject a non-``None``
    request.
    """
    if cache is None:
        return
    if not hasattr(stream, "set_cache_policy"):
        raise EngineError(
            f"stream {type(stream).__name__} does not support cache policies"
        )
    stream.set_cache_policy(cache)


@dataclass
class EngineReport:
    """Outcome of one :meth:`StreamEngine.run`.

    ``workers`` is 1 for the serial backend; for the process backend it
    records the pool size, and ``dispatches`` counts batch broadcasts
    (batches × active workers) rather than batches × active estimators.

    ``degraded`` records that the run lost workers under
    ``on_worker_loss="degrade"`` and finished on the survivors:
    ``results`` then holds only the surviving estimators and ``lost``
    names the shards that died with their workers.  Each surviving
    estimate is still bit-identical to a run configured without the
    lost copies.
    """

    results: Dict[str, Any]
    passes: int
    elements: int
    dispatches: int
    batch_size: int
    workers: int = 1
    degraded: bool = False
    lost: tuple = ()
    #: Wall-clock seconds spent inside merge barriers (scatter/merge
    #: runs only — see :mod:`repro.engine.sharded`; 0.0 elsewhere).
    merge_seconds: float = 0.0

    def __getitem__(self, name: str) -> Any:
        return self.results[name]


class EngineBackend:
    """Where the registered estimators execute.

    ``SERIAL``
        All estimators run in this process, inside the engine's own
        dispatch loop — the default, and the only backend that accepts
        live (pre-built) estimator objects.
    ``THREAD``
        Estimators are sharded across a pool of daemon threads running
        the same worker loop as the process backend
        (:mod:`repro.engine.parallel`).  Batches are handed over by
        reference — zero serialization — and the columnar numpy
        kernels release the GIL, so thread workers overlap on real
        work.  Registration goes through specs (uniform with the
        process backend, and what the live engine's checkpoints
        require).
    ``PROCESS``
        Estimators are sharded across a multiprocessing worker pool.
        Registration goes through picklable
        :class:`~repro.engine.parallel.EstimatorSpec` recipes (live
        estimators hold generator frames and cannot cross a process
        boundary); the driver publishes each decoded batch **once**
        through a shared-memory ring and merges the per-shard results.
    """

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"

    _ALL = (SERIAL, THREAD, PROCESS)


class StreamEngine:
    """Fused single-iteration executor for K independent estimators.

    Parameters
    ----------
    stream:
        The :class:`~repro.streams.stream.EdgeStream` every estimator
        reads.  The engine owns the iteration: one ``stream.updates()``
        call per fused pass, however many estimators are registered.
    batch_size:
        Updates per dispatched chunk.  Results are invariant to the
        batch size (asserted in the equivalence tests); it only trades
        Python loop overhead against peak decoded-batch memory.
    reset_pass_count:
        Whether :meth:`run` zeroes the stream's pass counter first, so
        ``stream.passes_used`` afterwards reads the fused pass count.
    backend:
        :data:`EngineBackend.SERIAL` (default) runs everything in-process;
        :data:`EngineBackend.THREAD` / :data:`EngineBackend.PROCESS`
        shard the registered specs across a worker pool (see
        :class:`EngineBackend` and :mod:`repro.engine.parallel`).
    workers:
        Parallel-backend pool size; ``None`` means one worker per CPU,
        capped at the number of registered specs.  Ignored by the
        serial backend.
    start_method:
        Multiprocessing start method for the process backend (``None``:
        ``fork`` where available, else ``spawn``).
    columnar:
        Whether passes are dispatched as columnar
        :class:`~repro.streams.batch.EdgeBatch` objects (the default)
        or as the scalar tuple lists of the historical pipeline.
        Results are identical either way — the flag exists so the
        benchmarks and equivalence tests can pin the scalar reference
        path.
    cache:
        Batch-cache policy applied to the stream before the run — any
        spec of :func:`~repro.streams.cache.resolve_cache_policy`
        (``"all"``, ``"lru"``/``"lru:<bytes>"``, ``"none"``, or a
        policy instance).  ``None`` (default) leaves the stream's own
        policy untouched.  Results are bit-identical across policies;
        only decode work and resident memory change.
    on_worker_loss:
        Parallel backends only: ``"abort"`` (default) raises
        :class:`~repro.errors.WorkerLossError` when a worker dies
        silently or wedges; ``"degrade"`` finishes the run on the
        surviving workers and reports ``degraded=True`` with the lost
        estimator names (see :func:`~repro.engine.parallel.run_parallel_engine`).
    fault_plan:
        A :class:`~repro.faults.FaultPlan` shipped to every parallel
        worker — the deterministic drill harness.  ``None`` (default)
        disables injection.
    """

    def __init__(
        self,
        stream: EdgeStream,
        batch_size: int = DEFAULT_BATCH_SIZE,
        reset_pass_count: bool = True,
        max_passes: int = 0,
        backend: str = EngineBackend.SERIAL,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        columnar: bool = True,
        cache=None,
        on_worker_loss: str = "abort",
        fault_plan=None,
    ) -> None:
        try:
            batch_size = check_batch_size(batch_size)
        except StreamError as error:
            raise EngineError(str(error)) from error
        if max_passes < 0:
            raise EngineError(f"max_passes must be >= 0, got {max_passes}")
        if backend not in EngineBackend._ALL:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {EngineBackend._ALL}"
            )
        if on_worker_loss not in ("abort", "degrade"):
            raise EngineError(
                f"on_worker_loss must be 'abort' or 'degrade', "
                f"got {on_worker_loss!r}"
            )
        self._stream = stream
        self._batch_size = batch_size
        self._reset_pass_count = reset_pass_count
        self._max_passes = max_passes
        self._backend = backend
        self._workers = workers
        self._start_method = start_method
        self._columnar = columnar
        self._cache = cache
        self._on_worker_loss = on_worker_loss
        self._fault_plan = fault_plan
        self._estimators: List[Any] = []
        self._specs: List[Any] = []
        self._names: Dict[str, Any] = {}
        self._ran = False
        self._started = False

    @property
    def stream(self) -> EdgeStream:
        return self._stream

    @property
    def estimators(self) -> List[Any]:
        """The registered estimators, in registration order."""
        return list(self._estimators)

    @property
    def backend(self) -> str:
        """The configured :class:`EngineBackend` value."""
        return self._backend

    def register(self, estimator) -> Any:
        """Add a live *estimator* to the fused run; returns it for chaining.

        Serial backend only: a live estimator (generator frames, open
        oracle state) cannot be shipped to a worker process — register
        a picklable recipe with :meth:`register_spec` instead.
        """
        if self._backend != EngineBackend.SERIAL:
            raise EngineError(
                "live estimators cannot be shipped to a worker pool; use "
                "register_spec() with the thread/process backends"
            )
        name = getattr(estimator, "name", None)
        if not name:
            raise EngineError("estimators must expose a non-empty .name")
        if name in self._names:
            raise EngineError(f"estimator name {name!r} already registered")
        self._check_registration_open()
        consumed = getattr(estimator, "passes_consumed", 0)
        if consumed:
            raise EngineError(
                f"estimator {name!r} has already consumed {consumed} stream "
                "pass(es); registering it would silently corrupt the fused "
                "run's pass accounting — build a fresh estimator instead"
            )
        self._names[name] = estimator
        self._estimators.append(estimator)
        return estimator

    def _check_registration_open(self) -> None:
        """Registration closes the moment a run starts (or finished)."""
        if self._started and not self._ran:
            raise EngineError(
                "cannot register estimators while a run is in progress: the "
                "current pass has already been partially dispatched, so a "
                "late estimator's pass accounting would be silently stale"
            )
        if self._ran:
            raise EngineError("cannot register estimators after run()")

    def register_all(self, estimators) -> List[Any]:
        """Register every estimator of an iterable, in order."""
        return [self.register(estimator) for estimator in estimators]

    def register_spec(self, spec) -> Any:
        """Register an :class:`~repro.engine.parallel.EstimatorSpec`.

        Works with every backend: the serial backend builds the
        estimator immediately against the real stream, the parallel
        backends defer construction to the worker that receives the
        shard.  Returns the spec for chaining.
        """
        if self._backend == EngineBackend.SERIAL:
            self.register(spec.build(self._stream))
            return spec
        if not spec.name:
            raise EngineError("estimator specs must carry a non-empty .name")
        if spec.name in self._names:
            raise EngineError(f"estimator name {spec.name!r} already registered")
        self._check_registration_open()
        self._names[spec.name] = spec
        self._specs.append(spec)
        return spec

    def run(self) -> EngineReport:
        """Drive every registered estimator to completion.

        Serial backend: iterates the stream once per fused pass and
        feeds each decoded batch to every estimator that is still
        consuming passes.  Thread/process backends: delegate the same
        loop to :func:`repro.engine.parallel.run_parallel_engine`,
        publishing each batch to the worker pool.
        """
        if self._started or self._ran:
            raise EngineError("engine already ran; build a new one per run")
        if self._backend != EngineBackend.SERIAL:
            if not self._specs:
                raise EngineError("no estimator specs registered")
            self._started = True
            self._ran = True
            from repro.engine.parallel import run_parallel_engine

            return run_parallel_engine(
                self._stream,
                self._specs,
                backend=self._backend,
                workers=self._workers,
                batch_size=self._batch_size,
                start_method=self._start_method,
                reset_pass_count=self._reset_pass_count,
                max_passes=self._max_passes,
                columnar=self._columnar,
                cache=self._cache,
                on_worker_loss=self._on_worker_loss,
                fault_plan=self._fault_plan,
            )
        if not self._estimators:
            raise EngineError("no estimators registered")
        self._started = True
        apply_cache_policy(self._stream, self._cache)
        if self._reset_pass_count:
            self._stream.reset_pass_count()

        passes = 0
        elements = 0
        dispatches = 0
        while True:
            active = [e for e in self._estimators if e.wants_pass()]
            if not active:
                break
            if self._max_passes and passes >= self._max_passes:
                names = ", ".join(e.name for e in active)
                raise EngineError(
                    f"estimators still want passes after max_passes="
                    f"{self._max_passes}: {names}"
                )
            for estimator in active:
                estimator.begin_pass(passes)
            for batch in pass_batches(self._stream, self._batch_size, self._columnar):
                elements += len(batch)
                for estimator in active:
                    estimator.ingest_batch(batch)
                    dispatches += 1
            for estimator in active:
                estimator.end_pass()
            passes += 1

        self._ran = True
        return EngineReport(
            results={e.name: e.result() for e in self._estimators},
            passes=passes,
            elements=elements,
            dispatches=dispatches,
            batch_size=self._batch_size,
        )
