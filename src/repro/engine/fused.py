"""Fused median-of-K counting — the paper's amplification at O(m) cost.

Chernoff gives each Theorem 1/17 run a constant success probability;
the standard amplification runs K independent copies and takes the
median of their estimates, driving the failure probability to 2^-Θ(K).
Run naively that costs K × 3 stream passes.  These entry points
register all K copies with one :class:`~repro.engine.core.StreamEngine`
so the whole ensemble consumes **exactly 3 passes** (2 for the 2-pass
counter), in one of two fusion modes:

``FusionMode.MIRROR``
    Every copy keeps its own oracle (its own reservoir banks /
    ℓ0-sketch banks), and only the stream iteration is shared.  A
    mirror copy seeded with rng R is **bit-identical** to the one-shot
    counter called with rng R — the mode the golden equivalence tests
    pin down.

``FusionMode.SHARED`` (default)
    All copies' round-ℓ query batches merge into a *single* oracle
    pass-state.  Each f1/f3 query still owns a private reservoir slot
    or ℓ0-sampler — the joint distribution over slots is exactly that
    of independent samplers (see ``repro.sketch.reservoir``) — while
    deterministic aggregates (degree counters, adjacency flags,
    arrival counters) are computed once instead of K times, and the
    skip-ahead bank's amortization spreads over all K·k edge queries.
    Copies remain independent in distribution, but the per-element
    work barely grows with K: this is the ≥2× (in practice ~K×)
    speedup mode benchmarked in ``benchmarks/bench_throughput.py``.

Orthogonally to the fusion mode, every entry point takes a
``backend`` switch (:class:`~repro.engine.core.EngineBackend`):

``backend="serial"`` (default)
    All copies execute in this process.

``backend="thread"`` / ``backend="process"``
    The copies are sharded across a pool of ``workers`` daemon threads
    or processes (:mod:`repro.engine.parallel`); the driver reads the
    stream once per pass and publishes decoded batches — by reference
    to threads, through a shared-memory ring to processes.
    Mirror-mode estimates are bit-identical to the serial backend for
    the same seeds, independent of the worker count *and* of which
    parallel backend ran them; shared-mode runs merge each *shard*
    into one oracle (deterministic given ``(rng, workers)``, identical
    between the two parallel backends for the same pool size).  CLI:
    ``repro count --backend thread|process --workers N``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.core import DEFAULT_BATCH_SIZE, EngineBackend, StreamEngine
from repro.engine.estimators import (
    RoundAdaptiveEstimator,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
    fgp_two_pass_estimator,
)
from repro.engine.parallel import EstimatorSpec, resolve_workers, shard_indices
from repro.errors import EngineError, EstimationError
from repro.estimate.concentration import ParamMode, relative_error
from repro.estimate.result import EstimateResult
from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import fgp_success_estimate, resolve_trials
from repro.streaming.two_pass import require_star_decomposable
from repro.streams.stream import EdgeStream
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle
from repro.utils.rng import RandomSource, derive_rng, derive_seed, ensure_rng

__all__ = [
    "FusionMode",
    "FusedCountResult",
    "count_subgraphs_insertion_only_fused",
    "count_subgraphs_turnstile_fused",
    "count_subgraphs_two_pass_fused",
]


class FusionMode:
    """How K fused copies share oracle state (see module docstring)."""

    MIRROR = "mirror"
    SHARED = "shared"

    _ALL = (MIRROR, SHARED)


@dataclass
class FusedCountResult:
    """Median-amplified estimate from K fused estimator copies."""

    algorithm: str
    pattern: str
    estimate: float
    copies: List[EstimateResult]
    passes: int
    mode: str
    backend: str = "serial"
    m: int = 0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def num_copies(self) -> int:
        return len(self.copies)

    @property
    def estimates(self) -> List[float]:
        """The per-copy estimates the median is taken over."""
        return [copy.estimate for copy in self.copies]

    def error_vs(self, truth: float) -> float:
        """Relative error of the median against an exact count."""
        return relative_error(self.estimate, truth)

    def within(self, truth: float, epsilon: float) -> bool:
        """Whether the median is a (1±ε)-approximation of *truth*."""
        return self.error_vs(truth) <= epsilon

    def summary(self, truth: Optional[float] = None) -> str:
        parts = [
            f"{self.algorithm}[{self.pattern}]",
            f"median={self.estimate:.1f}",
            f"copies={self.num_copies}",
            f"passes={self.passes}",
            f"mode={self.mode}",
            f"backend={self.backend}",
        ]
        if truth is not None:
            parts.append(f"err={self.error_vs(truth):.3f}")
        return " ".join(parts)


def _check_fused_args(copies: int, mode: str, copy_rngs, backend: str) -> None:
    if copies < 1:
        raise EstimationError(f"copies must be >= 1, got {copies}")
    if mode not in FusionMode._ALL:
        raise EngineError(f"unknown fusion mode {mode!r}; expected one of {FusionMode._ALL}")
    if backend not in EngineBackend._ALL:
        raise EngineError(
            f"unknown backend {backend!r}; expected one of {EngineBackend._ALL}"
        )
    if copy_rngs is not None and len(copy_rngs) != copies:
        raise EstimationError(
            f"copy_rngs carries {len(copy_rngs)} entries for {copies} copies"
        )


def _run_mirror(
    stream: EdgeStream,
    copies: int,
    batch_size: int,
    copy_rngs: Sequence,
    factory: Callable[[RandomSource, str], RoundAdaptiveEstimator],
    spec_factory: Callable[[RandomSource, str], EstimatorSpec],
    backend: str,
    workers,
    start_method,
    columnar: bool,
    cache,
) -> tuple:
    """Register one fully independent estimator per copy and run fused.

    With the parallel backends, registration goes through picklable
    specs: each worker rebuilds its shard of copies from ``(pattern,
    trials, rng)`` and the copies' full independence makes the result
    identical to the serial backend for the same ``copy_rngs`` —
    whatever the worker count or pool flavour.
    """
    engine = StreamEngine(
        stream,
        batch_size=batch_size,
        backend=backend,
        workers=workers,
        start_method=start_method,
        columnar=columnar,
        cache=cache,
    )
    names = [f"copy-{index}" for index in range(copies)]
    for index, name in enumerate(names):
        if backend != EngineBackend.SERIAL:
            engine.register_spec(spec_factory(copy_rngs[index], name))
        else:
            engine.register(factory(copy_rngs[index], name))
    report = engine.run()
    return [report.results[name] for name in names], report


def _run_shared(
    stream: EdgeStream,
    copies: int,
    trials: int,
    batch_size: int,
    oracle,
    make_generator: Callable[[int, int], object],
    finalize_copies: Callable,
    columnar: bool,
    cache,
) -> tuple:
    """Merge all copies' generators into one oracle and run fused."""
    generators = [
        make_generator(copy, trial)
        for copy in range(copies)
        for trial in range(trials)
    ]
    estimator = RoundAdaptiveEstimator("fused", generators, oracle, finalize_copies)
    engine = StreamEngine(stream, batch_size=batch_size, columnar=columnar, cache=cache)
    engine.register(estimator)
    report = engine.run()
    return report.results["fused"], report


def _shared_fgp_finalize(
    stream,
    pattern: Pattern,
    copy_indices: Sequence[int],
    trials: int,
    oracle,
    algorithm: str,
) -> Callable:
    """Slice a merged run's outputs into per-copy EstimateResults.

    The merged oracle meters its whole ensemble (all copies of a serial
    shared run, or one worker's shard of them); each copy's
    ``space_words`` is its share (ceil(peak/len(copy_indices)) —
    queries are uniform across copies), so summing over copies matches
    the ensemble instead of overcounting K-fold.  ``copy_indices``
    carries the copies' *global* indices so the ``fused_copy``
    diagnostic survives sharding; the ensemble's metered total rides
    along in ``details["shard_space_words"]``.
    """

    def finalize(run) -> List[EstimateResult]:
        m = stream.net_edge_count
        rho = pattern.rho()
        ensemble_space = oracle.space.peak_words
        per_copy_space = -(-ensemble_space // len(copy_indices))
        results = []
        for slot, copy in enumerate(copy_indices):
            outputs = run.outputs[slot * trials : (slot + 1) * trials]
            successes, estimate = fgp_success_estimate(outputs, trials, m, rho)
            results.append(
                EstimateResult(
                    algorithm=algorithm,
                    pattern=pattern.name,
                    estimate=estimate,
                    passes=run.rounds,
                    space_words=per_copy_space,
                    trials=trials,
                    successes=successes,
                    m=m,
                    details={
                        "rho": rho,
                        "success_rate": successes / trials,
                        "fused_copy": float(copy),
                        "shard_space_words": float(ensemble_space),
                    },
                )
            )
        return results

    return finalize


def build_shared_fgp_shard(
    stream,
    kind: str,
    algorithm: str,
    pattern: Pattern,
    trials: int,
    copy_indices: Sequence[int],
    trial_seeds: Sequence[Sequence],
    oracle_seed,
    name: str,
    sampler_mode: str,
    sampler_kwargs: Dict,
    sampler_repetitions: int = 8,
) -> RoundAdaptiveEstimator:
    """Spec factory: one worker's shard of a shared-mode fused run.

    Rebuilds, inside the worker, what :func:`_run_shared` builds in the
    driver for the serial backend — one merged oracle plus
    ``len(copy_indices) × trials`` sampler generators — except the
    oracle spans only this shard's copies.  ``trial_seeds[j][t]`` seeds
    copy ``copy_indices[j]``'s trial *t* (ints from
    :func:`~repro.utils.rng.derive_seed`, or any ``RandomSource``); the
    driver derives them in global copy-major order *before* any
    shard-dependent derivation, so every copy consumes the same sampler
    randomness however the copies are sharded (only the per-shard
    oracle randomness depends on the worker count).
    ``sampler_mode``/``sampler_kwargs`` are forwarded verbatim from the
    fused entry point, so the serial and sharded shared paths cannot
    drift apart; ``kind`` only selects the oracle class
    (``"turnstile"`` vs the insertion oracle).
    """
    if kind == "turnstile":
        oracle = TurnstileStreamOracle(
            stream, oracle_seed, sampler_repetitions=sampler_repetitions
        )
    elif kind in ("insertion", "two_pass"):
        oracle = InsertionStreamOracle(stream, oracle_seed)
    else:
        raise EngineError(f"unknown shared-shard kind {kind!r}")
    generators = [
        subgraph_sampler_rounds(pattern, rng=seed, mode=sampler_mode, **sampler_kwargs)
        for copy_trial_seeds in trial_seeds
        for seed in copy_trial_seeds
    ]
    finalize = _shared_fgp_finalize(
        stream, pattern, list(copy_indices), trials, oracle, algorithm
    )
    return RoundAdaptiveEstimator(name, generators, oracle, finalize)


def _run_shared_sharded(
    stream: EdgeStream,
    copies: int,
    trials: int,
    batch_size: int,
    backend: str,
    workers,
    start_method,
    master,
    kind: str,
    algorithm: str,
    pattern: Pattern,
    sampler_mode: str,
    sampler_kwargs: Dict,
    sampler_repetitions: int,
    columnar: bool,
    cache,
) -> tuple:
    """Shard a shared-mode run across a worker pool (thread or process).

    Each worker owns one merged oracle for its contiguous shard of
    copies, so deterministic aggregates are computed once per *shard*
    instead of once per copy — W oracles total instead of K.  Copies
    stay independent in distribution; the estimates are a deterministic
    function of ``(rng, copies, trials, workers)`` — identical between
    the thread and process backends, since all randomness is derived
    driver-side before sharding — but, unlike mirror mode, not
    bit-identical to the serial shared run, whose single oracle spans
    all K copies.
    """
    pool = resolve_workers(workers, copies)
    shards = shard_indices(copies, pool)
    # Sampler seeds first, in global copy-major order: their derivation
    # consumes master bits worker-count-independently, so only the
    # shard oracles (derived below) vary with the pool size.  Plain
    # ints ship to the workers instead of pickled generator states.
    trial_seeds = [
        [derive_seed(master, f"copy-{copy}-trial-{trial}") for trial in range(trials)]
        for copy in range(copies)
    ]
    oracle_seeds = [
        derive_seed(master, f"oracle-shard-{shard}") for shard in range(len(shards))
    ]
    engine = StreamEngine(
        stream,
        batch_size=batch_size,
        backend=backend,
        workers=pool,
        start_method=start_method,
        columnar=columnar,
        cache=cache,
    )
    for shard, indices in enumerate(shards):
        engine.register_spec(
            EstimatorSpec(
                name=f"shard-{shard}",
                factory=build_shared_fgp_shard,
                kwargs=dict(
                    kind=kind,
                    algorithm=algorithm,
                    pattern=pattern,
                    trials=trials,
                    copy_indices=indices,
                    trial_seeds=[trial_seeds[copy] for copy in indices],
                    oracle_seed=oracle_seeds[shard],
                    name=f"shard-{shard}",
                    sampler_mode=sampler_mode,
                    sampler_kwargs=sampler_kwargs,
                    sampler_repetitions=sampler_repetitions,
                ),
            )
        )
    report = engine.run()
    copy_results = [
        result
        for shard in range(len(shards))
        for result in report.results[f"shard-{shard}"]
    ]
    ensemble_space = sum(
        int(report.results[f"shard-{shard}"][0].details["shard_space_words"])
        for shard in range(len(shards))
    )
    return copy_results, report, ensemble_space


def _fused_fgp_count(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int,
    epsilon: float,
    lower_bound,
    trials,
    rng,
    copy_rngs,
    param_mode: str,
    mode: str,
    batch_size: int,
    backend: str,
    workers,
    start_method,
    kind: str,
    algorithm: str,
    mirror_factory: Callable,
    mirror_spec_factory: Callable,
    shared_oracle_factory: Callable,
    sampler_mode: str,
    sampler_kwargs: Dict,
    sampler_repetitions: int = 8,
    columnar: bool = True,
    cache=None,
) -> FusedCountResult:
    """Common driver behind the three fused entry points."""
    _check_fused_args(copies, mode, copy_rngs, backend)
    master = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)

    ensemble_space = None
    if mode == FusionMode.MIRROR:
        if copy_rngs is None:
            # Derive *seeds*, not generators: Random(derive_seed(...))
            # equals derive_rng(...) bit for bit, and an int crosses the
            # process-backend boundary as ~30 bytes instead of a
            # ~2.5 KB pickled Mersenne state.
            copy_rngs = [derive_seed(master, f"copy-{index}") for index in range(copies)]
        # Every copy gets the already-resolved budget k, so the
        # reported trials_per_copy cannot drift from what the copies
        # actually ran (and resolve_trials runs once, not K+1 times).
        copy_results, report = _run_mirror(
            stream,
            copies,
            batch_size,
            copy_rngs,
            lambda copy_rng, name: mirror_factory(copy_rng, name, k),
            lambda copy_rng, name: mirror_spec_factory(copy_rng, name, k),
            backend,
            workers,
            start_method,
            columnar,
            cache,
        )
    elif backend != EngineBackend.SERIAL:
        if copy_rngs is not None:
            raise EngineError("copy_rngs is a mirror-mode parameter; shared mode derives from rng")
        copy_results, report, ensemble_space = _run_shared_sharded(
            stream,
            copies,
            k,
            batch_size,
            backend,
            workers,
            start_method,
            master,
            kind,
            algorithm,
            pattern,
            sampler_mode,
            sampler_kwargs,
            sampler_repetitions,
            columnar,
            cache,
        )
    else:
        if copy_rngs is not None:
            raise EngineError("copy_rngs is a mirror-mode parameter; shared mode derives from rng")
        oracle = shared_oracle_factory(derive_rng(master, "oracle"))

        def make_generator(copy: int, trial: int):
            return subgraph_sampler_rounds(
                pattern,
                rng=derive_rng(master, f"copy-{copy}-trial-{trial}"),
                mode=sampler_mode,
                **sampler_kwargs,
            )

        copy_results, report = _run_shared(
            stream,
            copies,
            k,
            batch_size,
            oracle,
            make_generator,
            _shared_fgp_finalize(stream, pattern, range(copies), k, oracle, algorithm),
            columnar,
            cache,
        )
        ensemble_space = oracle.space.peak_words

    median = statistics.median(result.estimate for result in copy_results)
    details = {
        "trials_per_copy": float(k),
        "elements": float(report.elements),
        "batch_size": float(report.batch_size),
        "workers": float(report.workers),
    }
    if ensemble_space is not None:
        details["ensemble_space_words"] = float(ensemble_space)
    return FusedCountResult(
        algorithm=algorithm,
        pattern=pattern.name,
        estimate=median,
        copies=copy_results,
        passes=report.passes,
        mode=mode,
        backend=backend,
        m=stream.net_edge_count,
        details=details,
    )


def count_subgraphs_insertion_only_fused(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    mode: str = FusionMode.SHARED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    backend: str = EngineBackend.SERIAL,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    columnar: bool = True,
    cache=None,
) -> FusedCountResult:
    """Median of K fused Theorem-17 runs in exactly 3 insertion passes.

    ``trials``/``epsilon``/``lower_bound`` size each copy exactly as in
    :func:`~repro.streaming.three_pass.count_subgraphs_insertion_only`.
    In mirror mode, ``copy_rngs`` (one seed or generator per copy)
    makes copy i bit-identical to the one-shot counter called with the
    same rng.

    ``backend="thread"`` / ``backend="process"`` shard the K copies
    across *workers* threads or processes (CLI: ``repro count
    --backend thread --workers N``).  With ``mode="mirror"`` the
    estimates equal the serial backend's for the same seeds,
    independently of the worker count and pool flavour; with
    ``mode="shared"`` each worker merges its shard of copies into one
    oracle (fast, deterministic given ``(rng, workers)`` and identical
    across the two parallel backends, but a different bit-stream than
    the serial shared run).
    """

    def mirror_factory(copy_rng, name, resolved_trials):
        return fgp_insertion_estimator(
            stream,
            pattern,
            trials=resolved_trials,
            rng=copy_rng,
            name=name,
        )

    def mirror_spec_factory(copy_rng, name, resolved_trials):
        return EstimatorSpec(
            name=name,
            factory=fgp_insertion_estimator,
            kwargs=dict(pattern=pattern, trials=resolved_trials, rng=copy_rng, name=name),
        )

    return _fused_fgp_count(
        stream,
        pattern,
        copies,
        epsilon,
        lower_bound,
        trials,
        rng,
        copy_rngs,
        param_mode,
        mode,
        batch_size,
        backend,
        workers,
        start_method,
        "insertion",
        "fgp-3pass-insertion",
        mirror_factory,
        mirror_spec_factory,
        lambda oracle_rng: InsertionStreamOracle(stream, oracle_rng),
        SamplerMode.AUGMENTED,
        {},
        columnar=columnar,
        cache=cache,
    )


def count_subgraphs_turnstile_fused(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    sampler_repetitions: int = 8,
    mode: str = FusionMode.SHARED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    backend: str = EngineBackend.SERIAL,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    columnar: bool = True,
    cache=None,
) -> FusedCountResult:
    """Median of K fused Theorem-1 runs in exactly 3 turnstile passes.

    Works on streams with deletions; each copy's ℓ0-sketch bank is
    private in both modes (sketches hang off individual queries), so
    the copies stay independent.  Backend semantics as in
    :func:`count_subgraphs_insertion_only_fused`.
    """

    def mirror_factory(copy_rng, name, resolved_trials):
        return fgp_turnstile_estimator(
            stream,
            pattern,
            trials=resolved_trials,
            rng=copy_rng,
            sampler_repetitions=sampler_repetitions,
            name=name,
        )

    def mirror_spec_factory(copy_rng, name, resolved_trials):
        return EstimatorSpec(
            name=name,
            factory=fgp_turnstile_estimator,
            kwargs=dict(
                pattern=pattern,
                trials=resolved_trials,
                rng=copy_rng,
                sampler_repetitions=sampler_repetitions,
                name=name,
            ),
        )

    return _fused_fgp_count(
        stream,
        pattern,
        copies,
        epsilon,
        lower_bound,
        trials,
        rng,
        copy_rngs,
        param_mode,
        mode,
        batch_size,
        backend,
        workers,
        start_method,
        "turnstile",
        "fgp-3pass-turnstile",
        mirror_factory,
        mirror_spec_factory,
        lambda oracle_rng: TurnstileStreamOracle(
            stream, oracle_rng, sampler_repetitions=sampler_repetitions
        ),
        SamplerMode.RELAXED,
        {},
        sampler_repetitions=sampler_repetitions,
        columnar=columnar,
        cache=cache,
    )


def count_subgraphs_two_pass_fused(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    mode: str = FusionMode.SHARED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    backend: str = EngineBackend.SERIAL,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    columnar: bool = True,
    cache=None,
) -> FusedCountResult:
    """Median of K fused 2-pass runs (star-decomposable H) in 2 passes.

    Backend semantics as in :func:`count_subgraphs_insertion_only_fused`.
    """
    require_star_decomposable(pattern)

    def mirror_factory(copy_rng, name, resolved_trials):
        return fgp_two_pass_estimator(
            stream,
            pattern,
            trials=resolved_trials,
            rng=copy_rng,
            name=name,
        )

    def mirror_spec_factory(copy_rng, name, resolved_trials):
        return EstimatorSpec(
            name=name,
            factory=fgp_two_pass_estimator,
            kwargs=dict(pattern=pattern, trials=resolved_trials, rng=copy_rng, name=name),
        )

    return _fused_fgp_count(
        stream,
        pattern,
        copies,
        epsilon,
        lower_bound,
        trials,
        rng,
        copy_rngs,
        param_mode,
        mode,
        batch_size,
        backend,
        workers,
        start_method,
        "two_pass",
        "fgp-2pass-insertion",
        mirror_factory,
        mirror_spec_factory,
        lambda oracle_rng: InsertionStreamOracle(stream, oracle_rng),
        SamplerMode.AUGMENTED,
        {"skip_empty_wedge_round": True},
        columnar=columnar,
        cache=cache,
    )
