"""Fused median-of-K counting — the paper's amplification at O(m) cost.

Chernoff gives each Theorem 1/17 run a constant success probability;
the standard amplification runs K independent copies and takes the
median of their estimates, driving the failure probability to 2^-Θ(K).
Run naively that costs K × 3 stream passes.  These entry points
register all K copies with one :class:`~repro.engine.core.StreamEngine`
so the whole ensemble consumes **exactly 3 passes** (2 for the 2-pass
counter), in one of two fusion modes:

``FusionMode.MIRROR``
    Every copy keeps its own oracle (its own reservoir banks /
    ℓ0-sketch banks), and only the stream iteration is shared.  A
    mirror copy seeded with rng R is **bit-identical** to the one-shot
    counter called with rng R — the mode the golden equivalence tests
    pin down.

``FusionMode.SHARED`` (default)
    All copies' round-ℓ query batches merge into a *single* oracle
    pass-state.  Each f1/f3 query still owns a private reservoir slot
    or ℓ0-sampler — the joint distribution over slots is exactly that
    of independent samplers (see ``repro.sketch.reservoir``) — while
    deterministic aggregates (degree counters, adjacency flags,
    arrival counters) are computed once instead of K times, and the
    skip-ahead bank's amortization spreads over all K·k edge queries.
    Copies remain independent in distribution, but the per-element
    work barely grows with K: this is the ≥2× (in practice ~K×)
    speedup mode benchmarked in ``benchmarks/bench_throughput.py``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.core import DEFAULT_BATCH_SIZE, StreamEngine
from repro.engine.estimators import (
    RoundAdaptiveEstimator,
    fgp_insertion_estimator,
    fgp_turnstile_estimator,
    fgp_two_pass_estimator,
)
from repro.errors import EngineError, EstimationError
from repro.estimate.concentration import ParamMode, relative_error
from repro.estimate.result import EstimateResult
from repro.fgp.rounds import SamplerMode, subgraph_sampler_rounds
from repro.patterns.pattern import Pattern
from repro.streaming.three_pass import fgp_success_estimate, resolve_trials
from repro.streaming.two_pass import require_star_decomposable
from repro.streams.stream import EdgeStream
from repro.transform.insertion import InsertionStreamOracle
from repro.transform.turnstile import TurnstileStreamOracle
from repro.utils.rng import RandomSource, derive_rng, ensure_rng

__all__ = [
    "FusionMode",
    "FusedCountResult",
    "count_subgraphs_insertion_only_fused",
    "count_subgraphs_turnstile_fused",
    "count_subgraphs_two_pass_fused",
]


class FusionMode:
    """How K fused copies share oracle state (see module docstring)."""

    MIRROR = "mirror"
    SHARED = "shared"

    _ALL = (MIRROR, SHARED)


@dataclass
class FusedCountResult:
    """Median-amplified estimate from K fused estimator copies."""

    algorithm: str
    pattern: str
    estimate: float
    copies: List[EstimateResult]
    passes: int
    mode: str
    m: int = 0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def num_copies(self) -> int:
        return len(self.copies)

    @property
    def estimates(self) -> List[float]:
        """The per-copy estimates the median is taken over."""
        return [copy.estimate for copy in self.copies]

    def error_vs(self, truth: float) -> float:
        """Relative error of the median against an exact count."""
        return relative_error(self.estimate, truth)

    def within(self, truth: float, epsilon: float) -> bool:
        """Whether the median is a (1±ε)-approximation of *truth*."""
        return self.error_vs(truth) <= epsilon

    def summary(self, truth: Optional[float] = None) -> str:
        parts = [
            f"{self.algorithm}[{self.pattern}]",
            f"median={self.estimate:.1f}",
            f"copies={self.num_copies}",
            f"passes={self.passes}",
            f"mode={self.mode}",
        ]
        if truth is not None:
            parts.append(f"err={self.error_vs(truth):.3f}")
        return " ".join(parts)


def _check_fused_args(copies: int, mode: str, copy_rngs) -> None:
    if copies < 1:
        raise EstimationError(f"copies must be >= 1, got {copies}")
    if mode not in FusionMode._ALL:
        raise EngineError(f"unknown fusion mode {mode!r}; expected one of {FusionMode._ALL}")
    if copy_rngs is not None and len(copy_rngs) != copies:
        raise EstimationError(
            f"copy_rngs carries {len(copy_rngs)} entries for {copies} copies"
        )


def _run_mirror(
    stream: EdgeStream,
    copies: int,
    batch_size: int,
    copy_rngs: Sequence,
    factory: Callable[[RandomSource, str], RoundAdaptiveEstimator],
) -> tuple:
    """Register one fully independent estimator per copy and run fused."""
    engine = StreamEngine(stream, batch_size=batch_size)
    names = [f"copy-{index}" for index in range(copies)]
    for index, name in enumerate(names):
        engine.register(factory(copy_rngs[index], name))
    report = engine.run()
    return [report.results[name] for name in names], report


def _run_shared(
    stream: EdgeStream,
    copies: int,
    trials: int,
    batch_size: int,
    oracle,
    make_generator: Callable[[int, int], object],
    finalize_copies: Callable,
) -> tuple:
    """Merge all copies' generators into one oracle and run fused."""
    generators = [
        make_generator(copy, trial)
        for copy in range(copies)
        for trial in range(trials)
    ]
    estimator = RoundAdaptiveEstimator("fused", generators, oracle, finalize_copies)
    engine = StreamEngine(stream, batch_size=batch_size)
    engine.register(estimator)
    report = engine.run()
    return report.results["fused"], report


def _shared_fgp_finalize(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int,
    trials: int,
    oracle,
    algorithm: str,
) -> Callable:
    """Slice a merged run's outputs into per-copy EstimateResults.

    The merged oracle meters the whole ensemble; each copy's
    ``space_words`` is its share (ceil(peak/copies) — queries are
    uniform across copies), so summing over copies matches the ensemble
    instead of overcounting K-fold.  The fused result records the
    ensemble total in ``details["ensemble_space_words"]``.
    """

    def finalize(run) -> List[EstimateResult]:
        m = stream.net_edge_count
        rho = pattern.rho()
        ensemble_space = oracle.space.peak_words
        per_copy_space = -(-ensemble_space // copies)
        results = []
        for copy in range(copies):
            outputs = run.outputs[copy * trials : (copy + 1) * trials]
            successes, estimate = fgp_success_estimate(outputs, trials, m, rho)
            results.append(
                EstimateResult(
                    algorithm=algorithm,
                    pattern=pattern.name,
                    estimate=estimate,
                    passes=run.rounds,
                    space_words=per_copy_space,
                    trials=trials,
                    successes=successes,
                    m=m,
                    details={
                        "rho": rho,
                        "success_rate": successes / trials,
                        "fused_copy": float(copy),
                    },
                )
            )
        return results

    return finalize


def _fused_fgp_count(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int,
    epsilon: float,
    lower_bound,
    trials,
    rng,
    copy_rngs,
    param_mode: str,
    mode: str,
    batch_size: int,
    algorithm: str,
    mirror_factory: Callable,
    shared_oracle_factory: Callable,
    sampler_mode: str,
    sampler_kwargs: Dict,
) -> FusedCountResult:
    """Common driver behind the three fused entry points."""
    _check_fused_args(copies, mode, copy_rngs)
    master = ensure_rng(rng)
    k = resolve_trials(stream, pattern, epsilon, lower_bound, trials, param_mode)

    ensemble_space = None
    if mode == FusionMode.MIRROR:
        if copy_rngs is None:
            copy_rngs = [derive_rng(master, f"copy-{index}") for index in range(copies)]
        # Every copy gets the already-resolved budget k, so the
        # reported trials_per_copy cannot drift from what the copies
        # actually ran (and resolve_trials runs once, not K+1 times).
        copy_results, report = _run_mirror(
            stream,
            copies,
            batch_size,
            copy_rngs,
            lambda copy_rng, name: mirror_factory(copy_rng, name, k),
        )
    else:
        if copy_rngs is not None:
            raise EngineError("copy_rngs is a mirror-mode parameter; shared mode derives from rng")
        oracle = shared_oracle_factory(derive_rng(master, "oracle"))

        def make_generator(copy: int, trial: int):
            return subgraph_sampler_rounds(
                pattern,
                rng=derive_rng(master, f"copy-{copy}-trial-{trial}"),
                mode=sampler_mode,
                **sampler_kwargs,
            )

        copy_results, report = _run_shared(
            stream,
            copies,
            k,
            batch_size,
            oracle,
            make_generator,
            _shared_fgp_finalize(stream, pattern, copies, k, oracle, algorithm),
        )
        ensemble_space = oracle.space.peak_words

    median = statistics.median(result.estimate for result in copy_results)
    details = {
        "trials_per_copy": float(k),
        "elements": float(report.elements),
        "batch_size": float(report.batch_size),
    }
    if ensemble_space is not None:
        details["ensemble_space_words"] = float(ensemble_space)
    return FusedCountResult(
        algorithm=algorithm,
        pattern=pattern.name,
        estimate=median,
        copies=copy_results,
        passes=report.passes,
        mode=mode,
        m=stream.net_edge_count,
        details=details,
    )


def count_subgraphs_insertion_only_fused(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    mode: str = FusionMode.SHARED,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> FusedCountResult:
    """Median of K fused Theorem-17 runs in exactly 3 insertion passes.

    ``trials``/``epsilon``/``lower_bound`` size each copy exactly as in
    :func:`~repro.streaming.three_pass.count_subgraphs_insertion_only`.
    In mirror mode, ``copy_rngs`` (one seed or generator per copy)
    makes copy i bit-identical to the one-shot counter called with the
    same rng.
    """

    def mirror_factory(copy_rng, name, resolved_trials):
        return fgp_insertion_estimator(
            stream,
            pattern,
            trials=resolved_trials,
            rng=copy_rng,
            name=name,
        )

    return _fused_fgp_count(
        stream,
        pattern,
        copies,
        epsilon,
        lower_bound,
        trials,
        rng,
        copy_rngs,
        param_mode,
        mode,
        batch_size,
        "fgp-3pass-insertion",
        mirror_factory,
        lambda oracle_rng: InsertionStreamOracle(stream, oracle_rng),
        SamplerMode.AUGMENTED,
        {},
    )


def count_subgraphs_turnstile_fused(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    sampler_repetitions: int = 8,
    mode: str = FusionMode.SHARED,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> FusedCountResult:
    """Median of K fused Theorem-1 runs in exactly 3 turnstile passes.

    Works on streams with deletions; each copy's ℓ0-sketch bank is
    private in both modes (sketches hang off individual queries), so
    the copies stay independent.
    """

    def mirror_factory(copy_rng, name, resolved_trials):
        return fgp_turnstile_estimator(
            stream,
            pattern,
            trials=resolved_trials,
            rng=copy_rng,
            sampler_repetitions=sampler_repetitions,
            name=name,
        )

    return _fused_fgp_count(
        stream,
        pattern,
        copies,
        epsilon,
        lower_bound,
        trials,
        rng,
        copy_rngs,
        param_mode,
        mode,
        batch_size,
        "fgp-3pass-turnstile",
        mirror_factory,
        lambda oracle_rng: TurnstileStreamOracle(
            stream, oracle_rng, sampler_repetitions=sampler_repetitions
        ),
        SamplerMode.RELAXED,
        {},
    )


def count_subgraphs_two_pass_fused(
    stream: EdgeStream,
    pattern: Pattern,
    copies: int = 8,
    epsilon: float = 0.1,
    lower_bound: Optional[float] = None,
    trials: Optional[int] = None,
    rng: RandomSource = None,
    copy_rngs: Optional[Sequence[RandomSource]] = None,
    param_mode: str = ParamMode.PRACTICAL,
    mode: str = FusionMode.SHARED,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> FusedCountResult:
    """Median of K fused 2-pass runs (star-decomposable H) in 2 passes."""
    require_star_decomposable(pattern)

    def mirror_factory(copy_rng, name, resolved_trials):
        return fgp_two_pass_estimator(
            stream,
            pattern,
            trials=resolved_trials,
            rng=copy_rng,
            name=name,
        )

    return _fused_fgp_count(
        stream,
        pattern,
        copies,
        epsilon,
        lower_bound,
        trials,
        rng,
        copy_rngs,
        param_mode,
        mode,
        batch_size,
        "fgp-2pass-insertion",
        mirror_factory,
        lambda oracle_rng: InsertionStreamOracle(stream, oracle_rng),
        SamplerMode.AUGMENTED,
        {"skip_empty_wedge_round": True},
    )
