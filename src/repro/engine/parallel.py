"""The sharded multiprocessing execution backend of the fused engine.

The fused engine (:mod:`repro.engine.core`) removed the O(K·m) stream
traffic of median-of-K amplification, but all K estimator copies still
execute on one core.  The copies are embarrassingly parallel — in
``mirror`` mode they share *nothing* but the stream bytes — so this
module shards them across a pool of worker processes:

* the **driver** (the parent process) owns the stream.  It iterates
  each fused pass exactly once, decodes updates into batches, and
  broadcasts every batch to each worker that still has estimators
  wanting passes;
* each **worker** rebuilds its shard of estimators locally from a
  picklable :class:`EstimatorSpec` (live estimators hold generator
  frames and cannot cross a process boundary — they are
  *reconstructable from seeds* instead), feeds it the broadcast
  batches, and ships the finished results back;
* the driver **merges**: per-copy results are reassembled in
  registration order, so median-of-K and per-copy diagnostics are
  computed exactly as in the serial backend.

Determinism
-----------
A spec carries explicit seed material (ints or pickled
``random.Random`` states), never "whatever entropy the worker has", so
a process-backend run is a pure function of the seeds.  In ``mirror``
mode each copy's state is private, which makes the results independent
of the worker count as well: ``--workers 1``, ``2`` and ``4`` return
identical estimates, equal bit-for-bit to the serial backend
(asserted in ``tests/test_parallel.py``).

Worker protocol
---------------
Driver → worker, over a bounded per-worker command queue (the bound is
the backpressure: a slow worker throttles the reader instead of
buffering the whole stream):

``("begin_pass", i)`` / ``("batch", updates)`` / ``("end_pass",)``
    One fused pass: updates are lists of decoded ``(u, v, delta,
    edge)`` tuples, in stream order.
``("collect",)``
    Ship back ``{name: result}`` for the worker's shard.
``("state_dict",)``
    Ship back ``{name: estimator.state_dict()}`` for the shard — the
    driver-side checkpoint path of the live engine
    (:mod:`repro.engine.live`): the driver persists every shard's
    specs *plus* these states, so a restored pool resumes exactly
    where the snapshot was taken.
``("load_state", states, resume_active)``
    Restore each shard estimator from ``states[name]`` (freshly built
    estimators only).  With *resume_active* the worker re-derives its
    active set from ``wants_pass()`` so mid-pass restores keep
    receiving batches without a new ``begin_pass``.
``("stop",)``
    Exit the worker loop.

Worker → driver, over one shared reply queue, always tagged with the
worker id: ``("ready", wid, wants_pass)`` after building its shard,
``("pass_done", wid, wants_pass)`` after each pass, ``("results",
wid, mapping)``, and ``("error", wid, traceback)`` from any failure —
the driver then terminates the pool and re-raises as
:class:`~repro.errors.EngineError` with the worker's traceback.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.engine.core import DEFAULT_BATCH_SIZE, EngineReport, apply_cache_policy
from repro.errors import EngineError, StreamError
from repro.streams.stream import EdgeStream, check_batch_size, pass_batches

__all__ = [
    "StreamHandle",
    "EstimatorSpec",
    "run_process_engine",
    "resolve_workers",
    "shard_indices",
    "build_triest",
    "build_doulion",
    "build_exact_stream",
]

#: Seconds the driver waits for a worker reply before declaring it hung.
DEFAULT_REPLY_TIMEOUT = 600.0

#: Command-queue bound: how many decoded batches may be in flight per
#: worker before the driver's broadcast blocks (the backpressure knob).
COMMAND_QUEUE_DEPTH = 16


@dataclass(frozen=True)
class StreamHandle:
    """Picklable metadata stub standing in for an :class:`EdgeStream`.

    Workers never see the stream contents (batches arrive over the
    command queue), but estimator factories consult the stream's
    *metadata*: oracles check ``allows_deletions`` and ``n``, trial
    resolution and finalizers read ``net_edge_count`` / ``length``.
    A handle carries exactly that surface and refuses iteration, so a
    mis-wired worker fails loudly instead of silently re-reading a
    stream it does not have.
    """

    n: int
    length: int
    net_edge_count: int
    allows_deletions: bool

    @classmethod
    def of(cls, stream) -> "StreamHandle":
        """The handle describing *stream* (idempotent on handles)."""
        if isinstance(stream, cls):
            return stream
        return cls(
            n=stream.n,
            length=stream.length,
            net_edge_count=stream.net_edge_count,
            allows_deletions=stream.allows_deletions,
        )

    @property
    def passes_used(self) -> int:
        """Always 0: the driver owns pass accounting in process mode."""
        return 0

    def reset_pass_count(self) -> None:
        """No-op; the driver's real stream counts the fused passes."""

    def updates(self):
        raise EngineError(
            "StreamHandle cannot be iterated: in the process backend the "
            "driver owns the stream and broadcasts decoded batches to workers"
        )

    def __len__(self) -> int:
        return self.length


@dataclass(frozen=True)
class EstimatorSpec:
    """A picklable recipe for building one estimator inside a worker.

    ``factory`` must be an importable module-level callable (pickled by
    reference) invoked as ``factory(stream, **kwargs)``, where *stream*
    is the driver's :class:`StreamHandle`; ``kwargs`` must be picklable
    — plain ints/strings/patterns and seed material rather than live
    generators.  The factories in :mod:`repro.engine.estimators`
    (``fgp_insertion_estimator`` et al.) and the ``build_*`` wrappers
    below all qualify.
    """

    name: str
    factory: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self, stream) -> Any:
        """Construct the estimator against *stream* (handle or stream)."""
        estimator = self.factory(stream, **self.kwargs)
        built_name = getattr(estimator, "name", None)
        if built_name != self.name:
            raise EngineError(
                f"spec {self.name!r} built an estimator named {built_name!r}; "
                "pass the spec's name through to the factory"
            )
        return estimator


# -- spec factories for the baseline estimators -------------------------
#
# The baseline constructors do not take a stream (or take only ``n``),
# so these module-level adapters give them the uniform
# ``factory(stream, **kwargs)`` shape EstimatorSpec requires.


def build_triest(stream, **kwargs):
    """Spec factory: :class:`~repro.baselines.triest.TriestEstimator`."""
    from repro.baselines.triest import TriestEstimator

    return TriestEstimator(**kwargs)


def build_doulion(stream, **kwargs):
    """Spec factory: :class:`~repro.baselines.doulion.DoulionEstimator`
    (``stream.n`` is filled in from the handle)."""
    from repro.baselines.doulion import DoulionEstimator

    return DoulionEstimator(stream.n, **kwargs)


def build_exact_stream(stream, **kwargs):
    """Spec factory: :class:`~repro.baselines.exact_stream.ExactStreamEstimator`."""
    from repro.baselines.exact_stream import ExactStreamEstimator

    return ExactStreamEstimator(stream.n, **kwargs)


def resolve_workers(workers: Optional[int], jobs: int) -> int:
    """The effective pool size: requested (or cpu count), capped by jobs."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    return max(1, min(workers, jobs))


def shard_indices(count: int, shards: int) -> List[List[int]]:
    """Split ``range(count)`` into *shards* contiguous, nearly equal runs.

    The first ``count % shards`` shards get the extra element; empty
    shards are dropped (when ``shards > count``).
    """
    if shards < 1:
        raise EngineError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(count, shards)
    result: List[List[int]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        if size:
            result.append(list(range(start, start + size)))
        start += size
    return result


def _worker_main(worker_id: int, specs, handle: StreamHandle, commands, replies) -> None:
    """Worker loop: build the shard, consume commands, ship results."""
    try:
        estimators = [spec.build(handle) for spec in specs]
        active: List[Any] = []
        replies.put(("ready", worker_id, any(e.wants_pass() for e in estimators)))
        while True:
            message = commands.get()
            command = message[0]
            if command == "begin_pass":
                active = [e for e in estimators if e.wants_pass()]
                for estimator in active:
                    estimator.begin_pass(message[1])
            elif command == "batch":
                batch = message[1]
                for estimator in active:
                    estimator.ingest_batch(batch)
            elif command == "end_pass":
                for estimator in active:
                    estimator.end_pass()
                active = []
                replies.put(
                    ("pass_done", worker_id, any(e.wants_pass() for e in estimators))
                )
            elif command == "collect":
                results = {e.name: e.result() for e in estimators}
                replies.put(("results", worker_id, results))
            elif command == "state_dict":
                states = {e.name: e.state_dict() for e in estimators}
                replies.put(("state", worker_id, states))
            elif command == "load_state":
                states = message[1]
                for estimator in estimators:
                    estimator.load_state_dict(states[estimator.name])
                if message[2]:
                    # Mid-pass restore: the loaded states carry open
                    # passes, so batches must flow without a begin_pass.
                    active = [e for e in estimators if e.wants_pass()]
                else:
                    # Fresh restore: a later begin_pass opens the pass.
                    active = []
                replies.put(
                    ("loaded", worker_id, any(e.wants_pass() for e in estimators))
                )
            elif command == "stop":
                return
            else:  # pragma: no cover - driver never sends unknown commands
                raise EngineError(f"unknown worker command {command!r}")
    except BaseException:
        try:
            replies.put(("error", worker_id, traceback.format_exc()))
        finally:
            return


class _WorkerPool:
    """Driver-side handle on the spawned workers and their queues."""

    def __init__(self, context, shards: Sequence[Sequence[EstimatorSpec]], handle, timeout):
        self._timeout = timeout
        # Legitimate replies pulled off the queue while probing for
        # failures mid-broadcast (a fast worker may answer an
        # ``end_pass``/``collect`` before the slowest worker received
        # it); gather() consumes these first.
        self._stashed: List[tuple] = []
        self.replies = context.Queue()
        self.commands = []
        self.processes = []
        for worker_id, shard in enumerate(shards):
            queue = context.Queue(COMMAND_QUEUE_DEPTH)
            process = context.Process(
                target=_worker_main,
                args=(worker_id, list(shard), handle, queue, self.replies),
                daemon=True,
            )
            self.commands.append(queue)
            self.processes.append(process)
        try:
            for process in self.processes:
                process.start()
        except BaseException:
            # Partial startup (EAGAIN under process pressure, spawn
            # pickling error): reap whatever already launched instead
            # of leaking daemons blocked on commands.get().
            for process in self.processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            raise

    def send(self, worker_id: int, message) -> None:
        """Put *message* on a worker's bounded queue without deadlocking.

        A worker that died mid-pass stops draining its queue; once the
        queue is full a plain ``put`` would block forever while the
        worker's error reply sits unread.  So on backpressure we poll
        the reply queue — errors raise immediately, legitimate replies
        from faster workers are stashed for the next ``gather`` — and
        check the process is still alive.
        """
        import queue as queue_module

        queue = self.commands[worker_id]
        deadline = time.monotonic() + self._timeout
        while True:
            try:
                queue.put(message, timeout=1.0)
                return
            except queue_module.Full:
                self._raise_on_failure(worker_id)
                if time.monotonic() > deadline:
                    raise EngineError(
                        f"timed out after {self._timeout}s sending to worker "
                        f"{worker_id} (command queue full)"
                    )

    def _raise_on_failure(self, worker_id: int) -> None:
        import queue as queue_module

        try:
            reply = self.replies.get_nowait()
        except queue_module.Empty:
            if not self.processes[worker_id].is_alive():
                raise EngineError(
                    f"worker {worker_id} died without reporting an error "
                    "(command queue stalled)"
                )
            return
        if reply[0] == "error":
            raise EngineError(f"worker {reply[1]} failed:\n{reply[2]}")
        # A fast worker's legitimate reply to a message the slow worker
        # has not received yet; hold it for the next gather().
        self._stashed.append(reply)

    def broadcast(self, worker_ids, message) -> None:
        for worker_id in worker_ids:
            self.send(worker_id, message)

    def gather(self, kind: str, worker_ids) -> Dict[int, Any]:
        """One *kind* reply from each of *worker_ids*; abort on errors.

        Waits in short slices so a worker that dies *without* managing
        to ship an error reply (OOM kill, segfault) is noticed within
        ~a second instead of after the full reply timeout.
        """
        import queue as queue_module

        outstanding = set(worker_ids)
        payloads: Dict[int, Any] = {}
        deadline = time.monotonic() + self._timeout
        while outstanding:
            if self._stashed:
                reply = self._stashed.pop(0)
            else:
                try:
                    reply = self.replies.get(timeout=1.0)
                except queue_module.Empty:
                    dead = [
                        i for i in outstanding if not self.processes[i].is_alive()
                    ]
                    if dead:
                        raise EngineError(
                            f"workers {dead} died without reporting an error "
                            f"while the driver awaited {kind!r}"
                        )
                    if time.monotonic() > deadline:
                        raise EngineError(
                            f"timed out after {self._timeout}s waiting for "
                            f"worker reply {kind!r} from {sorted(outstanding)}"
                        )
                    continue
            if reply[0] == "error":
                raise EngineError(
                    f"worker {reply[1]} failed:\n{reply[2]}"
                )
            if reply[0] != kind or reply[1] not in outstanding:
                raise EngineError(
                    f"protocol violation: expected {kind!r} from "
                    f"{sorted(outstanding)}, got {reply[0]!r} from worker {reply[1]}"
                )
            outstanding.discard(reply[1])
            payloads[reply[1]] = reply[2]
        return payloads

    def shutdown(self, graceful: bool) -> None:
        if graceful:
            for queue in self.commands:
                queue.put(("stop",))
            for process in self.processes:
                process.join(timeout=30.0)
        else:
            # Failure path: the error is already known and the workers
            # are stateless daemons (likely blocked on commands.get()),
            # so don't wait politely — kill first, reap after.
            for process in self.processes:
                if process.is_alive():
                    process.terminate()
        for process in self.processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        for queue in self.commands + [self.replies]:
            queue.close()


def _make_context(start_method: Optional[str]):
    import multiprocessing
    import sys

    if start_method is None:
        # Prefer fork only where it is the safe platform default
        # (Linux): macOS lists fork but made spawn the default in 3.8
        # because forking there can crash in system frameworks.
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
    return multiprocessing.get_context(start_method)


def run_process_engine(
    stream: EdgeStream,
    specs: Sequence[EstimatorSpec],
    workers: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    start_method: Optional[str] = None,
    reset_pass_count: bool = True,
    max_passes: int = 0,
    reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    columnar: bool = True,
    cache=None,
) -> EngineReport:
    """Drive *specs* to completion across a process pool.

    The multiprocessing counterpart of :meth:`StreamEngine.run` —
    normally reached through ``StreamEngine(..., backend="process")``
    rather than called directly.  Specs are sharded contiguously
    across ``resolve_workers(workers, len(specs))`` processes; the
    returned report's ``dispatches`` counts batch *broadcasts* (batches
    × active workers) and ``workers`` records the pool size.

    With *columnar* (the default) each broadcast ships an
    :class:`~repro.streams.batch.EdgeBatch`, which pickles as three
    flat ``int64`` buffers — a fraction of the bytes (and none of the
    per-tuple pickle opcodes) of the historical tuple lists; workers
    rebuild the decoded views lazily on their side of the boundary.

    *cache* applies a batch-cache policy to the **driver's** stream
    (see :mod:`repro.streams.cache`): the driver is the only process
    that decodes, so its policy decides whether a later fused pass
    re-reads from memory or from disk.  Workers always re-decode the
    broadcast buffers they receive — they never assume a cached batch
    exists on their side of the boundary.
    """
    if not specs:
        raise EngineError("no estimator specs registered")
    try:
        batch_size = check_batch_size(batch_size)
    except StreamError as error:
        raise EngineError(str(error)) from error
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise EngineError(f"duplicate estimator names in specs: {names}")

    pool_size = resolve_workers(workers, len(specs))
    shards = [
        [specs[i] for i in indices] for indices in shard_indices(len(specs), pool_size)
    ]
    handle = StreamHandle.of(stream)
    apply_cache_policy(stream, cache)
    if reset_pass_count:
        stream.reset_pass_count()

    pool = _WorkerPool(_make_context(start_method), shards, handle, reply_timeout)
    graceful = False
    try:
        wants = pool.gather("ready", range(pool_size))
        passes = 0
        elements = 0
        dispatches = 0
        while True:
            active = [worker_id for worker_id in range(pool_size) if wants[worker_id]]
            if not active:
                break
            if max_passes and passes >= max_passes:
                raise EngineError(
                    f"workers {active} still want passes after "
                    f"max_passes={max_passes}"
                )
            pool.broadcast(active, ("begin_pass", passes))
            for batch in pass_batches(stream, batch_size, columnar):
                elements += len(batch)
                pool.broadcast(active, ("batch", batch))
                dispatches += len(active)
            pool.broadcast(active, ("end_pass",))
            wants.update(pool.gather("pass_done", active))
            passes += 1

        pool.broadcast(range(pool_size), ("collect",))
        shard_results = pool.gather("results", range(pool_size))
        graceful = True
    finally:
        pool.shutdown(graceful)

    results: Dict[str, Any] = {}
    for payload in shard_results.values():
        results.update(payload)
    missing = [name for name in names if name not in results]
    if missing:
        raise EngineError(f"workers returned no result for {missing}")
    return EngineReport(
        results={name: results[name] for name in names},
        passes=passes,
        elements=elements,
        dispatches=dispatches,
        batch_size=batch_size,
        workers=pool_size,
    )
