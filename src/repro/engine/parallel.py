"""The sharded parallel execution backends of the fused engine.

The fused engine (:mod:`repro.engine.core`) removed the O(K·m) stream
traffic of median-of-K amplification, but all K estimator copies still
execute on one core.  The copies are embarrassingly parallel — in
``mirror`` mode they share *nothing* but the stream bytes — so this
module shards them across a pool of workers:

* the **driver** (the parent process) owns the stream.  It iterates
  each fused pass exactly once, decodes updates into batches, and
  publishes every batch to each worker that still has estimators
  wanting passes;
* each **worker** rebuilds its shard of estimators locally from a
  picklable :class:`EstimatorSpec` (live estimators hold generator
  frames and cannot cross a process boundary — they are
  *reconstructable from seeds* instead), feeds it the published
  batches, and ships the finished results back;
* the driver **merges**: per-copy results are reassembled in
  registration order, so median-of-K and per-copy diagnostics are
  computed exactly as in the serial backend.

Two pool flavours share one driver loop and one worker loop
(:func:`_worker_main`):

``backend="process"`` (:class:`_ProcessPool`)
    Workers are daemon processes.  Columnar batches travel through a
    **shared-memory batch ring**: the driver packs each batch's
    columns into one of a fixed ring of
    :mod:`multiprocessing.shared_memory` segments exactly once and
    broadcasts only a tiny ``(segment, capacity, length, seq)``
    reference, instead of pickling the columns onto every worker's
    command queue.  Per-worker acknowledgment counters release ring
    slots — a slot is rewritten only after every worker it was
    published to has consumed it — and double as the transport's
    refcount: segments are unlinked exactly once, in
    :meth:`~_PoolBase.shutdown`, which runs on the graceful path and
    on every error/terminate path alike (no leaked ``/dev/shm``
    segments; ``tests/test_parallel.py`` scans).  Because publishing
    only blocks when the ring wraps onto an unconsumed slot, the
    driver decodes batch N+1 while workers chew on batch N — the ring
    depth (bounded by the command-queue depth and a memory budget) is
    the decode-ahead window.
``backend="thread"`` (:class:`_ThreadPool`)
    Workers are daemon threads running the *same* worker loop over
    plain in-process queues.  Batches are handed over by reference —
    zero serialization, zero copies — and the numpy kernels release
    the GIL, so thread workers overlap on the columnar pipeline
    without any of the process transport's machinery.

Determinism
-----------
A spec carries explicit seed material (ints or pickled
``random.Random`` states), never "whatever entropy the worker has", so
a parallel run is a pure function of the seeds.  In ``mirror`` mode
each copy's state is private, which makes the results independent of
the worker count *and of the backend*: ``--workers 1``, ``2`` and
``4``, threads or processes, return identical estimates, equal
bit-for-bit to the serial backend (asserted in
``tests/test_parallel.py`` and fuzzed three ways in
``tests/test_differential_fuzz.py``).

Worker protocol
---------------
Driver → worker, over a bounded per-worker command queue (the bound is
the backpressure: a slow worker throttles the reader instead of
buffering the whole stream):

``("begin_pass", i)`` / ``("batch", updates)`` / ``("end_pass",)``
    One fused pass: updates are columnar
    :class:`~repro.streams.batch.EdgeBatch` objects or lists of
    decoded ``(u, v, delta, edge)`` tuples, in stream order.
``("shm_batch", name, capacity, length, seq)``
    Process backend only: the batch's columns live in shared-memory
    segment *name* (packed by
    :func:`~repro.streams.batch.pack_columns`); the worker attaches,
    copies the columns out, and acknowledges *seq* so the driver may
    reuse the slot.  Rides the same queue as the control messages, so
    ordering against ``begin_pass``/``end_pass`` is preserved.
``("collect",)``
    Ship back ``{name: result}`` for the worker's shard.
``("state_dict",)``
    Ship back ``{name: estimator.state_dict()}`` for the shard — the
    driver-side checkpoint path of the live engine
    (:mod:`repro.engine.live`): the driver persists every shard's
    specs *plus* these states, so a restored pool resumes exactly
    where the snapshot was taken.
``("load_state", states, resume_active)``
    Restore each shard estimator from ``states[name]`` (freshly built
    estimators only).  With *resume_active* the worker re-derives its
    active set from ``wants_pass()`` so mid-pass restores keep
    receiving batches without a new ``begin_pass``.
``("stop",)``
    Exit the worker loop.

Worker → driver, over one shared reply queue, always tagged with the
worker id: ``("ready", wid, wants_pass)`` after building its shard,
``("pass_done", wid, wants_pass)`` after each pass, ``("results",
wid, mapping)``, and ``("error", wid, traceback)`` from any failure —
the driver then terminates the pool and re-raises as
:class:`~repro.errors.EngineError` with the worker's traceback.
While blocked (full command queue, occupied ring slot, pending
gather), the driver probes the liveness of **every** worker, not just
the one it is waiting on, so a silent death anywhere in the pool (OOM
kill, segfault) aborts the run within about a second instead of after
the full reply timeout.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.core import DEFAULT_BATCH_SIZE, EngineReport, apply_cache_policy
from repro.errors import EngineError, StreamError, WorkerLossError
from repro.faults.plan import FaultPlan, WorkerKilled
from repro.utils.retry import RetryPolicy, retry_call
from repro.streams.batch import EdgeBatch, PACKED_ELEMENT_BYTES, pack_columns, unpack_columns
from repro.streams.stream import EdgeStream, check_batch_size, pass_batches

__all__ = [
    "StreamHandle",
    "EstimatorSpec",
    "run_parallel_engine",
    "run_process_engine",
    "make_worker_pool",
    "resolve_workers",
    "shard_indices",
    "leaked_shm_segments",
    "build_triest",
    "build_doulion",
    "build_exact_stream",
]

#: Seconds the driver waits for a worker reply before declaring it hung.
DEFAULT_REPLY_TIMEOUT = 600.0

#: Command-queue bound: how many decoded batches may be in flight per
#: worker before the driver's broadcast blocks (the backpressure knob).
#: Also the upper bound on the shared-memory ring depth — the ring
#: never needs more decode-ahead than the queues can reference.
COMMAND_QUEUE_DEPTH = 16

#: Seconds the graceful shutdown spends trying to enqueue ``("stop",)``
#: on one worker's bounded command queue before falling back to
#: terminate.  A healthy worker drains its queue far faster; a wedged
#: worker must never hang the driver's happy path.
STOP_SEND_TIMEOUT = 5.0

#: Prefix of every shared-memory segment this module creates; the leak
#: checks (tests, CI smoke) scan ``/dev/shm`` for it.
SHM_NAME_PREFIX = "repro_shm_"

#: Cap on the total bytes of one pool's shared-memory ring.  At the
#: default batch size the ring comfortably reaches the full
#: COMMAND_QUEUE_DEPTH; for huge batches the depth shrinks (min 2, so
#: publishing still overlaps with consumption) instead of reserving
#: gigabytes of /dev/shm.
RING_MEMORY_BUDGET = 64 << 20

#: Retry schedule for a worker-side shared-memory attach: the attach
#: can transiently race segment creation (and the fault drills inject
#: exactly that), so it gets a couple of cheap retries before the
#: error surfaces as a worker failure.
SHM_ATTACH_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.1)

#: Retry schedule for launching a replacement worker process/thread —
#: a fork can lose a transient EAGAIN race under process pressure.
RESPAWN_RETRY = RetryPolicy(attempts=3, base_delay=0.05, max_delay=1.0)


@dataclass(frozen=True)
class StreamHandle:
    """Picklable metadata stub standing in for an :class:`EdgeStream`.

    Workers never see the stream contents (batches arrive over the
    command queue or the shared-memory ring), but estimator factories
    consult the stream's *metadata*: oracles check ``allows_deletions``
    and ``n``, trial resolution and finalizers read ``net_edge_count``
    / ``length``.  A handle carries exactly that surface and refuses
    iteration, so a mis-wired worker fails loudly instead of silently
    re-reading a stream it does not have.
    """

    n: int
    length: int
    net_edge_count: int
    allows_deletions: bool

    @classmethod
    def of(cls, stream) -> "StreamHandle":
        """The handle describing *stream* (idempotent on handles)."""
        if isinstance(stream, cls):
            return stream
        return cls(
            n=stream.n,
            length=stream.length,
            net_edge_count=stream.net_edge_count,
            allows_deletions=stream.allows_deletions,
        )

    @property
    def passes_used(self) -> int:
        """Always 0: the driver owns pass accounting in parallel mode."""
        return 0

    def reset_pass_count(self) -> None:
        """No-op; the driver's real stream counts the fused passes."""

    def updates(self):
        raise EngineError(
            "StreamHandle cannot be iterated: in the parallel backends the "
            "driver owns the stream and publishes decoded batches to workers"
        )

    def __len__(self) -> int:
        return self.length


@dataclass(frozen=True)
class EstimatorSpec:
    """A picklable recipe for building one estimator inside a worker.

    ``factory`` must be an importable module-level callable (pickled by
    reference) invoked as ``factory(stream, **kwargs)``, where *stream*
    is the driver's :class:`StreamHandle`; ``kwargs`` must be picklable
    — plain ints/strings/patterns and seed material rather than live
    generators.  The factories in :mod:`repro.engine.estimators`
    (``fgp_insertion_estimator`` et al.) and the ``build_*`` wrappers
    below all qualify.
    """

    name: str
    factory: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self, stream) -> Any:
        """Construct the estimator against *stream* (handle or stream)."""
        estimator = self.factory(stream, **self.kwargs)
        built_name = getattr(estimator, "name", None)
        if built_name != self.name:
            raise EngineError(
                f"spec {self.name!r} built an estimator named {built_name!r}; "
                "pass the spec's name through to the factory"
            )
        return estimator


# -- spec factories for the baseline estimators -------------------------
#
# The baseline constructors do not take a stream (or take only ``n``),
# so these module-level adapters give them the uniform
# ``factory(stream, **kwargs)`` shape EstimatorSpec requires.


def build_triest(stream, **kwargs):
    """Spec factory: :class:`~repro.baselines.triest.TriestEstimator`."""
    from repro.baselines.triest import TriestEstimator

    return TriestEstimator(**kwargs)


def build_doulion(stream, **kwargs):
    """Spec factory: :class:`~repro.baselines.doulion.DoulionEstimator`
    (``stream.n`` is filled in from the handle)."""
    from repro.baselines.doulion import DoulionEstimator

    return DoulionEstimator(stream.n, **kwargs)


def build_exact_stream(stream, **kwargs):
    """Spec factory: :class:`~repro.baselines.exact_stream.ExactStreamEstimator`."""
    from repro.baselines.exact_stream import ExactStreamEstimator

    return ExactStreamEstimator(stream.n, **kwargs)


def resolve_workers(workers: Optional[int], jobs: int) -> int:
    """The effective pool size: requested (or cpu count), capped by jobs."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    return max(1, min(workers, jobs))


def shard_indices(count: int, shards: int) -> List[List[int]]:
    """Split ``range(count)`` into *shards* contiguous, nearly equal runs.

    The first ``count % shards`` shards get the extra element; empty
    shards are dropped (when ``shards > count``).
    """
    if shards < 1:
        raise EngineError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(count, shards)
    result: List[List[int]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        if size:
            result.append(list(range(start, start + size)))
        start += size
    return result


# -- shared-memory batch transport ---------------------------------------


def leaked_shm_segments() -> List[str]:
    """Names of this module's shared-memory segments present right now.

    Scans ``/dev/shm`` for the :data:`SHM_NAME_PREFIX`; empty on
    platforms without that mount.  A non-empty result *after* every
    pool has shut down means a segment leaked — the invariant the leak
    tests and the CI parallel smoke job assert.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(SHM_NAME_PREFIX))


def _attach_segment(name: str):
    """Attach a worker to an existing ring segment.

    On 3.13+ the attach opts out of resource tracking (``track=False``)
    — the driver, which created the segment, owns its lifetime.  Before
    3.13 attaching re-registers the name with the resource tracker;
    that is harmless here because worker processes inherit the
    *driver's* tracker (fork and spawn both hand the tracker fd down),
    whose registry is a set — the duplicate registration collapses and
    the driver's ``unlink()`` deregisters it exactly once.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


class _SegmentAttachments:
    """Worker-side cache of attached ring segments.

    The ring reuses a fixed set of segment names, so each worker
    attaches (and maps a column view of) every segment at most once and
    copies batch columns out per message.  The copy is deliberate: an
    estimator may retain the batch beyond the message (reservoirs keep
    edge tuples), and a zero-copy view would be silently corrupted when
    the driver rewrites the slot.
    """

    def __init__(
        self, worker_id: int = 0, fault_plan: Optional[FaultPlan] = None
    ) -> None:
        self._worker_id = worker_id
        self._fault_plan = fault_plan
        self._segments: Dict[str, Any] = {}
        self._views: Dict[str, np.ndarray] = {}

    def _attach(self, name: str):
        if self._fault_plan is not None:
            self._fault_plan.fire("shm.attach", worker=self._worker_id)
        return _attach_segment(name)

    def batch(self, name: str, capacity: int, length: int) -> EdgeBatch:
        view = self._views.get(name)
        if view is None:
            # The attach is the transient-failure site of the worker
            # side (a segment can briefly not be visible yet); retried
            # with a deterministic jitter schedule before the failure
            # surfaces as a worker error.
            segment = retry_call(
                lambda: self._attach(name),
                policy=SHM_ATTACH_RETRY,
                seed=self._worker_id,
                label=f"shm attach {name}",
            )
            view = np.frombuffer(segment.buf, dtype=np.int64, count=3 * capacity)
            self._segments[name] = segment
            self._views[name] = view
        return unpack_columns(view, capacity, length, copy=True)

    def close(self) -> None:
        segments = list(self._segments.values())
        # Drop the views first: a mapped buffer with live exports
        # cannot be closed.
        self._segments = {}
        self._views = {}
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass


class _SharedBatchRing:
    """Driver-side ring of persistent shared-memory batch slots.

    Created once per pool (first columnar publish), sized
    ``depth × capacity × PACKED_ELEMENT_BYTES`` bytes, unlinked exactly
    once in the pool's shutdown — which runs on success and on every
    failure path, so no path leaks ``/dev/shm`` segments.  Each slot
    records its current occupant ``(seq, worker_ids)``; the pool waits
    for those workers' acks before rewriting the slot.
    """

    def __init__(self, capacity: int, depth: int) -> None:
        from multiprocessing import shared_memory

        self.capacity = capacity
        self.depth = depth
        token = f"{os.getpid():x}_{os.urandom(4).hex()}"
        self.names: List[str] = []
        self._segments: List[Any] = []
        self._views: List[np.ndarray] = []
        #: per-slot ``(seq, worker_ids)`` of the batch currently in it.
        self.occupants: List[Optional[tuple]] = [None] * depth
        try:
            for slot in range(depth):
                name = f"{SHM_NAME_PREFIX}{token}_{slot}"
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=capacity * PACKED_ELEMENT_BYTES
                )
                self._segments.append(segment)
                self.names.append(name)
                self._views.append(
                    np.frombuffer(segment.buf, dtype=np.int64, count=3 * capacity)
                )
        except BaseException:
            self.release()
            raise

    def pack(self, slot: int, batch: EdgeBatch) -> None:
        pack_columns(batch, self._views[slot], self.capacity)

    def release(self) -> None:
        """Close and unlink every segment (idempotent, never raises)."""
        self._views = []
        segments = self._segments
        self._segments = []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _worker_main(
    worker_id: int,
    specs,
    handle: StreamHandle,
    commands,
    replies,
    ack=None,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    """Worker loop: build the shard, consume commands, ship results.

    Runs unchanged as a process target and as a thread target; *ack*
    is the process backend's shared acknowledgment counter for the
    shared-memory ring (``None`` on the thread backend, which hands
    batches over by reference).  *fault_plan* is the drill harness's
    seeded fault schedule (see :mod:`repro.faults`): the
    ``"worker.batch"`` site fires once per delivered batch, *before*
    the estimators ingest it and before any shm ack — an injected
    SIGKILL therefore tears the run at the nastiest point, with a
    published-but-unacknowledged ring slot in flight.
    """
    attachments = _SegmentAttachments(worker_id, fault_plan)

    def batch_fault() -> None:
        if fault_plan is not None:
            fault_plan.fire("worker.batch", worker=worker_id)

    try:
        estimators = [spec.build(handle) for spec in specs]
        active: List[Any] = []
        replies.put(("ready", worker_id, any(e.wants_pass() for e in estimators)))
        while True:
            message = commands.get()
            command = message[0]
            if command == "batch":
                batch = message[1]
                batch_fault()
                for estimator in active:
                    estimator.ingest_batch(batch)
            elif command == "shm_batch":
                _, name, capacity, length, seq = message
                batch = attachments.batch(name, capacity, length)
                batch_fault()
                for estimator in active:
                    estimator.ingest_batch(batch)
                # The columns are copied out; the ack releases the slot
                # for reuse (monotone per worker: seqs arrive in order).
                with ack.get_lock():
                    ack.value = seq
            elif command == "begin_pass":
                active = [e for e in estimators if e.wants_pass()]
                for estimator in active:
                    estimator.begin_pass(message[1])
            elif command == "end_pass":
                for estimator in active:
                    estimator.end_pass()
                active = []
                replies.put(
                    ("pass_done", worker_id, any(e.wants_pass() for e in estimators))
                )
            elif command == "adopt_answers":
                # Scatter/merge close: the driver merged every shard's
                # pass states and broadcasts the *global* answers; each
                # replica discards its shard-partial answers and adopts
                # these, keeping all replicas in randomness lockstep
                # (see repro.engine.sharded.ShardedRunner).
                payload = message[1]
                for estimator in active:
                    estimator.end_pass_adopting(payload[estimator.name])
                active = []
                replies.put(
                    ("pass_done", worker_id, any(e.wants_pass() for e in estimators))
                )
            elif command == "collect":
                results = {e.name: e.result() for e in estimators}
                replies.put(("results", worker_id, results))
            elif command == "state_dict":
                states = {e.name: e.state_dict() for e in estimators}
                replies.put(("state", worker_id, states))
            elif command == "load_state":
                states = message[1]
                for estimator in estimators:
                    estimator.load_state_dict(states[estimator.name])
                if message[2]:
                    # Mid-pass restore: the loaded states carry open
                    # passes, so batches must flow without a begin_pass.
                    active = [e for e in estimators if e.wants_pass()]
                else:
                    # Fresh restore: a later begin_pass opens the pass.
                    active = []
                replies.put(
                    ("loaded", worker_id, any(e.wants_pass() for e in estimators))
                )
            elif command == "stop":
                return
            else:  # pragma: no cover - driver never sends unknown commands
                raise EngineError(f"unknown worker command {command!r}")
    except WorkerKilled:
        # Injected silent death (thread workers, where a real SIGKILL
        # is impossible): exit WITHOUT an error reply, so the driver's
        # silent-death probes — not the error path — must catch it.
        return
    except BaseException:
        try:
            replies.put(("error", worker_id, traceback.format_exc()))
        finally:
            return
    finally:
        attachments.close()


class _PoolBase:
    """Driver-side logic shared by the process and thread pools.

    Subclasses fill in the transport (queues, worker objects,
    terminability) and may override :meth:`publish_batch` — the base
    implementation sends the batch object itself, which is the whole
    story for threads.

    Worker loss
    -----------
    A worker that dies *silently* (SIGKILL, OOM, segfault) or stops
    making progress (wedged mid-batch past the reply timeout) raises
    :class:`~repro.errors.WorkerLossError` from whichever pool call
    noticed — unless a ``loss_handler`` is installed.  The handler is
    the recovery policy (quarantine and/or respawn: see
    :meth:`discard` / :meth:`respawn` and the live engine); it MUST
    leave every reported worker id discarded (or the loss re-raises).
    After recovery the interrupted send/gather continues against the
    survivors: discarded ids are skipped by :meth:`send`, dropped from
    a gather's outstanding set, and excluded from ring-slot waits, so
    an in-flight broadcast completes its delivery to exactly the
    workers that are still alive.  Worker ids are never reused —
    respawned workers get fresh ids — so a stale reply from a lost
    worker can always be recognized and dropped.
    """

    #: What a member of the pool is called in error messages.
    kind = "worker"

    def __init__(self, timeout: float) -> None:
        self._timeout = timeout
        # Legitimate replies pulled off the queue while probing for
        # failures mid-broadcast (a fast worker may answer an
        # ``end_pass``/``collect`` before the slowest worker received
        # it); gather() consumes these first.
        self._stashed: List[tuple] = []
        self.replies: Any = None
        self.commands: List[Any] = []
        self.processes: List[Any] = []
        self.shards: List[List[EstimatorSpec]] = []
        #: Recovery policy: ``loss_handler(worker_ids)`` or None (raise).
        self.loss_handler: Optional[Callable[[List[int]], None]] = None
        self._discarded: set = set()

    @property
    def discarded(self) -> frozenset:
        """Worker ids that were lost (dead or wedged) and written off."""
        return frozenset(self._discarded)

    def live_ids(self) -> List[int]:
        """Every worker id that has not been discarded."""
        return [w for w in range(len(self.processes)) if w not in self._discarded]

    # -- transport hooks --------------------------------------------------

    def _alive(self, worker_id: int) -> bool:
        return self.processes[worker_id].is_alive()

    def _terminate(self, worker_id: int) -> None:
        raise NotImplementedError

    def _join(self, worker_id: int, timeout: float) -> None:
        self.processes[worker_id].join(timeout=timeout)

    def _reap(self, worker_id: int) -> None:
        """Force a discarded worker down (kill + short join)."""
        self._terminate(worker_id)
        self._join(worker_id, 5.0)

    def _close_transport(self) -> None:
        """Release transport resources (queues, shared memory)."""

    # -- loss recovery -----------------------------------------------------

    def discard(self, worker_ids) -> None:
        """Write the workers off: terminate, mark dead, never reuse the id.

        Safe on already-discarded ids.  Discarded workers are skipped
        by every later send/gather/ack-wait; their stale replies (a
        wedged worker may wake up long after being written off) are
        dropped on sight.
        """
        for worker_id in worker_ids:
            if worker_id in self._discarded:
                continue
            self._discarded.add(worker_id)
            self._reap(worker_id)

    def respawn(self, worker_id: int) -> int:
        """Launch a fresh worker over *worker_id*'s shard; returns its id.

        The replacement is a brand-new worker (new id, new queue,
        fresh estimators built from the shard's specs) — the caller
        owns re-deriving its state, e.g. by replaying a journal.
        Launching retries transient spawn failures on a jittered
        exponential schedule (:data:`RESPAWN_RETRY`).
        """
        raise NotImplementedError

    def _recover(self, loss: WorkerLossError) -> None:
        """Run the loss handler for *loss*, or re-raise it.

        No handler means the historical contract: the loss aborts the
        run (as an :class:`~repro.errors.EngineError` subclass).  With
        a handler, every newly lost worker must come back discarded —
        a handler that silently ignores a loss would spin the caller
        forever, so that is treated as a fatal bug.
        """
        lost = [w for w in loss.worker_ids if w not in self._discarded]
        if not lost:
            return
        if self.loss_handler is None:
            raise loss
        self.loss_handler(list(lost))
        still = [w for w in lost if w not in self._discarded]
        if still:  # pragma: no cover - defensive: handler contract breach
            raise loss

    # -- sending ----------------------------------------------------------

    def send(self, worker_id: int, message) -> bool:
        """Put *message* on a worker's bounded queue without deadlocking.

        A worker that died mid-pass stops draining its queue; once the
        queue is full a plain ``put`` would block forever while the
        worker's error reply sits unread.  So on backpressure we probe
        the whole pool — errors raise immediately, legitimate replies
        from faster workers are stashed for the next ``gather``, and a
        silent death *anywhere* (not just the send target: the driver
        may be blocked on worker A precisely because it will never get
        to publish the batch worker B died on) aborts the run or, with
        a loss handler installed, triggers recovery and carries on.

        Returns whether the message was delivered (False: the target
        was, or became, discarded).
        """
        import queue as queue_module

        deadline = time.monotonic() + self._timeout
        while True:
            if worker_id in self._discarded:
                return False
            try:
                self.commands[worker_id].put(message, timeout=1.0)
                return True
            except queue_module.Full:
                try:
                    self.probe_failures()
                except WorkerLossError as loss:
                    self._recover(loss)
                    deadline = time.monotonic() + self._timeout
                    continue
                if time.monotonic() > deadline:
                    # The target is alive but not draining: wedged.
                    self._recover(
                        WorkerLossError(
                            f"timed out after {self._timeout}s sending to "
                            f"{self.kind} {worker_id} (command queue full; "
                            "worker wedged)",
                            worker_ids=[worker_id],
                        )
                    )
                    deadline = time.monotonic() + self._timeout

    def probe_failures(self) -> None:
        """Raise if any worker reported an error or died silently.

        Drains the reply queue (stashing legitimate replies), then
        checks liveness of every non-discarded worker.  When a dead
        worker is found with no error reply yet, waits a short grace
        period for an in-flight error message before declaring a
        silent death (:class:`~repro.errors.WorkerLossError`) — an
        erroring process may be reaped before its traceback clears
        the reply pipe.
        """
        import queue as queue_module

        while True:
            try:
                reply = self.replies.get_nowait()
            except queue_module.Empty:
                break
            if reply[1] in self._discarded:
                continue
            if reply[0] == "error":
                raise EngineError(f"{self.kind} {reply[1]} failed:\n{reply[2]}")
            self._stashed.append(reply)
        dead = [w for w in self.live_ids() if not self._alive(w)]
        if dead:
            grace = time.monotonic() + 1.0
            while time.monotonic() < grace:
                try:
                    reply = self.replies.get(timeout=0.1)
                except queue_module.Empty:
                    continue
                if reply[1] in self._discarded:
                    continue
                if reply[0] == "error":
                    raise EngineError(
                        f"{self.kind} {reply[1]} failed:\n{reply[2]}"
                    )
                self._stashed.append(reply)
            raise WorkerLossError(
                f"{self.kind}(s) {dead} died without reporting an error "
                "(command queue stalled)",
                worker_ids=dead,
            )

    def broadcast(self, worker_ids, message) -> None:
        """Send *message* to every listed worker, skipping discarded ids.

        Iterates a snapshot of *worker_ids* so a loss handler mutating
        the caller's active list mid-delivery cannot skip a survivor;
        workers discarded while the broadcast is in flight are simply
        not delivered to (their shard is gone either way).
        """
        for worker_id in list(worker_ids):
            self.send(worker_id, message)

    def publish_batch(self, worker_ids, batch) -> None:
        """Deliver one decoded batch to every listed worker.

        The base implementation enqueues the batch object itself: for
        threads that is a by-reference handoff (workers share the
        driver's arrays and lazily-built views — reads only, per the
        batch contract), with zero serialization.  The process pool
        overrides this with the shared-memory ring.
        """
        self.broadcast(worker_ids, ("batch", batch))

    # -- gathering --------------------------------------------------------

    def gather(self, kind: str, worker_ids) -> Dict[int, Any]:
        """One *kind* reply from each of *worker_ids*; abort on errors.

        Waits in short slices so a worker that dies *without* managing
        to ship an error reply (OOM kill, segfault) is noticed within
        ~a second instead of after the full reply timeout — and checks
        the whole pool, not just the workers gathered from.

        With a loss handler installed a detected loss (death or
        stalled-past-timeout) triggers recovery and the gather carries
        on with the survivors: discarded ids drop out of the
        outstanding set, so the result may be **partial** — callers in
        degrade mode own re-requesting anything a respawned worker now
        hosts.  Replies that belong to a different in-flight exchange
        (possible only across recovery boundaries) are stashed for the
        gather they answer; without a handler any unexpected reply is
        still the historical protocol-violation error.
        """
        import queue as queue_module

        outstanding = set(worker_ids) - self._discarded
        payloads: Dict[int, Any] = {}
        unmatched: List[tuple] = []
        deadline = time.monotonic() + self._timeout
        try:
            while outstanding:
                if self._stashed:
                    reply = self._stashed.pop(0)
                else:
                    try:
                        reply = self.replies.get(timeout=1.0)
                    except queue_module.Empty:
                        dead = [w for w in self.live_ids() if not self._alive(w)]
                        if dead:
                            self._recover(
                                WorkerLossError(
                                    f"{self.kind}(s) {dead} died without "
                                    "reporting an error while the driver "
                                    f"awaited {kind!r}",
                                    worker_ids=dead,
                                )
                            )
                        elif time.monotonic() > deadline:
                            self._recover(
                                WorkerLossError(
                                    f"timed out after {self._timeout}s waiting "
                                    f"for {self.kind} reply {kind!r} from "
                                    f"{sorted(outstanding)}",
                                    worker_ids=sorted(outstanding),
                                )
                            )
                        else:
                            continue
                        outstanding -= self._discarded
                        deadline = time.monotonic() + self._timeout
                        continue
                if reply[1] in self._discarded:
                    continue  # stale reply from a written-off worker
                if reply[0] == "error":
                    raise EngineError(
                        f"{self.kind} {reply[1]} failed:\n{reply[2]}"
                    )
                if reply[0] != kind or reply[1] not in outstanding:
                    if self.loss_handler is None:
                        raise EngineError(
                            f"protocol violation: expected {kind!r} from "
                            f"{sorted(outstanding)}, got {reply[0]!r} from "
                            f"{self.kind} {reply[1]}"
                        )
                    # Recovery can interleave exchanges (a respawn's
                    # "ready" gather may pull a survivor's "state"
                    # reply off the shared queue): park it for the
                    # gather it answers.
                    unmatched.append(reply)
                    continue
                outstanding.discard(reply[1])
                payloads[reply[1]] = reply[2]
            return payloads
        finally:
            if unmatched:
                self._stashed = unmatched + self._stashed

    # -- teardown ---------------------------------------------------------

    def _send_stop(self, worker_id: int) -> bool:
        """Try to enqueue ``("stop",)`` within a short bound; never block.

        The graceful path used to do a plain blocking ``put`` here — a
        worker wedged with a full command queue hung the driver
        forever.  Now a worker that cannot accept the stop within
        :data:`STOP_SEND_TIMEOUT` is terminated instead.
        """
        import queue as queue_module

        deadline = time.monotonic() + STOP_SEND_TIMEOUT
        while True:
            if not self._alive(worker_id):
                return True  # already exited; nothing to stop
            try:
                self.commands[worker_id].put(("stop",), timeout=0.25)
                return True
            except queue_module.Full:
                if time.monotonic() > deadline:
                    return False

    def shutdown(self, graceful: bool) -> None:
        """Stop every worker and release the transport; never hangs.

        Graceful: offer each worker a bounded ``stop``, terminating any
        worker that cannot take it (wedged queue).  Failure path: the
        error is already known and the workers are stateless daemons
        (likely blocked on ``commands.get()``), so kill first, reap
        after.  Both paths release the transport — including the
        shared-memory ring — in a ``finally``.
        """
        try:
            live = self.live_ids()
            if graceful:
                stopped = {w: self._send_stop(w) for w in live}
                for worker_id in live:
                    if not stopped[worker_id]:
                        self._terminate(worker_id)
                for worker_id in live:
                    self._join(worker_id, 30.0 if stopped[worker_id] else 5.0)
            else:
                for worker_id in live:
                    if self._alive(worker_id):
                        self._terminate(worker_id)
            for worker_id in live:
                if self._alive(worker_id):
                    self._terminate(worker_id)
                self._join(worker_id, 5.0)
        finally:
            self._close_transport()


class _ProcessPool(_PoolBase):
    """Worker pool over daemon processes plus the shared-memory ring."""

    def __init__(
        self,
        context,
        shards: Sequence[Sequence[EstimatorSpec]],
        handle,
        timeout: float,
        batch_capacity: int = DEFAULT_BATCH_SIZE,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(timeout)
        # Start the driver's resource tracker before any worker exists:
        # workers inherit its fd (fork and spawn both), so their
        # attach-side registrations land in the driver's tracker —
        # collapsing with the driver's own — instead of each worker
        # spinning up a private tracker that emits spurious
        # leaked-segment warnings when the worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platforms without a tracker
            pass
        self._batch_capacity = int(batch_capacity)
        self._context = context
        self._handle = handle
        self._fault_plan = fault_plan
        self._ring: Optional[_SharedBatchRing] = None
        self._next_seq = 0
        #: Batches shipped through the ring (vs pickled fallbacks) —
        #: a white-box diagnostic for tests and benchmarks.
        self.shm_batches = 0
        self.acks: List[Any] = []
        self.replies = context.Queue()
        for worker_id, shard in enumerate(shards):
            queue = context.Queue(COMMAND_QUEUE_DEPTH)
            # One shared int64 per worker: the highest ring seq the
            # worker has consumed.  Locked access on purpose — a torn
            # read could release a slot early and corrupt a batch.
            ack = context.Value("q", -1)
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id, list(shard), handle, queue, self.replies, ack,
                    fault_plan,
                ),
                daemon=True,
            )
            self.commands.append(queue)
            self.acks.append(ack)
            self.processes.append(process)
            self.shards.append(list(shard))
        try:
            for process in self.processes:
                process.start()
        except BaseException:
            # Partial startup (EAGAIN under process pressure, spawn
            # pickling error): reap whatever already launched instead
            # of leaking daemons blocked on commands.get().
            for process in self.processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            raise

    # -- transport hooks --------------------------------------------------

    def _terminate(self, worker_id: int) -> None:
        process = self.processes[worker_id]
        if process.is_alive():
            process.terminate()

    def respawn(self, worker_id: int) -> int:
        """Launch a replacement process over *worker_id*'s shard."""
        shard = list(self.shards[worker_id])
        new_id = len(self.processes)

        def launch():
            queue = self._context.Queue(COMMAND_QUEUE_DEPTH)
            ack = self._context.Value("q", -1)
            process = self._context.Process(
                target=_worker_main,
                args=(
                    new_id, list(shard), self._handle, queue, self.replies, ack,
                    self._fault_plan,
                ),
                daemon=True,
            )
            process.start()
            return queue, ack, process

        queue, ack, process = retry_call(
            launch, policy=RESPAWN_RETRY, seed=new_id,
            label=f"respawn worker {new_id}",
        )
        self.commands.append(queue)
        self.acks.append(ack)
        self.processes.append(process)
        self.shards.append(shard)
        return new_id

    def _close_transport(self) -> None:
        if self._ring is not None:
            self._ring.release()
            self._ring = None
        for queue in self.commands + [self.replies]:
            queue.close()

    # -- shared-memory publication ----------------------------------------

    def _ack_value(self, worker_id: int) -> int:
        ack = self.acks[worker_id]
        with ack.get_lock():
            return ack.value

    def _ensure_ring(self) -> _SharedBatchRing:
        if self._ring is None:
            capacity = max(1, self._batch_capacity)
            depth = max(
                2,
                min(
                    COMMAND_QUEUE_DEPTH,
                    RING_MEMORY_BUDGET // (capacity * PACKED_ELEMENT_BYTES),
                ),
            )
            self._ring = _SharedBatchRing(capacity, depth)
        return self._ring

    def _wait_for_slot(self, slot: int) -> None:
        """Block until the slot's previous occupant is fully consumed.

        This is where the ring's refcount lives: the occupant records
        which workers the batch was published to, and their ack
        counters say how far each has consumed.  Probes the whole pool
        while waiting, so a dead worker aborts instead of stalling
        until the reply timeout.
        """
        occupant = self._ring.occupants[slot]
        if occupant is None:
            return
        seq, worker_ids = occupant
        deadline = time.monotonic() + self._timeout
        while True:
            # A discarded recipient never acks its slots; its refcount
            # share is forfeited, otherwise one dead worker would
            # wedge the whole ring forever.
            pending = [
                w
                for w in worker_ids
                if w not in self._discarded and self._ack_value(w) < seq
            ]
            if not pending:
                self._ring.occupants[slot] = None
                return
            try:
                self.probe_failures()
            except WorkerLossError as loss:
                self._recover(loss)
                deadline = time.monotonic() + self._timeout
                continue
            if time.monotonic() > deadline:
                self._recover(
                    WorkerLossError(
                        f"timed out after {self._timeout}s waiting for workers "
                        f"{pending} to release shared batch #{seq}",
                        worker_ids=pending,
                    )
                )
                deadline = time.monotonic() + self._timeout
            time.sleep(0.001)

    def publish_batch(self, worker_ids, batch) -> None:
        """Publish one batch to all *worker_ids* via the ring.

        The columns are packed into shared memory **once** and every
        worker receives only a slot reference — O(1) queue bytes per
        worker instead of a full pickled copy each.  Scalar payloads
        (``columnar=False`` tuple lists) and batches larger than the
        ring capacity fall back to the pickled queue path.

        The recipient list is snapshotted *before* the slot wait: loss
        recovery inside the wait may respawn a worker into the
        caller's active list, and that replacement already receives
        this chunk via journal replay — delivering the in-flight
        publish to it as well would double-ingest the chunk.
        """
        targets = list(worker_ids)
        if not isinstance(batch, EdgeBatch) or not (
            0 < len(batch) <= self._batch_capacity
        ):
            self.broadcast(targets, ("batch", batch))
            return
        ring = self._ensure_ring()
        seq = self._next_seq
        slot = seq % ring.depth
        self._wait_for_slot(slot)
        ring.pack(slot, batch)
        ring.occupants[slot] = (seq, tuple(targets))
        self._next_seq += 1
        self.shm_batches += 1
        self.broadcast(
            targets, ("shm_batch", ring.names[slot], ring.capacity, len(batch), seq)
        )


class _ThreadPool(_PoolBase):
    """Worker pool over daemon threads — same loop, in-process queues.

    Batches are handed to workers by reference (see
    :meth:`_PoolBase.publish_batch`); the columnar kernels release the
    GIL, so the threads overlap on real work.  Threads cannot be
    terminated: a wedged worker is abandoned as a daemon (it dies with
    the process), which keeps shutdown bounded without the process
    pool's kill escalation.
    """

    kind = "thread worker"

    def __init__(
        self,
        shards: Sequence[Sequence[EstimatorSpec]],
        handle,
        timeout: float,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(timeout)
        import queue as queue_module
        import threading

        self._handle = handle
        self._fault_plan = fault_plan
        self.replies = queue_module.Queue()
        for worker_id, shard in enumerate(shards):
            queue = queue_module.Queue(COMMAND_QUEUE_DEPTH)
            thread = threading.Thread(
                target=_worker_main,
                args=(worker_id, list(shard), handle, queue, self.replies, None,
                      fault_plan),
                daemon=True,
                name=f"repro-worker-{worker_id}",
            )
            self.commands.append(queue)
            self.processes.append(thread)
            self.shards.append(list(shard))
        for thread in self.processes:
            thread.start()

    def _terminate(self, worker_id: int) -> None:
        """Threads cannot be killed; daemon threads die with the process."""

    def _reap(self, worker_id: int) -> None:
        """A wedged daemon thread is abandoned, not joined.

        Joining would block the driver on the very thread it wrote off
        — a wedged thread may sleep for hours.  Its command queue stays
        allocated but unread; discarded ids never receive new sends.
        """

    def respawn(self, worker_id: int) -> int:
        import queue as queue_module
        import threading

        shard = list(self.shards[worker_id])
        new_id = len(self.processes)

        def launch():
            queue = queue_module.Queue(COMMAND_QUEUE_DEPTH)
            thread = threading.Thread(
                target=_worker_main,
                args=(new_id, list(shard), self._handle, queue, self.replies,
                      None, self._fault_plan),
                daemon=True,
                name=f"repro-worker-{new_id}",
            )
            thread.start()
            return queue, thread

        queue, thread = retry_call(
            launch,
            policy=RESPAWN_RETRY,
            seed=new_id,
            label=f"respawn thread worker {new_id}",
        )
        self.commands.append(queue)
        self.processes.append(thread)
        self.shards.append(shard)
        return new_id

    def shutdown(self, graceful: bool) -> None:
        live = self.live_ids()
        if graceful:
            for worker_id in live:
                self._send_stop(worker_id)
        for worker_id in live:
            self.processes[worker_id].join(timeout=5.0)


#: Backwards-compatible name for the process pool (the historical
#: single-backend pool class).
_WorkerPool = _ProcessPool


def _make_context(start_method: Optional[str]):
    import multiprocessing
    import sys

    if start_method is None:
        # Prefer fork only where it is the safe platform default
        # (Linux): macOS lists fork but made spawn the default in 3.8
        # because forking there can crash in system frameworks.
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
    return multiprocessing.get_context(start_method)


def make_worker_pool(
    backend: str,
    shards: Sequence[Sequence[EstimatorSpec]],
    handle,
    timeout: float,
    start_method: Optional[str] = None,
    batch_capacity: int = DEFAULT_BATCH_SIZE,
    fault_plan: Optional[FaultPlan] = None,
):
    """Build the worker pool for a parallel backend (thread or process).

    *batch_capacity* sizes the process pool's shared-memory ring slots;
    pass the driver's batch size so every columnar batch fits (larger
    batches still work — they fall back to the pickled queue path).
    *fault_plan* ships a :class:`~repro.faults.FaultPlan` to every
    worker so drills can kill/wedge them at chosen batches.
    """
    from repro.engine.core import EngineBackend

    if backend == EngineBackend.THREAD:
        return _ThreadPool(shards, handle, timeout, fault_plan=fault_plan)
    if backend == EngineBackend.PROCESS:
        return _ProcessPool(
            _make_context(start_method),
            shards,
            handle,
            timeout,
            batch_capacity,
            fault_plan=fault_plan,
        )
    raise EngineError(f"no worker pool for backend {backend!r}")


def run_parallel_engine(
    stream: EdgeStream,
    specs: Sequence[EstimatorSpec],
    backend: str = "process",
    workers: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    start_method: Optional[str] = None,
    reset_pass_count: bool = True,
    max_passes: int = 0,
    reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    columnar: bool = True,
    cache=None,
    on_worker_loss: str = "abort",
    fault_plan: Optional[FaultPlan] = None,
) -> EngineReport:
    """Drive *specs* to completion across a worker pool.

    The parallel counterpart of :meth:`StreamEngine.run` — normally
    reached through ``StreamEngine(..., backend="process")`` or
    ``backend="thread"`` rather than called directly.  Specs are
    sharded contiguously across ``resolve_workers(workers, len(specs))``
    workers; the returned report's ``dispatches`` counts batch
    *publications* (batches × active workers) and ``workers`` records
    the pool size.

    With *columnar* (the default) the process backend publishes each
    :class:`~repro.streams.batch.EdgeBatch` through the shared-memory
    ring — the columns are written once, each worker gets a slot
    reference — and the thread backend hands the batch object over
    directly; workers rebuild the decoded views lazily on their side.

    *cache* applies a batch-cache policy to the **driver's** stream
    (see :mod:`repro.streams.cache`): the driver is the only
    participant that decodes, so its policy decides whether a later
    fused pass re-reads from memory or from disk.  Workers always
    consume the published buffers they receive — they never assume a
    cached batch exists on their side of the boundary.

    *on_worker_loss* selects the policy when a worker dies silently
    (SIGKILL, OOM) or wedges past *reply_timeout*: ``"abort"`` (the
    default) raises :class:`~repro.errors.WorkerLossError`;
    ``"degrade"`` writes the worker's shard off and finishes the run on
    the survivors — the report then carries ``degraded=True`` and the
    lost estimator names in ``lost``, and each surviving estimate is
    bit-identical to a run configured without the lost copies.
    """
    from repro.engine.core import EngineBackend

    if backend not in (EngineBackend.PROCESS, EngineBackend.THREAD):
        raise EngineError(
            f"run_parallel_engine drives the parallel backends "
            f"{(EngineBackend.THREAD, EngineBackend.PROCESS)}, got {backend!r}"
        )
    if on_worker_loss not in ("abort", "degrade"):
        raise EngineError(
            f"on_worker_loss must be 'abort' or 'degrade', got {on_worker_loss!r}"
        )
    if not specs:
        raise EngineError("no estimator specs registered")
    try:
        batch_size = check_batch_size(batch_size)
    except StreamError as error:
        raise EngineError(str(error)) from error
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise EngineError(f"duplicate estimator names in specs: {names}")

    pool_size = resolve_workers(workers, len(specs))
    shards = [
        [specs[i] for i in indices] for indices in shard_indices(len(specs), pool_size)
    ]
    handle = StreamHandle.of(stream)
    apply_cache_policy(stream, cache)
    if reset_pass_count:
        stream.reset_pass_count()

    pool = make_worker_pool(
        backend,
        shards,
        handle,
        reply_timeout,
        start_method=start_method,
        batch_capacity=batch_size,
        fault_plan=fault_plan,
    )
    lost_workers: set = set()
    if on_worker_loss == "degrade":
        def quarantine(lost: List[int]) -> None:
            pool.discard(lost)
            lost_workers.update(lost)

        pool.loss_handler = quarantine
    graceful = False
    try:
        wants = pool.gather("ready", range(pool_size))
        passes = 0
        elements = 0
        dispatches = 0
        while True:
            active = [
                worker_id
                for worker_id in pool.live_ids()
                if wants.get(worker_id, False)
            ]
            if not active:
                break
            if max_passes and passes >= max_passes:
                raise EngineError(
                    f"workers {active} still want passes after "
                    f"max_passes={max_passes}"
                )
            pool.broadcast(active, ("begin_pass", passes))
            for batch in pass_batches(stream, batch_size, columnar):
                elements += len(batch)
                pool.publish_batch(active, batch)
                dispatches += len(active)
            pool.broadcast(active, ("end_pass",))
            wants.update(pool.gather("pass_done", active))
            passes += 1

        collectors = pool.live_ids()
        if not collectors:
            raise EngineError(
                f"all {pool_size} workers were lost "
                f"(worker ids {sorted(lost_workers)}); no estimates survive"
            )
        pool.broadcast(collectors, ("collect",))
        shard_results = pool.gather("results", collectors)
        graceful = True
    finally:
        pool.shutdown(graceful)

    lost_names = sorted(
        {spec.name for worker_id in pool.discarded for spec in pool.shards[worker_id]}
    )
    results: Dict[str, Any] = {}
    for payload in shard_results.values():
        results.update(payload)
    surviving = [name for name in names if name not in lost_names]
    missing = [name for name in surviving if name not in results]
    if missing:
        raise EngineError(f"workers returned no result for {missing}")
    if not surviving:  # pragma: no cover - guarded by the collectors check
        raise EngineError("all estimator shards were lost; no estimates survive")
    return EngineReport(
        results={name: results[name] for name in surviving},
        passes=passes,
        elements=elements,
        dispatches=dispatches,
        batch_size=batch_size,
        workers=pool_size,
        degraded=bool(lost_names),
        lost=tuple(lost_names),
    )


def run_process_engine(
    stream: EdgeStream,
    specs: Sequence[EstimatorSpec],
    workers: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    start_method: Optional[str] = None,
    reset_pass_count: bool = True,
    max_passes: int = 0,
    reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    columnar: bool = True,
    cache=None,
    on_worker_loss: str = "abort",
    fault_plan: Optional[FaultPlan] = None,
) -> EngineReport:
    """Drive *specs* across a process pool (see :func:`run_parallel_engine`).

    Kept as the historical entry point; equivalent to
    ``run_parallel_engine(..., backend="process")``.
    """
    return run_parallel_engine(
        stream,
        specs,
        backend="process",
        workers=workers,
        batch_size=batch_size,
        start_method=start_method,
        reset_pass_count=reset_pass_count,
        max_passes=max_passes,
        reply_timeout=reply_timeout,
        columnar=columnar,
        cache=cache,
        on_worker_loss=on_worker_loss,
        fault_plan=fault_plan,
    )
