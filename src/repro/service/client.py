"""A small blocking client for the ``repro serve`` protocol.

One TCP connection, one request/response per call, newline-delimited
JSON both ways (:mod:`repro.service.protocol`).  Server refusals come
back as raised :class:`~repro.errors.ServiceError` (the message names
the server-side error type), so admission failures stay typed on the
client side too::

    with ServiceClient(host, port) as client:
        client.open("tenant-a", config={"n": 512, "estimator": "triest",
                                        "copies": 3, "seed": 7})
        client.feed("tenant-a", u=[0, 1], v=[3, 4])
        print(client.estimate("tenant-a")["median"])
        client.close_stream("tenant-a")

Used by the tests, the CI ``service-smoke`` drill, and
``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceError
from repro.service.protocol import MAX_LINE_BYTES, encode_message

__all__ = ["ServiceClient"]


def _as_int_list(column: Optional[Sequence[int]]) -> Optional[List[int]]:
    if column is None:
        return None
    return [int(value) for value in column]


class ServiceClient:
    """Blocking line-protocol client; safe from one thread at a time."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ---------------------------------------------------------

    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request object; returns the ``ok`` response body.

        Raises :class:`~repro.errors.ServiceError` on a refusal (the
        message carries the server's error type and text) or when the
        connection drops mid-exchange.
        """
        import json

        self._file.write(encode_message(doc))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES + 1024)
        if not line:
            raise ServiceError(
                "the service closed the connection mid-request"
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except Exception as error:
            raise ServiceError(
                f"malformed response from the service: {error}"
            ) from error
        if not isinstance(response, dict) or "ok" not in response:
            raise ServiceError(
                f"malformed response from the service: {response!r}"
            )
        if not response["ok"]:
            raise ServiceError(
                f"{response.get('error', 'ServiceError')}: "
                f"{response.get('message', 'refused')}"
            )
        return response

    def close(self) -> None:
        """Drop the connection (streams on the server stay open)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- commands ---------------------------------------------------------

    def open(self, stream: str,
             config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"cmd": "open", "stream": stream}
        if config is not None:
            doc["config"] = config
        return self.request(doc)

    def feed(self, stream: str, u: Sequence[int], v: Sequence[int],
             delta: Optional[Sequence[int]] = None) -> Dict[str, Any]:
        updates: Dict[str, Any] = {"u": _as_int_list(u),
                                   "v": _as_int_list(v)}
        if delta is not None:
            updates["delta"] = _as_int_list(delta)
        return self.request({"cmd": "feed", "stream": stream,
                             "updates": updates})

    def estimate(self, stream: str,
                 names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"cmd": "estimate", "stream": stream}
        if names is not None:
            doc["names"] = list(names)
        return self.request(doc)

    def checkpoint(self, stream: str,
                   mode: Optional[str] = None) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"cmd": "checkpoint", "stream": stream}
        if mode is not None:
            doc["mode"] = mode
        return self.request(doc)

    def status(self, stream: Optional[str] = None,
               estimate: bool = False) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"cmd": "status"}
        if stream is not None:
            doc["stream"] = stream
        if estimate:
            doc["estimate"] = True
        return self.request(doc)

    def close_stream(self, stream: str,
                     checkpoint: bool = True) -> Dict[str, Any]:
        return self.request({"cmd": "close", "stream": stream,
                             "checkpoint": checkpoint})

    def kill(self, stream: str) -> Dict[str, Any]:
        """Chaos drill: drop the stream with no final checkpoint."""
        return self.request({"cmd": "kill", "stream": stream})
