"""Multi-tenant live service: many named streams under one roof.

:mod:`repro.service` multiplexes many named :class:`~repro.engine.live.
LiveEngine` instances behind one registry and one wire protocol:

* :class:`~repro.service.registry.StreamRegistry` — owns the engines.
  ``open`` lazily **restores-on-open** from a per-stream checkpoint
  directory (so a killed tenant comes back bit-identical to one that
  never stopped), ``feed``/``estimate``/``checkpoint``/``close`` operate
  per stream, and per-stream :class:`~repro.service.registry.
  CheckpointPolicy` scheduling writes delta snapshots every N elements
  or T seconds without the client asking.
* :class:`~repro.service.registry.ServiceLimits` — admission control
  and backpressure: ``max_streams``, ``max_feed_bytes`` in flight,
  and a per-stream journal watermark.  Every refusal is a typed,
  **non-destructive** :class:`~repro.errors.ServiceError`.
* :mod:`~repro.service.protocol` — the newline-delimited JSON codec
  (``open`` / ``feed`` / ``estimate`` / ``checkpoint`` / ``status`` /
  ``close`` / ``kill``) shared by the server and the client.
* :mod:`~repro.service.server` — the asyncio front end behind
  ``repro serve``: one **writer task per stream** serializes engine
  calls (the engine's feed re-entrancy guard is never tripped), while
  distinct streams make progress independently.
  :class:`~repro.service.server.ServerThread` runs the same server on
  a background thread for tests and benchmarks.
* :class:`~repro.service.client.ServiceClient` — a small blocking
  client speaking the protocol, used by the tests, the CI smoke
  drill, and ``benchmarks/bench_service.py``.
"""

from repro.service.client import ServiceClient
from repro.service.registry import (
    CheckpointPolicy,
    ServiceLimits,
    StreamConfig,
    StreamRegistry,
    feed_nbytes,
)
from repro.service.server import ServerThread, StreamServer

__all__ = [
    "CheckpointPolicy",
    "ServiceClient",
    "ServiceLimits",
    "ServerThread",
    "StreamConfig",
    "StreamRegistry",
    "StreamServer",
    "feed_nbytes",
]
