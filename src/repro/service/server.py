"""The asyncio front end behind ``repro serve``.

One :class:`StreamServer` listens on a TCP port, speaks the newline-
delimited JSON protocol of :mod:`repro.service.protocol`, and routes
every per-stream command through that stream's single **writer task**:
an :class:`asyncio.Queue` drained by one coroutine that executes engine
calls on the default thread-pool executor.  This is what makes the
service safe to drive from many concurrent connections —
:meth:`~repro.engine.live.LiveEngine.feed` has a re-entrancy guard and
its estimate/snapshot paths assume no feed is mid-flight, so all of a
stream's operations are strictly ordered here, while *different*
streams progress independently.

Backpressure happens **at enqueue time**: a ``feed`` first reserves its
payload bytes against the registry's in-flight budget and is refused
with a typed :class:`~repro.errors.ServiceError` before anything is
buffered; the reservation is released when the feed has been applied
(or failed).

:class:`ServerThread` runs the same server on a daemon thread with an
ephemeral port — the harness used by the tests, the CI smoke drill,
and ``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_request,
    encode_message,
    error_response,
    ok_response,
    results_to_wire,
    updates_from_wire,
)
from repro.service.registry import (
    CheckpointPolicy,
    StreamConfig,
    StreamRegistry,
    feed_nbytes,
)

__all__ = ["ServerThread", "StreamServer", "run_server"]


class _Writer:
    """One stream's command queue and the task draining it."""

    def __init__(self, queue: "asyncio.Queue", task: "asyncio.Task") -> None:
        self.queue = queue
        self.task = task


class StreamServer:
    """The asyncio service; see the module docstring."""

    def __init__(
        self,
        registry: StreamRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[str, _Writer] = {}

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port,
            limit=MAX_LINE_BYTES + 1024,
        )
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        return self._host, self._port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting and tear down writers and live connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for name in list(self._writers):
            await self._retire_writer(name)
        current = asyncio.current_task()
        leftovers = [task for task in asyncio.all_tasks()
                     if task is not current and not task.done()]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    # -- per-stream writer tasks ------------------------------------------

    def _spawn_writer(self, name: str) -> None:
        queue: "asyncio.Queue" = asyncio.Queue()
        task = asyncio.get_running_loop().create_task(
            self._writer_loop(name, queue)
        )
        self._writers[name] = _Writer(queue, task)

    async def _retire_writer(self, name: str) -> None:
        writer = self._writers.pop(name, None)
        if writer is None:
            return
        writer.queue.put_nowait(None)
        try:
            await asyncio.wait_for(writer.task, timeout=30)
        except asyncio.TimeoutError:
            writer.task.cancel()

    async def _writer_loop(self, name: str, queue: "asyncio.Queue") -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is None:
                return
            fn, future, nbytes = item
            try:
                result = await loop.run_in_executor(None, fn)
            except BaseException as error:
                if not future.cancelled():
                    future.set_exception(error)
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                if nbytes:
                    self.registry.release_feed_bytes(nbytes)

    async def _submit(self, name: str, fn, nbytes: int = 0):
        """Run *fn* on the stream's writer task; awaits the result.

        The caller must have reserved *nbytes* already; the writer
        releases them when the operation finishes either way.
        """
        writer = self._writers.get(name)
        if writer is None:
            if nbytes:
                self.registry.release_feed_bytes(nbytes)
            raise ServiceError(
                f"stream {name!r} is not open (open it first; open "
                f"restores from its checkpoint if one exists)"
            )
        future = asyncio.get_running_loop().create_future()
        writer.queue.put_nowait((fn, future, nbytes))
        return await future

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # An over-long line cannot be resynchronized: answer
                    # once and drop the connection.
                    writer.write(encode_message(error_response(ServiceError(
                        f"request line exceeds the {MAX_LINE_BYTES}-byte "
                        f"protocol limit; split the feed"
                    ))))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                    response = await self._dispatch(request)
                except ReproError as error:
                    response = error_response(error)
                except Exception as error:  # pragma: no cover - safety net
                    response = error_response(error)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown tears live connections down
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    # -- command dispatch --------------------------------------------------

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        cmd = request["cmd"]
        handler = getattr(self, f"_cmd_{cmd}")
        return await handler(request)

    async def _cmd_open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["stream"]
        config = None
        if request.get("config") is not None:
            config = StreamConfig.from_wire(request["config"])
        loop = asyncio.get_running_loop()
        status = await loop.run_in_executor(
            None, lambda: self.registry.open(name, config)
        )
        # The registry's table lock makes open() first-wins; only the
        # winner reaches this line, so the writer spawn cannot race.
        self._spawn_writer(name)
        return ok_response(**status)

    async def _cmd_feed(self, request: Dict[str, Any]) -> Dict[str, Any]:
        import numpy as np

        name = request["stream"]
        u, v, delta = updates_from_wire(request.get("updates"))
        columns = (np.asarray(u, dtype=np.int64),
                   np.asarray(v, dtype=np.int64),
                   np.asarray(delta, dtype=np.int64))
        nbytes = feed_nbytes(columns)
        self.registry.reserve_feed_bytes(nbytes)
        result = await self._submit(
            name, lambda: self.registry.feed(name, columns),
            nbytes=nbytes,
        )
        return ok_response(**result)

    async def _cmd_estimate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["stream"]
        names = request.get("names")
        results = await self._submit(
            name, lambda: self.registry.estimate(name, names)
        )
        from repro.engine.live import median_estimate

        return ok_response(
            stream=name,
            estimates=results_to_wire(results),
            median=median_estimate(results),
        )

    async def _cmd_checkpoint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["stream"]
        mode = request.get("mode")
        path = await self._submit(
            name, lambda: self.registry.checkpoint(name, mode=mode)
        )
        return ok_response(stream=name, path=path)

    async def _cmd_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("stream")
        estimate = bool(request.get("estimate"))
        loop = asyncio.get_running_loop()
        if name is not None:
            status = await self._submit(
                name, lambda: self.registry.status(name, estimate=estimate)
            )
            return ok_response(**status)
        # Registry-wide: the summary is lock-protected, but per-stream
        # estimate gathers must be ordered behind each stream's feeds —
        # route them through the writers.
        summary = await loop.run_in_executor(
            None, lambda: self.registry.status(None)
        )
        if estimate:
            for stream in list(summary["streams"]):
                try:
                    summary["streams"][stream] = await self._submit(
                        stream,
                        lambda s=stream: self.registry.status(
                            s, estimate=True),
                    )
                except ReproError:
                    pass  # closed between the summary and the gather
        return ok_response(**summary)

    async def _cmd_close(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["stream"]
        checkpoint = bool(request.get("checkpoint", True))
        result = await self._submit(
            name, lambda: self.registry.close(name, checkpoint=checkpoint)
        )
        await self._retire_writer(name)
        return ok_response(**result)

    async def _cmd_kill(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["stream"]
        result = await self._submit(name, lambda: self.registry.kill(name))
        await self._retire_writer(name)
        return ok_response(**result)


class ServerThread:
    """Run a :class:`StreamServer` on a daemon thread (tests/benchmarks).

    Context-manager usage::

        with ServerThread(root=tmpdir) as server:
            client = ServiceClient(server.host, server.port)
            ...

    Extra keyword arguments build the :class:`~repro.service.registry.
    StreamRegistry` (``root``, ``limits``, ``default_policy``) unless a
    ready registry is passed.  Exit stops the loop and closes every
    stream **with** a final checkpoint — the graceful-shutdown path;
    use the ``kill`` command for crash drills.
    """

    def __init__(
        self,
        registry: Optional[StreamRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **registry_kwargs: Any,
    ) -> None:
        if registry is not None and registry_kwargs:
            raise ServiceError(
                "pass either a registry or registry kwargs, not both"
            )
        self.registry = registry if registry is not None \
            else StreamRegistry(**registry_kwargs)
        self.host = host
        self.port = port
        self.server: Optional[StreamServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("service thread failed to start in time")
        if self._error is not None:
            raise ServiceError(
                f"service thread failed to start: {self._error}"
            ) from self._error
        return self

    def _thread_main(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self.server = StreamServer(self.registry, self.host, self.port)
        try:
            self.host, self.port = self._loop.run_until_complete(
                self.server.start()
            )
        except BaseException as error:
            self._error = error
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self, checkpoint: bool = True) -> None:
        if self._thread is not None and self._thread.is_alive():
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
        self.registry.close_all(checkpoint=checkpoint)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_server(
    registry: StreamRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
) -> int:
    """Blocking entry point for ``repro serve``; returns an exit code."""

    async def _main() -> None:
        server = StreamServer(registry, host, port)
        bound_host, bound_port = await server.start()
        print(f"serving on {bound_host}:{bound_port} "
              f"(root={registry.root or 'none — durability disabled'}, "
              f"max_streams={registry.limits.max_streams})", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        registry.close_all(checkpoint=True)
    return 0
