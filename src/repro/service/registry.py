"""The stream registry: many named live engines, one owner.

A :class:`StreamRegistry` maps stream names to
:class:`~repro.engine.live.LiveEngine` instances and carries the three
service concerns the engine itself stays ignorant of:

* **Durability placement** — each stream checkpoints into its own
  subdirectory of the registry root (``<root>/<name>/checkpoint.reb``
  plus the engine's ``.delta.NNNNN`` tails), and :meth:`StreamRegistry.
  open` *restores-on-open*: if a checkpoint exists for the name, the
  stream comes back from it bit-identical to a tenant that never
  stopped.
* **Checkpoint scheduling** — a per-stream :class:`CheckpointPolicy`
  (every N elements and/or every T seconds, delta mode with base
  rotation) is evaluated after each feed, reusing
  :meth:`~repro.engine.live.LiveEngine.snapshot` unchanged.
* **Admission and backpressure** — :class:`ServiceLimits` bound the
  number of open streams, the bytes of feed payload in flight, and the
  per-stream journal length.  Hitting a limit raises a typed
  :class:`~repro.errors.ServiceError` and leaves the registry exactly
  as it was: refusals are non-destructive by contract.

The registry is thread-safe for its table operations (open/close/kill/
status), but **per-stream calls are not serialized here** — callers
that interleave feeds and estimates concurrently on one stream must
order them (the asyncio server does this with one writer task per
stream).
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.live import DEFAULT_MAX_DELTAS, LiveEngine, median_estimate
from repro.engine.parallel import EstimatorSpec
from repro.errors import EngineError, EstimationError, ReproError, ServiceError

__all__ = [
    "CheckpointPolicy",
    "ServiceLimits",
    "StreamConfig",
    "StreamRegistry",
    "feed_nbytes",
]

#: Stream names double as checkpoint directory names, so they are
#: restricted to a single safe path component.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

CHECKPOINT_FILENAME = "checkpoint.reb"


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ServiceError(
            f"invalid stream name {name!r}: names are 1-64 characters of "
            f"[A-Za-z0-9_.-] starting with an alphanumeric (they double "
            f"as checkpoint directory names)"
        )
    return name


def feed_nbytes(updates) -> int:
    """Approximate payload bytes of a feed chunk (for admission).

    Counts 8 bytes per int64 column element for array-like columns and
    falls back to the same figure for plain sequences; the point is a
    stable, cheap bound for the in-flight budget, not an exact size.
    """
    if isinstance(updates, dict):
        columns = [updates.get("u", ()), updates.get("v", ()),
                   updates.get("delta", ())]
    elif isinstance(updates, tuple) and len(updates) in (2, 3):
        columns = list(updates)
    else:
        columns = [updates]
    total = 0
    for column in columns:
        nbytes = getattr(column, "nbytes", None)
        if nbytes is not None:
            total += int(nbytes)
        else:
            try:
                total += 8 * len(column)
            except TypeError:
                total += 8
    return total


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and how a stream checkpoints itself.

    ``every_elements`` triggers after that many journaled updates since
    the last snapshot; ``every_seconds`` after that much wall time.
    Either, both, or neither may be set — with neither, only explicit
    ``checkpoint`` commands (and the final snapshot on ``close``) write
    anything.  ``mode="delta"`` (the default) writes O(updates-since-
    base) journal tails with base rotation after ``max_deltas`` tails,
    exactly as :meth:`~repro.engine.live.LiveEngine.snapshot` does.
    """

    every_elements: Optional[int] = None
    every_seconds: Optional[float] = None
    mode: str = "delta"
    max_deltas: int = DEFAULT_MAX_DELTAS

    def __post_init__(self) -> None:
        if self.every_elements is not None and self.every_elements < 1:
            raise ServiceError(
                f"checkpoint every_elements must be >= 1, "
                f"got {self.every_elements}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ServiceError(
                f"checkpoint every_seconds must be > 0, "
                f"got {self.every_seconds}"
            )
        if self.mode not in ("full", "delta"):
            raise ServiceError(
                f"checkpoint mode must be 'full' or 'delta', got {self.mode!r}"
            )
        if self.max_deltas < 1:
            raise ServiceError(
                f"checkpoint max_deltas must be >= 1, got {self.max_deltas}"
            )

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "CheckpointPolicy":
        if not isinstance(doc, dict):
            raise ServiceError(
                f"checkpoint policy must be an object, got {type(doc).__name__}"
            )
        known = {"every_elements", "every_seconds", "mode", "max_deltas"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ServiceError(
                f"unknown checkpoint policy field(s): {', '.join(unknown)}"
            )
        return cls(**doc)


@dataclass(frozen=True)
class ServiceLimits:
    """Admission/backpressure knobs enforced by the registry.

    * ``max_streams`` — open refuses once this many streams exist.
    * ``max_feed_bytes`` — total feed payload bytes *in flight* (queued
      or being applied); the asyncio server reserves at enqueue time
      via :meth:`StreamRegistry.reserve_feed_bytes` so a flood of
      writers is refused before it is buffered, not after OOM.
    * ``max_journal_elements`` — per-stream high watermark on the
      journal length: a feed that would push a stream past it is
      refused whole (the journal is the engine's replay source, so it
      grows without bound unless the tenant is closed or bounded here).
    """

    max_streams: int = 64
    max_feed_bytes: int = 64 << 20
    max_journal_elements: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise ServiceError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )
        if self.max_feed_bytes < 1:
            raise ServiceError(
                f"max_feed_bytes must be >= 1, got {self.max_feed_bytes}"
            )
        if (self.max_journal_elements is not None
                and self.max_journal_elements < 1):
            raise ServiceError(
                f"max_journal_elements must be >= 1, "
                f"got {self.max_journal_elements}"
            )


#: Declarative estimator names accepted over the wire, mapped to the
#: spec factories the engine rebuilds workers from.
def _wire_factories():
    from repro.engine.estimators import (
        fgp_insertion_estimator,
        fgp_turnstile_estimator,
        fgp_two_pass_estimator,
    )
    from repro.engine.parallel import build_triest

    return {
        "insertion": fgp_insertion_estimator,
        "turnstile": fgp_turnstile_estimator,
        "two-pass": fgp_two_pass_estimator,
        "triest": build_triest,
    }


@dataclass(frozen=True)
class StreamConfig:
    """Everything needed to create a stream's engine from scratch.

    In-process callers pass explicit :class:`~repro.engine.parallel.
    EstimatorSpec` recipes; wire callers send the declarative form
    (``estimator``/``copies``/``pattern``/``seed``/...) which
    :meth:`from_wire` expands to the same specs the CLI builds.
    """

    n: int
    allow_deletions: bool = False
    batch_size: int = 4096
    specs: Tuple[EstimatorSpec, ...] = ()
    backend: str = "serial"
    workers: Optional[int] = None
    checkpoint: Optional[CheckpointPolicy] = None

    def __post_init__(self) -> None:
        if not self.specs:
            raise ServiceError(
                "a stream config must register at least one estimator spec"
            )
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "StreamConfig":
        """Build a config from the JSON ``open`` payload.

        Required: ``n``, ``estimator`` (one of ``insertion``,
        ``turnstile``, ``two-pass``, ``triest``).  Optional:
        ``copies`` (default 3), ``seed`` (default 0), ``pattern``
        (zoo name, default ``triangle``), ``trials`` (FGP counters),
        ``capacity`` (triest reservoir, default 256),
        ``allow_deletions``, ``batch_size``, ``backend``, ``workers``,
        ``checkpoint`` (a :class:`CheckpointPolicy` object).
        """
        if not isinstance(doc, dict):
            raise ServiceError(
                f"stream config must be an object, got {type(doc).__name__}"
            )
        known = {"n", "estimator", "copies", "seed", "pattern", "trials",
                 "capacity", "allow_deletions", "batch_size", "backend",
                 "workers", "checkpoint"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ServiceError(
                f"unknown stream config field(s): {', '.join(unknown)}"
            )
        missing = sorted({"n", "estimator"} - set(doc))
        if missing:
            raise ServiceError(
                f"stream config is missing required field(s): "
                f"{', '.join(missing)}"
            )
        factories = _wire_factories()
        kind = doc["estimator"]
        if kind not in factories:
            raise ServiceError(
                f"unknown estimator {kind!r}; expected one of "
                f"{sorted(factories)}"
            )
        copies = int(doc.get("copies", 3))
        if copies < 1:
            raise ServiceError(f"copies must be >= 1, got {copies}")
        seed = int(doc.get("seed", 0))
        factory = factories[kind]
        specs: List[EstimatorSpec] = []
        for index in range(copies):
            name = f"copy-{index}"
            if kind == "triest":
                kwargs: Dict[str, Any] = dict(
                    capacity=int(doc.get("capacity", 256)),
                    rng=seed + 1 + index,
                    name=name,
                )
            else:
                from repro.cli import parse_pattern

                kwargs = dict(
                    pattern=parse_pattern(doc.get("pattern", "triangle")),
                    trials=doc.get("trials"),
                    rng=seed + 1 + index,
                    name=name,
                )
            specs.append(EstimatorSpec(name=name, factory=factory,
                                       kwargs=kwargs))
        allow_deletions = bool(doc.get("allow_deletions",
                                       kind == "turnstile"))
        policy = doc.get("checkpoint")
        if isinstance(policy, dict):
            policy = CheckpointPolicy.from_wire(policy)
        elif policy is not None and not isinstance(policy, CheckpointPolicy):
            raise ServiceError(
                f"stream config 'checkpoint' must be a policy object, "
                f"got {type(policy).__name__}"
            )
        try:
            return cls(
                n=int(doc["n"]),
                allow_deletions=allow_deletions,
                batch_size=int(doc.get("batch_size", 4096)),
                specs=tuple(specs),
                backend=doc.get("backend", "serial"),
                workers=doc.get("workers"),
                checkpoint=policy,
            )
        except (TypeError, ValueError) as error:
            raise ServiceError(f"invalid stream config: {error}") from error


@dataclass
class _StreamEntry:
    name: str
    engine: LiveEngine
    policy: Optional[CheckpointPolicy]
    checkpoint_path: Optional[str]
    opened_monotonic: float
    restored: bool = False
    elements_at_checkpoint: int = 0
    last_checkpoint_monotonic: float = 0.0
    checkpoints_written: int = 0
    checkpoint_stall_s: float = 0.0
    feeds: int = 0
    queries: int = 0
    refusals: int = 0


class StreamRegistry:
    """Owns many named live engines; see the module docstring.

    *root* is the checkpoint directory (one subdirectory per stream);
    ``None`` disables durability — ``checkpoint`` commands then refuse
    and ``close`` skips the final snapshot.  *default_policy* applies
    to streams whose config carries no policy of its own.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        limits: Optional[ServiceLimits] = None,
        default_policy: Optional[CheckpointPolicy] = None,
        clock=time.monotonic,
    ) -> None:
        self._root = None if root is None else os.fspath(root)
        self.limits = limits if limits is not None else ServiceLimits()
        self._default_policy = default_policy
        self._clock = clock
        self._streams: Dict[str, _StreamEntry] = {}
        self._lock = threading.RLock()
        self._inflight_bytes = 0
        self._closed = False

    # -- table ------------------------------------------------------------

    @property
    def root(self) -> Optional[str]:
        return self._root

    @property
    def streams(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    @property
    def inflight_bytes(self) -> int:
        with self._lock:
            return self._inflight_bytes

    def _entry(self, name: str) -> _StreamEntry:
        with self._lock:
            entry = self._streams.get(name)
        if entry is None:
            raise ServiceError(
                f"stream {name!r} is not open (open it first; open "
                f"restores from its checkpoint if one exists)"
            )
        return entry

    def _checkpoint_path(self, name: str) -> Optional[str]:
        if self._root is None:
            return None
        return os.path.join(self._root, name, CHECKPOINT_FILENAME)

    def has_checkpoint(self, name: str) -> bool:
        """Whether a prior life of *name* left a restorable checkpoint."""
        path = self._checkpoint_path(_check_name(name))
        return path is not None and os.path.exists(path)

    # -- admission accounting (used by the async server) ------------------

    def reserve_feed_bytes(self, nbytes: int) -> None:
        """Admit *nbytes* of feed payload into the in-flight budget.

        Raises :class:`~repro.errors.ServiceError` (reserving nothing)
        when the budget would be exceeded; pair every successful
        reservation with :meth:`release_feed_bytes`.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ServiceError(f"cannot reserve {nbytes} bytes")
        with self._lock:
            budget = self.limits.max_feed_bytes
            if self._inflight_bytes + nbytes > budget:
                raise ServiceError(
                    f"feed of {nbytes} bytes refused: {self._inflight_bytes} "
                    f"bytes already in flight against a max_feed_bytes "
                    f"budget of {budget}; drain pending feeds and retry"
                )
            self._inflight_bytes += nbytes

    def release_feed_bytes(self, nbytes: int) -> None:
        with self._lock:
            self._inflight_bytes = max(0, self._inflight_bytes - int(nbytes))

    # -- lifecycle --------------------------------------------------------

    def open(
        self,
        name: str,
        config: Optional[StreamConfig] = None,
    ) -> Dict[str, Any]:
        """Open (or lazily restore) the named stream; returns its status.

        If the registry root holds a checkpoint for *name*, the stream
        is **restored from it** — bit-identical to a tenant that never
        stopped — and *config* (if any) only supplies the execution
        backend.  Otherwise *config* is required and a fresh engine is
        built from its specs.  Refuses (non-destructively) when the
        name is taken or ``max_streams`` is reached.
        """
        _check_name(name)
        with self._lock:
            if self._closed:
                raise ServiceError("the registry has been closed")
            if name in self._streams:
                raise ServiceError(
                    f"stream {name!r} is already open (close it first, or "
                    f"query it with status/estimate)"
                )
            if len(self._streams) >= self.limits.max_streams:
                raise ServiceError(
                    f"cannot open stream {name!r}: {len(self._streams)} "
                    f"stream(s) already open against a max_streams limit "
                    f"of {self.limits.max_streams}"
                )
            path = self._checkpoint_path(name)
            restored = False
            if path is not None and os.path.exists(path):
                engine = LiveEngine.restore(
                    path,
                    backend=None if config is None else config.backend,
                    workers=None if config is None else config.workers,
                )
                restored = True
            else:
                if config is None:
                    raise ServiceError(
                        f"stream {name!r} has no checkpoint to restore "
                        f"from; opening it needs a config"
                    )
                engine = LiveEngine(
                    n=config.n,
                    allow_deletions=config.allow_deletions,
                    batch_size=config.batch_size,
                    backend=config.backend,
                    workers=config.workers,
                )
                for spec in config.specs:
                    engine.register_spec(spec)
            policy = (config.checkpoint if config is not None
                      and config.checkpoint is not None
                      else self._default_policy)
            now = self._clock()
            entry = _StreamEntry(
                name=name,
                engine=engine,
                policy=policy,
                checkpoint_path=path,
                opened_monotonic=now,
                restored=restored,
                elements_at_checkpoint=engine.elements,
                last_checkpoint_monotonic=now,
            )
            self._streams[name] = entry
        return self.status(name)

    def close(self, name: str, checkpoint: bool = True) -> Dict[str, Any]:
        """Checkpoint (unless told otherwise) and shut the stream down.

        Returns ``{"stream": name, "checkpoint": path-or-None}``.  The
        final snapshot uses the stream's policy mode, so the next
        ``open`` restores exactly where this tenant left off.
        """
        entry = self._entry(name)
        written = None
        if checkpoint and entry.checkpoint_path is not None:
            written = self._snapshot(entry)
        entry.engine.close()
        with self._lock:
            self._streams.pop(name, None)
        return {"stream": name, "checkpoint": written}

    def kill(self, name: str) -> Dict[str, Any]:
        """Chaos drill: drop the stream *without* a final checkpoint.

        Whatever the scheduler (or an explicit ``checkpoint`` command)
        last wrote is what a later ``open`` restores — exactly the
        crash the restore-on-open contract is for.
        """
        entry = self._entry(name)
        entry.engine.close()
        with self._lock:
            self._streams.pop(name, None)
        return {"stream": name, "killed": True}

    def close_all(self, checkpoint: bool = True) -> None:
        for name in self.streams:
            try:
                self.close(name, checkpoint=checkpoint)
            except ReproError:
                with self._lock:
                    self._streams.pop(name, None)
        with self._lock:
            self._closed = True

    # -- per-stream operations --------------------------------------------

    def feed(self, name: str, updates) -> Dict[str, Any]:
        """Journal a chunk into the named stream, then run the scheduler.

        Refuses whole (feeding nothing) when the chunk would push the
        stream past ``max_journal_elements``.  Returns the fed count,
        the stream's new length, and the checkpoint path if the
        scheduler fired.
        """
        entry = self._entry(name)
        watermark = self.limits.max_journal_elements
        if watermark is not None:
            try:
                chunk_len = len(updates.get("u", ())) \
                    if isinstance(updates, dict) else len(updates[0])
            except (TypeError, IndexError, AttributeError):
                chunk_len = 0
            if entry.engine.elements + chunk_len > watermark:
                entry.refusals += 1
                raise ServiceError(
                    f"feed of {chunk_len} update(s) refused: stream "
                    f"{name!r} holds {entry.engine.elements} journaled "
                    f"update(s) against a max_journal_elements watermark "
                    f"of {watermark}; checkpoint+close the stream or "
                    f"raise the limit"
                )
        fed = entry.engine.feed(updates)
        entry.feeds += 1
        written = self._maybe_checkpoint(entry)
        return {"stream": name, "fed": fed,
                "elements": entry.engine.elements, "checkpoint": written}

    def estimate(self, name: str, names: Optional[Sequence[str]] = None):
        """Mid-stream estimates for the named stream (engine results)."""
        entry = self._entry(name)
        results = entry.engine.estimate(names)
        entry.queries += 1
        return results

    def checkpoint(self, name: str, mode: Optional[str] = None) -> str:
        """Force a snapshot now; returns the path written."""
        entry = self._entry(name)
        if entry.checkpoint_path is None:
            raise ServiceError(
                f"cannot checkpoint stream {name!r}: the registry has no "
                f"root directory (start it with one to enable durability)"
            )
        return self._snapshot(entry, mode=mode)

    def status(self, name: Optional[str] = None,
               estimate: bool = False) -> Dict[str, Any]:
        """Health of one stream, or of every stream keyed by name.

        With ``estimate=True`` each stream also reports the guarded
        median over its surviving copies: a fully degraded stream gets
        ``median: None`` plus an ``estimate_error`` message instead of
        an unhandled ``StatisticsError``.
        """
        if name is None:
            with self._lock:
                names = sorted(self._streams)
                inflight = self._inflight_bytes
            return {
                "streams": {n: self.status(n, estimate=estimate)
                            for n in names},
                "open_streams": len(names),
                "max_streams": self.limits.max_streams,
                "inflight_bytes": inflight,
                "max_feed_bytes": self.limits.max_feed_bytes,
            }
        entry = self._entry(name)
        engine = entry.engine
        doc = dict(engine.status())
        doc.update(
            stream=name,
            restored=entry.restored,
            checkpoint_path=entry.checkpoint_path,
            checkpoints_written=entry.checkpoints_written,
            checkpoint_stall_s=entry.checkpoint_stall_s,
            elements_since_checkpoint=(engine.elements
                                       - entry.elements_at_checkpoint),
            feeds=entry.feeds,
            queries=entry.queries,
            refusals=entry.refusals,
        )
        if estimate:
            try:
                doc["median"] = median_estimate(engine.estimate())
            except (EngineError, EstimationError) as error:
                doc["median"] = None
                doc["estimate_error"] = str(error)
        return doc

    # -- checkpoint scheduling --------------------------------------------

    def _snapshot(self, entry: _StreamEntry,
                  mode: Optional[str] = None) -> str:
        policy = entry.policy
        if mode is None:
            mode = policy.mode if policy is not None else "delta"
        max_deltas = (policy.max_deltas if policy is not None
                      else DEFAULT_MAX_DELTAS)
        assert entry.checkpoint_path is not None
        os.makedirs(os.path.dirname(entry.checkpoint_path), exist_ok=True)
        before = self._clock()
        written = entry.engine.snapshot(entry.checkpoint_path, mode=mode,
                                        max_deltas=max_deltas)
        after = self._clock()
        entry.checkpoint_stall_s += after - before
        entry.checkpoints_written += 1
        entry.elements_at_checkpoint = entry.engine.elements
        entry.last_checkpoint_monotonic = after
        return written

    def _maybe_checkpoint(self, entry: _StreamEntry) -> Optional[str]:
        policy = entry.policy
        if policy is None or entry.checkpoint_path is None:
            return None
        due = False
        if policy.every_elements is not None:
            grown = entry.engine.elements - entry.elements_at_checkpoint
            due = due or grown >= policy.every_elements
        if policy.every_seconds is not None:
            waited = self._clock() - entry.last_checkpoint_monotonic
            due = due or waited >= policy.every_seconds
        if not due:
            return None
        return self._snapshot(entry)
