"""The wire protocol: newline-delimited JSON, one request per line.

Every request is a single JSON object terminated by ``\\n``::

    {"cmd": "open", "stream": "tenant-a", "config": {"n": 512,
     "estimator": "triest", "copies": 3, "capacity": 128, "seed": 7}}
    {"cmd": "feed", "stream": "tenant-a",
     "updates": {"u": [0, 1], "v": [3, 4], "delta": [1, 1]}}
    {"cmd": "estimate", "stream": "tenant-a"}
    {"cmd": "checkpoint", "stream": "tenant-a"}
    {"cmd": "status"}
    {"cmd": "close", "stream": "tenant-a"}

and every response is one JSON object per line: ``{"ok": true, ...}``
on success, ``{"ok": false, "error": "<type>", "message": "..."}`` on
a refusal or failure.  Malformed lines are answered (with a typed
refusal), never crash the connection, and never touch any stream —
protocol errors are non-destructive like every other refusal.

``kill`` is the chaos-drill seventh command: drop a stream without its
final checkpoint, so a subsequent ``open`` exercises restore-on-open.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceError

__all__ = [
    "COMMANDS",
    "MAX_LINE_BYTES",
    "decode_request",
    "encode_message",
    "error_response",
    "ok_response",
    "results_to_wire",
    "updates_from_wire",
]

COMMANDS = ("open", "feed", "estimate", "checkpoint", "status", "close",
            "kill")

#: One line must fit a feed chunk; 8 MiB of JSON is ~250k updates.
MAX_LINE_BYTES = 8 << 20

#: Commands that name a stream; ``status`` may omit it (registry-wide).
_NEEDS_STREAM = ("open", "feed", "estimate", "checkpoint", "close", "kill")


def encode_message(doc: Dict[str, Any]) -> bytes:
    """Serialize one protocol message to its wire line."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and validate one request line.

    Raises :class:`~repro.errors.ServiceError` for anything malformed:
    non-JSON, a non-object, a missing/unknown ``cmd``, or a stream
    command without its ``stream`` field.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte protocol limit; split the feed"
        )
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed request line: {error}") from error
    if not isinstance(doc, dict):
        raise ServiceError(
            f"a request must be a JSON object, got {type(doc).__name__}"
        )
    cmd = doc.get("cmd")
    if cmd not in COMMANDS:
        raise ServiceError(
            f"unknown command {cmd!r}; expected one of {list(COMMANDS)}"
        )
    if cmd in _NEEDS_STREAM and not isinstance(doc.get("stream"), str):
        raise ServiceError(f"command {cmd!r} requires a 'stream' name")
    return doc


def updates_from_wire(doc: Any) -> Tuple[List[int], List[int], List[int]]:
    """Validate a feed payload into ``(u, v, delta)`` columns.

    ``delta`` defaults to all-+1 (insertions).  Columns must be equal-
    length lists of integers; deltas must be ±1.
    """
    if not isinstance(doc, dict):
        raise ServiceError(
            f"feed 'updates' must be an object with 'u'/'v' (and optional "
            f"'delta') columns, got {type(doc).__name__}"
        )
    unknown = sorted(set(doc) - {"u", "v", "delta"})
    if unknown:
        raise ServiceError(
            f"unknown feed column(s): {', '.join(unknown)}"
        )
    missing = sorted({"u", "v"} - set(doc))
    if missing:
        raise ServiceError(
            f"feed updates are missing column(s): {', '.join(missing)}"
        )
    u, v = doc["u"], doc["v"]
    delta = doc.get("delta")
    if delta is None:
        delta = [1] * len(u) if isinstance(u, list) else None
    for label, column in (("u", u), ("v", v), ("delta", delta)):
        if not isinstance(column, list):
            raise ServiceError(
                f"feed column {label!r} must be a list of integers"
            )
        for value in column:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ServiceError(
                    f"feed column {label!r} holds a non-integer "
                    f"({value!r})"
                )
    if not (len(u) == len(v) == len(delta)):
        raise ServiceError(
            f"feed columns must be equal length, got "
            f"u={len(u)} v={len(v)} delta={len(delta)}"
        )
    for value in delta:
        if value not in (1, -1):
            raise ServiceError(
                f"feed deltas must be +1 or -1, got {value!r}"
            )
    return u, v, delta


def results_to_wire(results) -> Dict[str, Dict[str, float]]:
    """Flatten engine estimate results to plain JSON-able numbers."""
    return {name: {"estimate": float(result.estimate)}
            for name, result in results.items()}


def ok_response(**fields: Any) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"ok": True}
    doc.update(fields)
    return doc


def error_response(error: BaseException) -> Dict[str, Any]:
    """The wire form of a refusal; ``error`` names the exception type."""
    kind = type(error).__name__ if isinstance(error, ReproError) \
        else "InternalError"
    return {"ok": False, "error": kind, "message": str(error)}
