"""Exact counting of an arbitrary pattern H in a host graph.

#H = (#injective homomorphisms H -> G) / |Aut(H)|.

Injective homomorphisms are enumerated by backtracking with
candidate-set pruning (degree bounds plus adjacency to previously
mapped neighbors).  Special-cased fast paths dispatch triangles and
cliques to the dedicated counters.

Also provides (non-injective) homomorphism counts, which the
Kane–Mehlhorn-style sketch baselines estimate; tests validate the
sketches' unbiasedness against this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import PatternError
from repro.exact.cliques import count_cliques
from repro.exact.triangles import count_triangles
from repro.graph.graph import Graph
from repro.patterns.automorphisms import automorphism_count
from repro.patterns.isomorphism import _matching_order
from repro.patterns.pattern import Pattern


def _is_clique(graph: Graph) -> bool:
    n = graph.n
    return graph.m == n * (n - 1) // 2


def count_injective_homomorphisms(host: Graph, pattern_graph: Graph) -> int:
    """Number of injective maps V(H) -> V(G) preserving all H-edges."""
    order = _matching_order(pattern_graph)
    n_pattern = pattern_graph.n
    if host.n < n_pattern:
        return 0
    pattern_degree = pattern_graph.degrees()

    # Earlier-mapped pattern neighbors per position in the order.
    position = {v: i for i, v in enumerate(order)}
    earlier_neighbors: List[List[int]] = []
    for v in order:
        earlier_neighbors.append(
            [w for w in pattern_graph.neighbors(v) if position[w] < position[v]]
        )

    mapping: Dict[int, int] = {}
    used: Set[int] = set()
    total = 0

    def extend(index: int) -> None:
        nonlocal total
        if index == n_pattern:
            total += 1
            return
        v = order[index]
        anchors = earlier_neighbors[index]
        if anchors:
            # Candidates: neighbors of the first mapped anchor — much
            # smaller than V(G) for sparse hosts.
            base = host.neighbors(mapping[anchors[0]])
            rest = anchors[1:]
        else:
            base = host.vertices()
            rest = []
        needed_degree = pattern_degree[v]
        for candidate in base:
            if candidate in used:
                continue
            if host.degree(candidate) < needed_degree:
                continue
            if all(host.has_edge(mapping[w], candidate) for w in rest):
                mapping[v] = candidate
                used.add(candidate)
                extend(index + 1)
                used.discard(candidate)
                del mapping[v]

    extend(0)
    return total


def count_subgraphs(host: Graph, pattern: Pattern) -> int:
    """#H: the number of copies of *pattern* in *host*.

    Dispatches to specialized counters for triangles and cliques and
    falls back to injective-homomorphism counting divided by |Aut(H)|.
    """
    pattern_graph = pattern.graph
    if _is_clique(pattern_graph):
        if pattern_graph.n == 3:
            return count_triangles(host)
        return count_cliques(host, pattern_graph.n)

    components = pattern_graph.connected_components()
    if len(components) > 1:
        return _count_disconnected(host, pattern)

    injective = count_injective_homomorphisms(host, pattern_graph)
    aut = automorphism_count(pattern_graph)
    if injective % aut != 0:  # pragma: no cover - sanity invariant
        raise PatternError(
            f"injective homomorphism count {injective} not divisible by |Aut| = {aut}"
        )
    return injective // aut


def _count_disconnected(host: Graph, pattern: Pattern) -> int:
    """Copies of a disconnected pattern via injective homs / Aut.

    The component-wise inclusion–exclusion shortcut is error-prone;
    pattern sizes are constant, so the direct backtracking count is
    still fine and obviously correct.
    """
    pattern_graph = pattern.graph
    injective = count_injective_homomorphisms(host, pattern_graph)
    aut = automorphism_count(pattern_graph)
    if injective % aut != 0:  # pragma: no cover
        raise PatternError("injective count not divisible by |Aut|")
    return injective // aut


def count_homomorphisms(host: Graph, pattern_graph: Graph) -> int:
    """Number of (not necessarily injective) homomorphisms H -> G.

    Brute-force backtracking without the injectivity constraint; used
    to validate the homomorphism sketch baselines on small hosts.
    """
    order = _matching_order(pattern_graph)
    position = {v: i for i, v in enumerate(order)}
    earlier_neighbors: List[List[int]] = [
        [w for w in pattern_graph.neighbors(v) if position[w] < position[v]] for v in order
    ]
    mapping: Dict[int, int] = {}
    total = 0

    def extend(index: int) -> None:
        nonlocal total
        if index == len(order):
            total += 1
            return
        v = order[index]
        anchors = earlier_neighbors[index]
        candidates: Sequence[int]
        if anchors:
            candidates = host.neighbors(mapping[anchors[0]])
            rest = anchors[1:]
        else:
            candidates = host.vertices()
            rest = []
        for candidate in candidates:
            if all(host.has_edge(mapping[w], candidate) for w in rest):
                mapping[v] = candidate
                extend(index + 1)
                del mapping[v]

    extend(0)
    return total
