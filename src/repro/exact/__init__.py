"""Exact subgraph counting — the ground truth for every experiment."""

from repro.exact.triangles import count_triangles, triangles_per_edge
from repro.exact.cliques import count_cliques
from repro.exact.subgraphs import (
    count_homomorphisms,
    count_injective_homomorphisms,
    count_subgraphs,
)

__all__ = [
    "count_triangles",
    "triangles_per_edge",
    "count_cliques",
    "count_homomorphisms",
    "count_injective_homomorphisms",
    "count_subgraphs",
]
