"""Exact k-clique counting via degeneracy ordering.

Orient edges along a degeneracy ordering; every vertex then has at
most λ forward neighbors, so enumerating cliques inside forward
neighborhoods costs O(m * λ^{r-2}) — the same quantity that appears
in Theorem 2's space bound, which is no coincidence: the ERS
algorithm is a sampling-based relaxation of this enumeration.
"""

from __future__ import annotations

from typing import List

from repro.errors import GraphError
from repro.graph.degeneracy import degeneracy_ordering
from repro.graph.graph import Graph


def _cliques_within(graph: Graph, candidates: List[int], size_needed: int) -> int:
    """Cliques of *size_needed* vertices inside *candidates*.

    Candidates must be pairwise-distinct vertices; adjacency is checked
    against the host graph.  Ordered recursion avoids double counting.
    """
    if size_needed == 0:
        return 1
    if len(candidates) < size_needed:
        return 0
    if size_needed == 1:
        return len(candidates)
    total = 0
    for index, v in enumerate(candidates):
        narrowed = [w for w in candidates[index + 1 :] if graph.has_edge(v, w)]
        total += _cliques_within(graph, narrowed, size_needed - 1)
    return total


def count_cliques(graph: Graph, r: int) -> int:
    """The number of K_r copies in *graph*.

    r = 1 counts vertices, r = 2 counts edges; r >= 3 runs the
    degeneracy-ordered branch-and-count.
    """
    if r < 1:
        raise GraphError(f"clique order must be >= 1, got {r}")
    if r == 1:
        return graph.n
    if r == 2:
        return graph.m

    order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    forward: List[List[int]] = [[] for _ in range(graph.n)]
    for u, v in graph.edges():
        if position[u] < position[v]:
            forward[u].append(v)
        else:
            forward[v].append(u)

    total = 0
    for v in graph.vertices():
        candidates = sorted(forward[v], key=position.__getitem__)
        total += _cliques_within(graph, candidates, r - 1)
    return total
